"""Overhead guard: observability must be free when disabled.

Two measurements, recorded to ``BENCH_obs_overhead.json`` at the repo
root so future perf PRs have a baseline:

1. **engine microbenchmark** — the current event loop with no observer
   versus a replica of the pre-instrumentation (seed) loop, on an
   identical burst of no-op events.  This is the worst case: real
   simulations do work per event, which only shrinks the relative cost
   of the two extra bookkeeping ops.  The guard asserts the disabled
   path stays within noise of the seed loop.
2. **end-to-end ratio** — a full ``simulate_allocation`` round with no
   observer versus one with a full tracer+registry observer, for the
   record (tracing is allowed to cost; disabled must not).
3. **store-enabled ratio** — the same round with every run persisted to
   a ``RunStore`` versus not persisted.  The run-history store is on by
   default for ``run`` and ``serve``, so its end-to-end cost must stay
   under ``_STORE_TOLERANCE`` (one WAL INSERT per run).

Timings use best-of-N minima, the standard way to strip scheduler noise
from microbenchmarks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import HotPathProfiler
from repro.obs.store import RunStore
from repro.obs.tracing import SimulationObserver, Tracer
from repro.protocols.fifo import fifo_allocation
from repro.simulation.engine import Simulator
from repro.simulation.runner import simulate_allocation

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

_PARAMS = ModelParams(tau=1e-6, pi=1e-7, delta=1.0)
_EVENTS = 50_000
_REPEATS = 7

#: Generous bound on disabled-path slowdown vs. the seed loop replica.
#: The added work is two C-level ops per event (len + compare); anything
#: beyond this threshold means someone put real work on the hot path.
_DISABLED_TOLERANCE = 1.30

#: End-to-end bound on persisting runs to the history store (the ISSUE
#: acceptance ceiling): one WAL INSERT per multi-millisecond round.
_STORE_TOLERANCE = 1.05


class _SeedLoopSimulator(Simulator):
    """Replica of the pre-instrumentation engine loop (the PR-0 seed)."""

    def run(self, until: float | None = None) -> None:  # noqa: D102
        from repro.errors import SimulationError
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while not self._queue.empty:
                next_time = self._queue.next_time
                assert next_time is not None
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                self._now = event.time
                self._events_processed += 1
                event.action()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False


def _noop() -> None:
    pass


def _time_event_burst(sim_factory) -> float:
    """Best-of-N seconds to drain _EVENTS no-op events."""
    best = float("inf")
    for _ in range(_REPEATS):
        sim = sim_factory()
        for i in range(_EVENTS):
            sim.schedule_at(float(i), _noop)
        start = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - start)
    return best


def _time_round(observer_factory) -> float:
    """Best-of-N seconds for one n=512 CEP round."""
    alloc = fifo_allocation(Profile.linear(512), _PARAMS, 100.0)
    best = float("inf")
    for _ in range(_REPEATS):
        observer = observer_factory()
        start = time.perf_counter()
        simulate_allocation(alloc, observer=observer, engine="events")
        best = min(best, time.perf_counter() - start)
    return best


def _time_store_rounds(store: RunStore) -> tuple[float, float]:
    """Best-of-N seconds for one n=512 round, without/with persistence.

    The two variants are interleaved within each repeat so slow drift
    (frequency scaling, cache warmth) hits both equally — sequential
    best-of blocks can disagree by more than the store's actual cost.
    """
    alloc = fifo_allocation(Profile.linear(512), _PARAMS, 100.0)
    best_plain = best_stored = float("inf")
    for _ in range(_REPEATS * 2):
        start = time.perf_counter()
        simulate_allocation(alloc, engine="events")
        best_plain = min(best_plain, time.perf_counter() - start)

        start = time.perf_counter()
        result = simulate_allocation(alloc, engine="events")
        store.record_run(
            kind="bench", label="obs-overhead",
            wall_seconds=time.perf_counter() - start,
            metrics={"makespan": result.makespan},
            extra={"events": result.events_processed})
        best_stored = min(best_stored, time.perf_counter() - start)
    return best_plain, best_stored


def test_disabled_observability_is_within_noise_of_seed_engine(
        report_sink, tmp_path):
    seed_s = _time_event_burst(_SeedLoopSimulator)
    disabled_s = _time_event_burst(Simulator)
    disabled_ratio = disabled_s / seed_s

    round_disabled_s = _time_round(lambda: None)
    round_enabled_s = _time_round(
        lambda: SimulationObserver(Tracer(keep_records=False),
                                   MetricsRegistry()))
    enabled_ratio = round_enabled_s / round_disabled_s

    with RunStore(tmp_path / "runs.sqlite3") as store:
        no_store_s, with_store_s = _time_store_rounds(store)
    store_ratio = with_store_s / no_store_s

    with HotPathProfiler() as prof:
        simulate_allocation(fifo_allocation(Profile.linear(256), _PARAMS, 100.0),
                            engine="events")

    baseline = {
        "events_per_burst": _EVENTS,
        "seed_loop_seconds": seed_s,
        "disabled_loop_seconds": disabled_s,
        "disabled_over_seed_ratio": round(disabled_ratio, 4),
        "round_n512_disabled_seconds": round_disabled_s,
        "round_n512_traced_seconds": round_enabled_s,
        "traced_over_disabled_ratio": round(enabled_ratio, 4),
        "round_n512_no_store_seconds": no_store_s,
        "round_n512_store_seconds": with_store_s,
        "store_over_no_store_ratio": round(store_ratio, 4),
        "disabled_tolerance": _DISABLED_TOLERANCE,
        "store_tolerance": _STORE_TOLERANCE,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")

    lines = ["obs overhead guard",
             f"  seed loop      {seed_s * 1e9 / _EVENTS:8.1f} ns/event",
             f"  disabled loop  {disabled_s * 1e9 / _EVENTS:8.1f} ns/event "
             f"(x{disabled_ratio:.3f} vs seed)",
             f"  n=512 round    disabled {round_disabled_s * 1e3:.2f} ms, "
             f"traced {round_enabled_s * 1e3:.2f} ms "
             f"(x{enabled_ratio:.2f})",
             f"  run store      off {no_store_s * 1e3:.2f} ms, "
             f"on {with_store_s * 1e3:.2f} ms (x{store_ratio:.3f})",
             "", "hot-path profile of one n=256 round:", prof.report()]
    report_sink("obs-overhead", "\n".join(lines))

    assert disabled_ratio < _DISABLED_TOLERANCE, (
        f"disabled-observability engine loop is {disabled_ratio:.2f}x the "
        f"seed loop (tolerance {_DISABLED_TOLERANCE}x) — something heavy "
        f"landed on the no-observer hot path")
    assert store_ratio < _STORE_TOLERANCE, (
        f"persisting runs to the history store costs {store_ratio:.3f}x "
        f"end-to-end (tolerance {_STORE_TOLERANCE}x) — the per-run INSERT "
        f"has grown beyond a single WAL write")


def test_traced_run_matches_untraced_results():
    """Observability must never change simulation semantics."""
    alloc = fifo_allocation(Profile.linear(64), _PARAMS, 100.0)
    plain = simulate_allocation(alloc, engine="events")
    traced = simulate_allocation(
        alloc, observer=SimulationObserver(Tracer(), MetricsRegistry()))
    assert traced.completed_work == plain.completed_work
    assert traced.events_processed == plain.events_processed
    assert traced.makespan == plain.makespan
    assert traced.peak_queue_depth == plain.peak_queue_depth
