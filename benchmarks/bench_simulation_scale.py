"""Benchmark: discrete-event simulator throughput at cluster scale.

Not a paper artifact — the engineering baseline for the substrate.  One
CEP round generates ~4 events per computer plus channel bookkeeping;
this bench times full rounds at n = 16 / 256 / 2048 and asserts the
result still matches the analytics at every scale.
"""

import pytest

from repro.core.measure import work_production
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.fifo import fifo_allocation, fifo_saturation_index
from repro.simulation.runner import simulate_allocation

#: Mild communication costs so even the n = 2048 cluster stays far from
#: the A·X = 1 structural boundary.
_PARAMS = ModelParams(tau=1e-6, pi=1e-7, delta=1.0)


@pytest.mark.parametrize("n", [16, 256, 2048])
def test_simulation_round_scaling(benchmark, n):
    profile = Profile.linear(n)
    assert fifo_saturation_index(profile, _PARAMS) < 1.0
    alloc = fifo_allocation(profile, _PARAMS, 100.0)

    result = benchmark(simulate_allocation, alloc)
    assert result.all_completed
    assert result.completed_work == pytest.approx(
        work_production(profile, _PARAMS, 100.0), rel=1e-9)
    assert result.events_processed >= 4 * n


def test_simulation_with_failures_overhead(benchmark):
    """Failure bookkeeping must not meaningfully slow the common path."""
    profile = Profile.linear(256)
    alloc = fifo_allocation(profile, _PARAMS, 100.0)
    failures = {0: 1e9}  # armed but never fires

    result = benchmark(simulate_allocation, alloc, failures=failures)
    assert result.all_completed
