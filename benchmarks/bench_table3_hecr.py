"""Benchmark: regenerate Table 3 (HECRs of the sample clusters).

Prints the measured HECRs next to the paper's printed values for the
linear (C₁) and harmonic (C₂) clusters at n = 8, 16, 32, and times both
the full experiment and the underlying HECR kernel at larger scales.
"""

import pytest

from repro.core.hecr import hecr
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.experiments import PAPER_TABLE3_VALUES, run_table3


def test_table3(benchmark, report_sink):
    result = benchmark(run_table3)
    report_sink("table3", result.render())
    for (cluster, n), paper_value in PAPER_TABLE3_VALUES.items():
        measured = result.metadata["measured"][(cluster, n)]
        assert measured == pytest.approx(paper_value, abs=7e-3), (cluster, n)


@pytest.mark.parametrize("n", [32, 1024, 65536])
def test_hecr_kernel_scaling(benchmark, n):
    """HECR of a linear cluster: O(n) — timed up to the paper's 2^16.

    (The *harmonic* cluster at this scale saturates X beyond float
    resolution of the 1/(A−τδ) bound — its fastest machines are
    ρ = 1/65536 — so the paper-scale timing uses the linear profile.)
    """
    profile = Profile.linear(n)
    value = benchmark(hecr, profile, PAPER_TABLE1)
    assert 0.0 < value < 1.0
