"""Batch-engine speedup benchmark: ``--jobs N`` vs ``--jobs 1``.

Runs the sampling experiments (the shardable, compute-bound ones) through
:func:`repro.batch.run_batch` sequentially and on a worker pool, checks
the parallel rows are identical to the sequential rows, and records the
wall clocks to ``BENCH_batch_speedup.json`` at the repo root.

The speedup floor is conditional on hardware: the engine cannot beat
Amdahl on a single core, so the ≥1.5× assertion only arms when the
runner has at least 4 CPUs (the CI runner does); below that the run
still records honest numbers for the baseline file, with the core count
alongside so readers can interpret them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.batch import run_batch

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_speedup.json"

#: The shardable sampling experiments — the ones worth parallelising.
_EXPERIMENT_IDS = ["variance-trials", "variance-threshold", "majorization"]
_KWARGS = {
    "variance-trials": {"trials_per_size": 600, "seed": 20100419},
    "variance-threshold": {"trials_per_size": 600, "seed": 20100419},
    "majorization": {"trials_per_size": 600, "seed": 20100419},
}
_JOBS = 4

#: Required parallel speedup on a proper multi-core runner.
_SPEEDUP_FLOOR = 1.5


def _run(jobs: int):
    start = time.perf_counter()
    report = run_batch(_EXPERIMENT_IDS, kwargs_by_id=_KWARGS, jobs=jobs,
                       cache=None)
    wall = time.perf_counter() - start
    assert not report.failures, [i.error for i in report.failures]
    return wall, report.results


def test_parallel_batch_speedup(report_sink):
    cores = os.cpu_count() or 1
    sequential_s, sequential_results = _run(jobs=1)
    parallel_s, parallel_results = _run(jobs=_JOBS)
    speedup = sequential_s / parallel_s

    # Determinism first: the speedup is worthless if rows drift.
    for seq, par in zip(sequential_results, parallel_results):
        assert seq.experiment_id == par.experiment_id
        assert seq.rows == par.rows, f"{seq.experiment_id} rows differ"

    floor_armed = cores >= 4
    baseline = {
        "cpu_count": cores,
        "jobs": _JOBS,
        "experiments": _EXPERIMENT_IDS,
        "sequential_seconds": round(sequential_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 4),
        "speedup_floor": _SPEEDUP_FLOOR,
        "floor_armed": floor_armed,
        "note": ("floor asserted (>=4 cores)" if floor_armed else
                 f"floor not asserted: only {cores} core(s) available, "
                 "parallel speedup is not physically possible"),
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")

    report_sink("batch-speedup", "\n".join([
        "batch speedup benchmark",
        f"  cpus        {cores}",
        f"  sequential  {sequential_s:6.2f} s",
        f"  --jobs {_JOBS}    {parallel_s:6.2f} s",
        f"  speedup     x{speedup:.2f} "
        f"(floor x{_SPEEDUP_FLOOR} {'armed' if floor_armed else 'not armed'})",
    ]))

    if floor_armed:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"--jobs {_JOBS} was only {speedup:.2f}x faster than --jobs 1 "
            f"on a {cores}-core runner (floor {_SPEEDUP_FLOOR}x)")
