"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered report is printed (visible with ``pytest -s``) *and* written to
``benchmarks/output/<experiment>.txt`` so the regenerated artifacts
survive the run regardless of capture settings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_sink():
    """Write a rendered experiment report to the output directory."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def sink(experiment_id: str, text: str) -> None:
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return sink
