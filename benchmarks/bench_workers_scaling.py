"""Multi-worker scale-out benchmark: ``serve --workers N`` throughput.

Boots the pre-fork supervisor at 1, 2, and 4 workers on a loopback
ephemeral port and drives each fleet with the same closed-loop
multi-threaded workload of hot evaluation queries as the service
throughput bench (``/v1/x``, ``/v1/hecr``, FIFO and LP
``/v1/allocate``).  Response and shared caches are disabled so the
measured difference is the scale-out itself: N event loops accepting
from N ``SO_REUSEPORT`` sockets.  Every phase must answer the workload
bit-identically — a worker count that moves floats is a bug.

A final overload phase points the closed loop at a 2-worker fleet with
deliberately tiny *cluster-total* admission budgets (which the
supervisor splits per worker) and checks that overload is shed — 429 or
503 with a ``Retry-After`` hint — rather than queued into client
timeouts, and that the per-worker ``svc_shed_total`` series aggregate
to the client-observed shed count.

Numbers land in ``BENCH_workers_scaling.json`` at the repo root, plus a
machine-measured copy in ``benchmarks/output/workers-scaling-measured.json``
for the CI drift watchdog (``obs compare`` over the machine-independent
``scaleout_cost_ratio`` keys: rps(1 worker)/rps(N workers), lower is
better).  With ``REPRO_PERF_CHECK=1`` the committed baseline is left
untouched and the gates are asserted instead: at least
``_KEEP_FRACTION`` of the committed 2-worker speedup, and the absolute
``_SPEEDUP_FLOOR`` whenever the machine has cores to scale onto.
Kernel SO_REUSEPORT balancing distributes *connections*, not requests,
so the closed loop keeps many more connections than workers open.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.service import ServiceConfig, ServiceError
from repro.service.client import ServiceClient
from repro.service.supervisor import Supervisor

BASELINE_PATH = (Path(__file__).resolve().parent.parent
                 / "BENCH_workers_scaling.json")
MEASURED_PATH = Path(__file__).resolve().parent / "output" \
    / "workers-scaling-measured.json"

#: Seconds of closed-loop load per worker-count phase.
_PHASE_SECONDS = float(os.environ.get("REPRO_WORKERS_BENCH_SECONDS", "2.0"))
_THREADS = 16
_WORKER_COUNTS = (1, 2, 4)

#: Required 2-worker/1-worker throughput ratio in check mode.  Unlike
#: the micro-batching floor this win *is* extra cores: it is only
#: asserted when the machine has at least two of them (CI runners do).
#: Single-core machines still run every correctness assert and record
#: honest numbers with ``floor_armed: false``.
_SPEEDUP_FLOOR = 1.7

#: Check mode must also keep at least this fraction of the *committed*
#: 2-worker speedup, so a scaling regression is caught even where the
#: absolute floor is disarmed.
_KEEP_FRACTION = 0.5

#: Same hot cluster and request mix as bench_service_throughput.py:
#: LP-heavy because LP is the expensive hot query, walked round-robin
#: from per-thread offsets.
_CLUSTER = tuple(1.0 / (i + 1) for i in range(24))
_NATURAL = tuple(range(len(_CLUSTER)))
_REVERSED = tuple(reversed(_NATURAL))
_ROTATED = _NATURAL[1:] + _NATURAL[:1]

_WORKLOAD = [
    ("x", lambda c: c.x(_CLUSTER)),
    ("lp-natural", lambda c: c.allocate(_CLUSTER, lifespan=200.0,
                                        protocol="lp")),
    ("hecr", lambda c: c.hecr(_CLUSTER)),
    ("lp-reversed", lambda c: c.allocate(_CLUSTER, lifespan=200.0,
                                         protocol="lp",
                                         startup_order=_REVERSED,
                                         finishing_order=_ROTATED)),
    ("work", lambda c: c.work(_CLUSTER, lifespan=200.0)),
    ("lp-rotated", lambda c: c.allocate(_CLUSTER, lifespan=200.0,
                                        protocol="lp",
                                        startup_order=_ROTATED,
                                        finishing_order=_REVERSED)),
]


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class _Fleet:
    """A supervisor fleet on a background thread, torn down on exit."""

    def __init__(self, config: ServiceConfig) -> None:
        self.supervisor = Supervisor(config, install_signals=False)
        self.exit_code: int | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self.exit_code = self.supervisor.run()

    def __enter__(self) -> "_Fleet":
        self._thread.start()
        self.port = self.supervisor.wait_ready(60.0)
        return self

    def __exit__(self, *exc_info) -> None:
        self.supervisor.initiate_stop()
        self._thread.join(timeout=60.0)

    def client(self, timeout: float = 30.0) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, timeout=timeout)


def _fleet_config(workers: int, **overrides) -> ServiceConfig:
    defaults = dict(port=0, workers=workers, cache_ttl=0.0, cache_entries=0,
                    no_result_cache=True, no_shared_cache=True,
                    no_store=True, drain_timeout=5.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _scaling_phase(workers: int) -> tuple[dict, dict]:
    """Drive one fleet with the closed-loop workload.

    Returns ``(stats, responses)`` where ``responses`` maps each
    workload item name to its decoded JSON answer — the cross-phase
    bit-identity check.
    """
    latencies: list[list[float]] = [[] for _ in range(_THREADS)]
    errors: list[str] = []
    with _Fleet(_fleet_config(workers)) as fleet:
        stop_at = time.perf_counter() + _PHASE_SECONDS

        def worker(tid: int) -> None:
            with fleet.client() as client:
                step = tid
                while time.perf_counter() < stop_at:
                    _, call = _WORKLOAD[step % len(_WORKLOAD)]
                    begin = time.perf_counter()
                    try:
                        call(client)
                    except ServiceError as exc:  # any failure voids the run
                        errors.append(str(exc))
                        return
                    latencies[tid].append(time.perf_counter() - begin)
                    step += 1

        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        assert not errors, f"load worker failed: {errors[0]}"
        with fleet.client() as client:
            responses = {name: call(client) for name, call in _WORKLOAD}

        flat = sorted(value for bucket in latencies for value in bucket)
        assert flat, "load phase issued no requests"
        stats = {
            "workers": workers,
            "requests": len(flat),
            "seconds": round(elapsed, 4),
            "throughput_rps": round(len(flat) / elapsed, 2),
            "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
        }
    assert fleet.exit_code == 0, \
        f"fleet exited {fleet.exit_code} after the load phase"
    return stats, responses


def _overload_phase() -> dict:
    """Overload a tiny 2-worker fleet; overload must shed, not time out.

    The budgets are cluster totals — the supervisor hands each worker
    its share — so this also proves split budgets still shed cleanly.
    """
    config = _fleet_config(2, max_inflight=2, rate=150.0, burst=8.0,
                           metrics_flush_interval=0.1)
    counts = {"attempts": 0, "ok": 0, "shed_429": 0, "shed_503": 0,
              "timeouts": 0}
    hints: list[float] = []
    lock = threading.Lock()
    with _Fleet(config) as fleet:
        stop_at = time.perf_counter() + min(1.5, _PHASE_SECONDS)

        def worker() -> None:
            with fleet.client() as client:
                while time.perf_counter() < stop_at:
                    try:
                        client.allocate(_CLUSTER, lifespan=200.0,
                                        protocol="lp")
                        outcome = "ok"
                    except ServiceError as exc:
                        if exc.shed:
                            outcome = f"shed_{exc.status}"
                            with lock:
                                hints.append(exc.retry_after)
                        else:
                            outcome = "timeouts"
                    with lock:
                        counts["attempts"] += 1
                        counts[outcome] += 1

        threads = [threading.Thread(target=worker) for _ in range(_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # The per-worker svc_shed_total series (flushed to disk, merged
        # by the supervisor) must aggregate to what the clients saw.
        client_sheds = counts["shed_429"] + counts["shed_503"]
        deadline = time.monotonic() + 10.0
        metric_sheds = -1
        while time.monotonic() < deadline:
            aggregate = fleet.supervisor.aggregate_registry()
            counter = aggregate.counter("svc_shed_total", "")
            metric_sheds = int(sum(s.value for s in counter.samples()))
            if metric_sheds >= client_sheds:
                break
            time.sleep(0.1)

    counts["shed_total_metric"] = metric_sheds
    counts["retry_after_hinted"] = bool(hints) and all(h > 0 for h in hints)
    return counts


def test_workers_scaling(report_sink):
    check_mode = os.environ.get("REPRO_PERF_CHECK", "") == "1"
    cpu_count = os.cpu_count() or 1
    floor_armed = cpu_count >= 2

    phases: dict[int, dict] = {}
    answers: dict[int, dict] = {}
    for workers in _WORKER_COUNTS:
        phases[workers], answers[workers] = _scaling_phase(workers)

    # Bit-identity first: every fleet size answers the workload with
    # exactly the same floats, or the scale-out is broken.
    base_answers = answers[_WORKER_COUNTS[0]]
    for workers in _WORKER_COUNTS[1:]:
        assert answers[workers] == base_answers, \
            f"{workers}-worker responses differ from 1-worker responses"

    rps = {w: phases[w]["throughput_rps"] for w in _WORKER_COUNTS}
    speedup_2 = rps[2] / rps[1]
    speedup_4 = rps[4] / rps[1]

    shed = _overload_phase()
    assert shed["shed_429"] + shed["shed_503"] > 0, \
        "overload produced no shedding"
    assert shed["timeouts"] == 0, \
        f"overload timed {shed['timeouts']} requests out instead of shedding"
    assert shed["ok"] > 0, "admission control admitted nothing"
    assert shed["retry_after_hinted"], "shed responses lacked Retry-After"
    assert shed["shed_total_metric"] >= shed["shed_429"] + shed["shed_503"], \
        "aggregated svc_shed_total lost shed events across workers"

    if floor_armed:
        note = f"floor x{_SPEEDUP_FLOOR} armed: {cpu_count} cores available"
    else:
        note = (f"floor not asserted: only {cpu_count} core(s) available, "
                "multi-worker speedup is not physically possible")
    record = {
        "cpu_count": cpu_count,
        "threads": _THREADS,
        "phase_seconds": _PHASE_SECONDS,
        "cluster_size": len(_CLUSTER),
        "workload": [name for name, _ in _WORKLOAD],
        "phases": {str(w): phases[w] for w in _WORKER_COUNTS},
        "speedup_2": round(speedup_2, 4),
        "speedup_4": round(speedup_4, 4),
        # rps(1 worker)/rps(N workers): the cost of asking one worker to
        # do an N-worker fleet's job.  Lower is better, so the drift
        # watchdog (which flags increases) catches scaling regressions
        # without raw-seconds machine noise.
        "scaleout_cost_ratio_2w": round(rps[1] / rps[2], 4),
        "scaleout_cost_ratio_4w": round(rps[1] / rps[4], 4),
        "speedup_floor": _SPEEDUP_FLOOR,
        "floor_armed": floor_armed,
        "shed": shed,
        "note": note,
    }
    MEASURED_PATH.parent.mkdir(exist_ok=True)
    MEASURED_PATH.write_text(json.dumps(record, indent=2) + "\n")
    if not check_mode:
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")

    lines = ["workers scaling benchmark "
             f"({_THREADS} threads, {_PHASE_SECONDS:g} s/phase, "
             f"{cpu_count} cores)"]
    for workers in _WORKER_COUNTS:
        stats = phases[workers]
        lines.append(
            f"  workers={workers}   {stats['throughput_rps']:9.1f} rps   "
            f"p50 {stats['p50_ms']:7.2f} ms   p99 {stats['p99_ms']:7.2f} ms")
    lines.append(
        f"  speedup     x{speedup_2:.2f} at 2 workers, x{speedup_4:.2f} "
        f"at 4 (floor x{_SPEEDUP_FLOOR}, "
        f"{'armed' if floor_armed else 'disarmed'})")
    lines.append(
        f"  shedding    {shed['ok']} ok, {shed['shed_429']} x 429, "
        f"{shed['shed_503']} x 503, {shed['timeouts']} timeouts "
        f"of {shed['attempts']} attempts")
    report_sink("workers-scaling", "\n".join(lines))

    if check_mode:
        committed = json.loads(BASELINE_PATH.read_text())
        keep = _KEEP_FRACTION * committed["speedup_2"]
        assert speedup_2 >= keep, (
            f"2-worker speedup {speedup_2:.2f}x kept less than "
            f"{_KEEP_FRACTION:.0%} of the committed {committed['speedup_2']}x")
        if floor_armed:
            assert speedup_2 >= _SPEEDUP_FLOOR, (
                f"2 workers were only {speedup_2:.2f}x one worker "
                f"(floor {_SPEEDUP_FLOOR}x on a {cpu_count}-core machine)")
