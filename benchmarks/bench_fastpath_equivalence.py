"""Fast-path equivalence and speedup guard.

Measures the three analytic fast paths against their slow paths and
records the results to ``BENCH_perf_kernels.json`` at the repo root —
the perf trajectory baseline future PRs regress against:

1. **simulation** — the event-free analytic engine versus the
   discrete-event engine on FIFO rounds at n ∈ {8, 64, 512}.  The
   analytic path must be ≥10× faster at n = 512 (it is usually
   hundreds of times faster) *and* produce equivalent results, which
   this file re-asserts end to end before timing.
2. **batched LP** — ``lp_allocation_many`` versus per-pair
   ``lp_allocation`` over a batch of random (Σ, Φ) pairs, plus the
   wall time of the ``protocol-optimality`` experiment that now rides
   on the batch path.
3. **incremental X** — an :class:`~repro.core.measure.XEvaluator`
   candidate scan versus fresh ``x_measure`` per candidate at n = 256.

Timings use best-of-N minima.  With ``REPRO_PERF_CHECK=1`` the run
first compares against the committed baseline and fails if any fast
path's speedup regressed more than 25% — the CI ``perf`` job runs in
this mode.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.measure import XEvaluator, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.base import run_experiment
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation, lp_allocation_many
from repro.simulation.runner import simulate_allocation

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf_kernels.json"

_PARAMS = ModelParams(tau=1e-6, pi=1e-7, delta=1.0)
_SIM_SIZES = (8, 64, 512)
_REPEATS = 5
_LP_PAIRS = 24
_XEVAL_N = 256

#: Floor on the n=512 analytic-vs-events speedup (acceptance criterion).
_SIM_SPEEDUP_FLOOR = 10.0
#: Check mode fails when a fast path keeps less than this fraction of
#: its committed baseline speedup.
_REGRESSION_KEEP = 0.75
#: The speedups guarded in check mode.
_GUARDED = ("sim_speedup_n8", "sim_speedup_n64", "sim_speedup_n512",
            "lp_batch_speedup", "xeval_speedup")


def _best(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sim_speedups() -> dict[str, float]:
    out: dict[str, float] = {}
    for n in _SIM_SIZES:
        alloc = fifo_allocation(Profile.linear(n), _PARAMS, 100.0)
        # Equivalence first — a fast path that drifts is not a speedup.
        ev = simulate_allocation(alloc, engine="events")
        an = simulate_allocation(alloc, engine="analytic")
        tol = 1e-9 * max(1.0, alloc.lifespan, ev.completed_work)
        assert abs(an.completed_work - ev.completed_work) <= tol
        assert abs(an.makespan - ev.makespan) <= tol
        events_s = _best(lambda: simulate_allocation(alloc, engine="events"))
        analytic_s = _best(lambda: simulate_allocation(alloc, engine="analytic"))
        out[f"sim_events_n{n}_seconds"] = events_s
        out[f"sim_analytic_n{n}_seconds"] = analytic_s
        out[f"sim_speedup_n{n}"] = round(events_s / analytic_s, 2)
    return out


def _lp_speedup() -> dict[str, float]:
    profile = Profile.linear(6)
    params = ModelParams(tau=0.01, pi=0.001, delta=1.0)
    rng = np.random.default_rng(42)
    pairs = [(tuple(rng.permutation(6).tolist()),
              tuple(rng.permutation(6).tolist())) for _ in range(_LP_PAIRS)]

    def solve_loop():
        return [lp_allocation(profile, params, 50.0, s, f) for s, f in pairs]

    def solve_batch():
        return lp_allocation_many(profile, params, 50.0, pairs)

    for one, many in zip(solve_loop(), solve_batch()):
        assert np.array_equal(one.w, many.w)
    loop_s = _best(solve_loop, repeats=3)
    batch_s = _best(solve_batch, repeats=3)
    return {
        "lp_pairs": _LP_PAIRS,
        "lp_loop_seconds": loop_s,
        "lp_batch_seconds": batch_s,
        "lp_batch_speedup": round(loop_s / batch_s, 3),
    }


def _xeval_speedup() -> dict[str, float]:
    rng = np.random.default_rng(7)
    rho = rng.uniform(0.5, 3.0, size=_XEVAL_N)
    params = ModelParams(tau=1e-5, pi=1e-5, delta=1.0)
    evaluator = XEvaluator(rho, params)
    candidates = [(k, float(rho[k]) * 0.5) for k in range(_XEVAL_N)]

    def scan_fresh():
        best = -np.inf
        for k, new in candidates:
            edited = rho.copy()
            edited[k] = new
            best = max(best, x_measure(edited, params))
        return best

    def scan_incremental():
        best = -np.inf
        for k, new in candidates:
            best = max(best, evaluator.x_with_rho(k, new))
        return best

    assert abs(scan_fresh() - scan_incremental()) <= 1e-9
    fresh_s = _best(scan_fresh, repeats=3)
    incremental_s = _best(scan_incremental, repeats=3)
    return {
        "xeval_n": _XEVAL_N,
        "xeval_fresh_scan_seconds": fresh_s,
        "xeval_incremental_scan_seconds": incremental_s,
        "xeval_speedup": round(fresh_s / incremental_s, 2),
    }


def test_fastpath_speedups_and_baseline(report_sink):
    committed = (json.loads(BASELINE_PATH.read_text())
                 if BASELINE_PATH.exists() else None)
    check_mode = os.environ.get("REPRO_PERF_CHECK", "") == "1"

    measured: dict[str, float] = {}
    measured.update(_sim_speedups())
    measured.update(_lp_speedup())
    measured.update(_xeval_speedup())
    opt = run_experiment("protocol-optimality")
    measured["protocol_optimality_wall_seconds"] = round(
        opt.metadata["obs"]["wall_seconds"], 4)

    lines = ["fast-path speedup guard"]
    for n in _SIM_SIZES:
        lines.append(
            f"  sim n={n:<4d} events {measured[f'sim_events_n{n}_seconds'] * 1e3:8.2f} ms, "
            f"analytic {measured[f'sim_analytic_n{n}_seconds'] * 1e3:8.3f} ms "
            f"(x{measured[f'sim_speedup_n{n}']:.0f})")
    lines.append(
        f"  LP batch   {_LP_PAIRS} pairs: loop {measured['lp_loop_seconds'] * 1e3:.1f} ms, "
        f"batch {measured['lp_batch_seconds'] * 1e3:.1f} ms "
        f"(x{measured['lp_batch_speedup']:.2f})")
    lines.append(
        f"  XEvaluator n={_XEVAL_N} scan: fresh {measured['xeval_fresh_scan_seconds'] * 1e3:.2f} ms, "
        f"incremental {measured['xeval_incremental_scan_seconds'] * 1e3:.3f} ms "
        f"(x{measured['xeval_speedup']:.0f})")
    lines.append(
        f"  protocol-optimality wall "
        f"{measured['protocol_optimality_wall_seconds']:.3f} s")
    report_sink("fastpath-equivalence", "\n".join(lines))

    if not check_mode:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")

    assert measured["sim_speedup_n512"] >= _SIM_SPEEDUP_FLOOR, (
        f"analytic fast path is only {measured['sim_speedup_n512']:.1f}x the "
        f"event engine at n=512 (floor {_SIM_SPEEDUP_FLOOR}x)")

    if check_mode:
        assert committed is not None, (
            f"REPRO_PERF_CHECK=1 but no committed baseline at {BASELINE_PATH}")
        regressions = []
        for key in _GUARDED:
            floor = committed[key] * _REGRESSION_KEEP
            if measured[key] < floor:
                regressions.append(
                    f"{key}: {measured[key]:.2f}x vs committed "
                    f"{committed[key]:.2f}x (floor {floor:.2f}x)")
        assert not regressions, (
            "fast-path speedup regressed >25% vs BENCH_perf_kernels.json:\n  "
            + "\n  ".join(regressions))
