"""Benchmark: regenerate Figure 4 (iterative speedups, phase 2).

Continues the Figure-3 run past the homogeneous ⟨1/16,…⟩ profile and
verifies the paper's phase-2 claim: condition (2) now governs every
round, so the slowest computer is the one sped up each time.
"""

from repro.experiments import run_fig4


def test_fig4(benchmark, report_sink):
    result = benchmark(run_fig4)
    report_sink("fig4", result.render())
    # Two complete slowest-first sweeps.
    assert result.metadata["chosen_sequence"] == (3, 2, 1, 0, 3, 2, 1, 0)
    for row in result.rows:
        assert ("condition-2" in row[2]) or ("tie-break" in row[2])


def test_fig4_long_horizon(benchmark, report_sink):
    """Condition (2) persists arbitrarily deep into phase 2."""
    result = benchmark(run_fig4, phase2_rounds=16)
    report_sink("fig4-long", result.render())
    assert result.metadata["chosen_sequence"] == (3, 2, 1, 0) * 4
    assert all(abs(r - 1 / 256) < 1e-15
               for r in result.metadata["final_profile"])
