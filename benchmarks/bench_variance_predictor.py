"""Benchmark: regenerate the §4.3 variance-predictor study.

Reruns the accuracy-vs-cluster-size trials (the paper's k = 2…16
powers-of-two sweep, truncated by default for runtime; pass larger
sizes to go to 2^16) and asserts the paper's three findings:

* bad pairs exist beyond n = 2 (Theorem 5(2) does not generalise);
* accuracy settles into a plateau well above a coin flip (paper ≈76%);
* bad pairs have systematically smaller HECR gaps.
"""

import numpy as np

from repro.core.params import PAPER_TABLE1
from repro.experiments import run_variance_trials
from repro.experiments.variance_trials import collect_trials


def test_variance_trials(benchmark, report_sink):
    result = benchmark.pedantic(
        run_variance_trials,
        kwargs=dict(sizes=(4, 8, 16, 32, 64, 128, 256, 512, 1024),
                    trials_per_size=300, seed=2010),
        rounds=1, iterations=1)
    report_sink("variance-trials", result.render())

    batches = result.metadata["batches"]
    assert any(b.fraction_good < 1.0 for b in batches if b.n >= 8)
    overall = result.metadata["overall_good"]
    assert 0.70 <= overall <= 0.95, f"overall accuracy {overall}"
    for b in batches:
        if not np.isnan(b.mean_bad_hecr_gap):
            assert b.mean_bad_hecr_gap < b.mean_good_hecr_gap


def test_variance_trials_large_n(benchmark, report_sink):
    """One paper-scale batch (n = 2^14) to exercise the vectorised path."""
    rng = np.random.default_rng(7)
    batch = benchmark.pedantic(
        collect_trials, args=(rng, 2 ** 14, 40, PAPER_TABLE1),
        rounds=1, iterations=1)
    report_sink("variance-trials-16k",
                f"n=2^14: {100 * batch.fraction_good:.1f}% good over "
                f"{batch.n_trials} trials")
    assert batch.fraction_good > 0.5
