"""Benchmark: regenerate Figures 1–2 (worksharing action/time diagrams).

Builds the explicit FIFO timelines for one and three remote computers —
the paper's Figs. 1 and 2 — renders them as interval listings, and
checks the structural properties the figures depict (seriatim sends,
contiguous results ending at L).
"""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.feasibility import check_timeline
from repro.protocols.fifo import fifo_allocation
from repro.protocols.timeline import build_timeline

#: Communication-visible parameters so the diagram segments have width.
_PARAMS = ModelParams(tau=0.03, pi=0.003, delta=1.0)


def _render(timeline) -> str:
    lines = []
    for resource in timeline.resources:
        lines.append(f"{resource}:")
        for iv in timeline.on_resource(resource):
            lines.append(f"  [{iv.start:10.4f}, {iv.end:10.4f})  "
                         f"{iv.kind:<14s} C{iv.computer + 1}")
    return "\n".join(lines)


def test_fig1_single_worker(benchmark, report_sink):
    profile = Profile([1.0])
    alloc = fifo_allocation(profile, _PARAMS, 10.0)
    timeline = benchmark(build_timeline, alloc)
    report_sink("fig1-timeline", "Figure 1: one remote computer\n" + _render(timeline))
    kinds = [iv.kind for iv in timeline.for_computer(0)]
    assert kinds == ["work-prep", "work-transit", "busy", "result-transit"]
    assert timeline.makespan == pytest.approx(10.0, rel=1e-12)


def test_fig2_three_workers(benchmark, report_sink):
    profile = Profile([1.0, 0.5, 1 / 3])
    alloc = fifo_allocation(profile, _PARAMS, 10.0)
    timeline = benchmark(build_timeline, alloc)
    report_sink("fig2-timeline", "Figure 2: three remote computers\n" + _render(timeline))
    report = check_timeline(timeline)
    assert report.feasible, report.describe()
    results = [iv for iv in timeline.on_resource("network")
               if iv.kind == "result-transit"]
    assert [iv.computer for iv in results] == [0, 1, 2]      # FIFO order
    assert results[-1].end == pytest.approx(10.0, rel=1e-12)  # ends at L


def test_timeline_scaling(benchmark):
    """Timeline construction for a 256-computer cluster."""
    profile = Profile.harmonic(256)
    alloc = fifo_allocation(profile, ModelParams(tau=1e-5, pi=1e-6, delta=1.0), 10.0)
    timeline = benchmark(build_timeline, alloc)
    assert len(timeline.intervals) == 4 * 256
