"""Benchmark: regenerate Table 4 (additive-speedup work ratios).

Prints our eq.-(1) work ratios next to the paper's printed column and
asserts Theorem 3's shape (every ratio > 1, strictly increasing toward
the fastest computer).
"""

import numpy as np
import pytest

from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.experiments import run_table4
from repro.speedup.additive import additive_work_ratios


def test_table4(benchmark, report_sink):
    result = benchmark(run_table4)
    report_sink("table4", result.render())
    ratios = result.metadata["ratios"]
    assert all(r > 1.0 for r in ratios)
    assert list(ratios) == sorted(ratios)
    assert result.metadata["best_index"] == 3


@pytest.mark.parametrize("n", [4, 64, 512])
def test_additive_sweep_scaling(benchmark, n):
    """The n-candidate upgrade sweep is O(n²); timed at three scales."""
    profile = Profile.harmonic(n)
    phi = profile.fastest_rho / 2.0
    ratios = benchmark(additive_work_ratios, profile, PAPER_TABLE1, phi)
    assert (np.diff(ratios) > 0.0).all()
