"""Benchmark: regenerate the §4 opening example.

⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩ — minorization is not necessary for
dominance and mean speed mispredicts; the heterogeneous cluster wins by
an order of magnitude in X.
"""

import pytest

from repro.experiments import run_minorization_demo


def test_sec4_example(benchmark, report_sink):
    result = benchmark(run_minorization_demo)
    report_sink("sec4-example", result.render())
    assert result.metadata["x1"] > result.metadata["x2"]
    assert result.metadata["x1"] == pytest.approx(51.0, abs=0.5)
    assert result.metadata["x2"] == pytest.approx(4.0, abs=0.05)
