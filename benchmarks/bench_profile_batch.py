"""ProfileBatch columnar-kernel throughput and parity guard.

Measures the :mod:`repro.core.batch_kernels` columnar layer against the
scalar kernels it absorbs and records the results to
``BENCH_profile_batch.json`` at the repo root — the perf trajectory
baseline future PRs regress against:

1. **X throughput** — construct a fresh :class:`ProfileBatch` from an
   (m, n) ρ-matrix and evaluate every row's X, versus a scalar
   ``x_measure`` loop.  The batch path must sustain ≥10⁶ X evaluations
   per second at n = 32 (the acceptance floor, asserted every run).
2. **HECR throughput** — :meth:`ProfileBatch.hecr` (Proposition 1,
   vectorised) versus a scalar ``hecr_from_x`` loop over the same
   precomputed X column.
3. **Edit previews** — :meth:`BatchXEvaluator.x_with_rho_many`, one
   single-ρ edit preview per row, versus a loop of per-row
   :class:`~repro.core.measure.XEvaluator` previews.

Every section re-asserts scalar parity *before* timing — bitwise for X
and previews, ≤1e-12 relative for HECR (NumPy's SIMD ``log1p``/``expm1``
may differ from libm by 1 ulp).  A fast path that drifts is not a
speedup.

Timings use best-of-N minima.  Speedups are recorded both ways: as
``*_speedup`` (human-facing, higher is better) and as ``*_cost_ratio``
(batch seconds over scalar seconds — machine-independent, *lower* is
better) so the CI ``obs compare`` drift watchdog, which flags increases,
can gate the ratios.  With ``REPRO_PERF_CHECK=1`` the run compares
against the committed baseline and fails if any speedup kept less than
75% of its committed value — the CI ``perf`` job runs in this mode.  A
fresh measurement is always written to
``benchmarks/output/profile-batch-measured.json`` for the watchdog.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.core.batch_kernels import BatchXEvaluator, ProfileBatch
from repro.core.hecr import hecr_from_x
from repro.core.measure import XEvaluator, x_measure
from repro.core.params import PAPER_TABLE1
from repro.errors import InvalidParameterError

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_profile_batch.json"
MEASURED_PATH = Path(__file__).resolve().parent / "output" / "profile-batch-measured.json"

_PARAMS = PAPER_TABLE1
_M = 4096
_N = 32
_REPEATS = 9
#: The sub-100µs batch kernels need many repeats for a stable minimum.
_FAST_REPEATS = 30
_SCALAR_REPEATS = 5

#: Acceptance floor: fresh-construct-then-X throughput at n = 32.
_X_EVALS_PER_SEC_FLOOR = 1.0e6
#: Check mode fails when a speedup keeps less than this fraction of its
#: committed baseline value.  Looser than the fast-path guard's 0.75:
#: the batch sides here are tens of microseconds, where scheduler noise
#: moves even a best-of-N minimum by tens of percent run to run, while
#: a real regression (de-vectorising a kernel) costs 20x or more.
_REGRESSION_KEEP = 0.5
#: The speedups guarded in check mode.
_GUARDED = ("x_speedup", "hecr_speedup", "preview_speedup")


def _best(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _rho_matrix() -> np.ndarray:
    rng = np.random.default_rng(7)
    return 10.0 ** rng.uniform(-2, 1, size=(_M, _N))


def _x_throughput(rows: np.ndarray) -> dict[str, float]:
    # Parity first: every batch X must be bitwise the scalar x_measure.
    xs = ProfileBatch(rows, copy=False).x(_PARAMS)
    for i in (0, _M // 2, _M - 1):
        assert xs[i] == x_measure(rows[i], _PARAMS)

    def batch():
        return ProfileBatch(rows, copy=False).x(_PARAMS)

    def scalar_loop():
        return [x_measure(row, _PARAMS) for row in rows]

    batch_s = _best(batch)
    loop_s = _best(scalar_loop, repeats=_SCALAR_REPEATS)
    return {
        "x_batch_seconds": batch_s,
        "x_scalar_loop_seconds": loop_s,
        "x_evals_per_sec": round(_M / batch_s),
        "x_speedup": round(loop_s / batch_s, 2),
        "x_cost_ratio": round(batch_s / loop_s, 5),
    }


def _hecr_throughput(rows: np.ndarray) -> dict[str, float]:
    batch = ProfileBatch(rows, copy=False)
    xs = batch.x(_PARAMS)
    hs = batch.hecr(_PARAMS, x=xs)

    def scalar_loop():
        out = []
        for x in xs:
            try:
                out.append(hecr_from_x(float(x), _N, _PARAMS))
            except InvalidParameterError:
                out.append(float("nan"))
        return out

    # Parity: finite rows to <=1e-12 relative, refusals exactly NaN.
    for h, s in zip(hs, scalar_loop()):
        assert math.isclose(h, s, rel_tol=1e-12) or (
            math.isnan(h) and math.isnan(s))

    batch_s = _best(lambda: batch.hecr(_PARAMS, x=xs), repeats=_FAST_REPEATS)
    loop_s = _best(scalar_loop, repeats=_SCALAR_REPEATS)
    return {
        "hecr_batch_seconds": batch_s,
        "hecr_scalar_loop_seconds": loop_s,
        "hecr_evals_per_sec": round(_M / batch_s),
        "hecr_speedup": round(loop_s / batch_s, 2),
        "hecr_cost_ratio": round(batch_s / loop_s, 5),
    }


def _preview_throughput(rows: np.ndarray) -> dict[str, float]:
    rng = np.random.default_rng(11)
    indices = rng.integers(0, _N, size=_M)
    values = 10.0 ** rng.uniform(-2, 1, size=_M)
    batch_ev = BatchXEvaluator(rows, _PARAMS)
    previews = batch_ev.x_with_rho(indices, values)
    # Parity: each preview is bitwise the per-row incremental evaluator.
    for i in (0, _M // 2, _M - 1):
        solo = XEvaluator(rows[i], _PARAMS)
        assert previews[i] == solo.x_with_rho(int(indices[i]), float(values[i]))

    evaluators = [XEvaluator(row, _PARAMS) for row in rows]

    def scalar_loop():
        return [ev.x_with_rho(int(k), float(v))
                for ev, k, v in zip(evaluators, indices, values)]

    batch_s = _best(lambda: batch_ev.x_with_rho(indices, values),
                    repeats=_FAST_REPEATS)
    loop_s = _best(scalar_loop, repeats=_SCALAR_REPEATS)
    return {
        "preview_batch_seconds": batch_s,
        "preview_scalar_loop_seconds": loop_s,
        "preview_evals_per_sec": round(_M / batch_s),
        "preview_speedup": round(loop_s / batch_s, 2),
        "preview_cost_ratio": round(batch_s / loop_s, 5),
    }


def test_profile_batch_throughput_and_baseline(report_sink):
    committed = (json.loads(BASELINE_PATH.read_text())
                 if BASELINE_PATH.exists() else None)
    check_mode = os.environ.get("REPRO_PERF_CHECK", "") == "1"

    rows = _rho_matrix()
    measured: dict[str, float] = {"batch_m": _M, "batch_n": _N}
    measured.update(_x_throughput(rows))
    measured.update(_hecr_throughput(rows))
    measured.update(_preview_throughput(rows))

    lines = [
        f"ProfileBatch columnar kernels, m={_M} n={_N}",
        f"  X        batch {measured['x_batch_seconds'] * 1e3:7.3f} ms "
        f"({measured['x_evals_per_sec'] / 1e6:.2f} M evals/s), "
        f"scalar loop {measured['x_scalar_loop_seconds'] * 1e3:7.1f} ms "
        f"(x{measured['x_speedup']:.1f})",
        f"  HECR     batch {measured['hecr_batch_seconds'] * 1e6:7.1f} us "
        f"({measured['hecr_evals_per_sec'] / 1e6:.0f} M evals/s), "
        f"scalar loop {measured['hecr_scalar_loop_seconds'] * 1e3:7.1f} ms "
        f"(x{measured['hecr_speedup']:.1f})",
        f"  previews batch {measured['preview_batch_seconds'] * 1e3:7.3f} ms "
        f"({measured['preview_evals_per_sec'] / 1e6:.2f} M evals/s), "
        f"XEvaluator loop {measured['preview_scalar_loop_seconds'] * 1e3:7.1f} ms "
        f"(x{measured['preview_speedup']:.1f})",
    ]
    report_sink("profile-batch", "\n".join(lines))

    # Always leave a fresh measurement for the CI drift watchdog.
    MEASURED_PATH.parent.mkdir(parents=True, exist_ok=True)
    MEASURED_PATH.write_text(json.dumps(measured, indent=2) + "\n")
    if not check_mode:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")

    assert measured["x_evals_per_sec"] >= _X_EVALS_PER_SEC_FLOOR, (
        f"ProfileBatch X throughput is only "
        f"{measured['x_evals_per_sec'] / 1e6:.2f}M evals/s at n={_N} "
        f"(floor {_X_EVALS_PER_SEC_FLOOR / 1e6:.0f}M)")

    if check_mode:
        assert committed is not None, (
            f"REPRO_PERF_CHECK=1 but no committed baseline at {BASELINE_PATH}")
        regressions = []
        for key in _GUARDED:
            floor = committed[key] * _REGRESSION_KEEP
            if measured[key] < floor:
                regressions.append(
                    f"{key}: {measured[key]:.2f}x vs committed "
                    f"{committed[key]:.2f}x (floor {floor:.2f}x)")
        assert not regressions, (
            "columnar-kernel speedup regressed >25% vs "
            "BENCH_profile_batch.json:\n  " + "\n  ".join(regressions))
