"""Benchmark (ablation): Theorem 1 — FIFO optimality and order-invariance.

Not a table in the paper, but the theorem every result stands on.  The
bench quantifies the FIFO premium over LIFO/random protocols across
communication intensities, and times the three scheduling routes
(closed form, LP, discrete-event simulation) against each other.
"""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments import run_protocol_optimality
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation
from repro.simulation.runner import simulate_allocation


def test_protocol_optimality(benchmark, report_sink):
    result = benchmark.pedantic(run_protocol_optimality, rounds=1, iterations=1)
    report_sink("protocol-optimality", result.render())
    assert result.metadata["max_violation"] <= 1e-9
    premiums = [row[4] for row in result.rows]
    assert premiums == sorted(premiums)  # premium grows with tau


#: Communication-visible but unsaturated: A·X ≈ 0.29 for this profile.
_PARAMS = ModelParams(tau=0.002, pi=0.0002, delta=1.0)
_PROFILE = Profile.harmonic(16)


def test_route_closed_form(benchmark):
    alloc = benchmark(fifo_allocation, _PROFILE, _PARAMS, 100.0)
    assert alloc.total_work > 0


def test_route_lp(benchmark):
    order = tuple(range(_PROFILE.n))
    alloc = benchmark(lp_allocation, _PROFILE, _PARAMS, 100.0, order, order)
    closed = fifo_allocation(_PROFILE, _PARAMS, 100.0)
    assert alloc.total_work == pytest.approx(closed.total_work, rel=1e-6)


def test_route_simulation(benchmark):
    alloc = fifo_allocation(_PROFILE, _PARAMS, 100.0)
    result = benchmark(simulate_allocation, alloc)
    assert result.completed_work == pytest.approx(alloc.total_work, rel=1e-9)
