"""Benchmark: the X-measure kernels at paper scale.

The §4.3 experiments evaluate X on clusters up to n = 2^16 and on
thousands of cluster pairs; these benches time the scalar kernel across
scales and quantify the batched kernel's advantage over a Python loop.
"""

import numpy as np
import pytest

from repro.core.hecr import hecr_many
from repro.core.measure import x_measure, x_measure_many
from repro.core.params import PAPER_TABLE1


@pytest.mark.parametrize("n", [64, 4096, 65536])
def test_x_measure_scaling(benchmark, n):
    """Scalar X at n = 2^6 … 2^16 — O(n) vectorised."""
    rng = np.random.default_rng(1)
    rho = rng.uniform(0.05, 1.0, n)
    value = benchmark(x_measure, rho, PAPER_TABLE1)
    assert value > 0.0


def test_x_measure_many_batch(benchmark):
    """Batched X for 1000 × 256 profiles (the §4.3 inner loop)."""
    rng = np.random.default_rng(2)
    profiles = rng.uniform(0.05, 1.0, size=(1000, 256))
    batch = benchmark(x_measure_many, profiles, PAPER_TABLE1)
    assert batch.shape == (1000,)
    assert (batch > 0).all()


def test_x_measure_many_matches_loop(benchmark):
    """The batch kernel must equal the scalar loop; time the batch."""
    rng = np.random.default_rng(3)
    profiles = rng.uniform(0.05, 1.0, size=(200, 64))
    batch = benchmark(x_measure_many, profiles, PAPER_TABLE1)
    loop = np.array([x_measure(row, PAPER_TABLE1) for row in profiles])
    assert batch == pytest.approx(loop, rel=1e-12)


def test_hecr_many_batch(benchmark):
    """Batched HECR on 1000 × 256 profiles."""
    rng = np.random.default_rng(4)
    profiles = rng.uniform(0.05, 1.0, size=(1000, 256))
    xs = x_measure_many(profiles, PAPER_TABLE1)
    hecrs = benchmark(hecr_many, profiles, xs, PAPER_TABLE1)
    assert np.isfinite(hecrs).all()
    assert (hecrs > 0).all()
