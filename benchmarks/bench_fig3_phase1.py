"""Benchmark: regenerate Figure 3 (iterative speedups, phase 1).

Reruns the paper's 16-round optimal-multiplicative-speedup experiment
from ⟨1,1,1,1⟩ and prints the round table plus the ASCII bar-graph strip
(the figure itself).  Asserts the exact choice sequence the paper
narrates.
"""

from repro.experiments import run_fig3


def test_fig3(benchmark, report_sink):
    result = benchmark(run_fig3)
    report_sink("fig3", result.render())
    assert result.metadata["chosen_sequence"] == (
        3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0)
    final = result.metadata["final_profile"]
    assert all(abs(r - 1 / 16) < 1e-12 for r in final)


def test_fig3_larger_cluster(benchmark, report_sink):
    """The same experiment on 8 computers: phase 1 takes 4 rounds each."""
    result = benchmark(run_fig3, n_computers=8, n_rounds=32)
    report_sink("fig3-n8", result.render())
    chosen = result.metadata["chosen_sequence"]
    # Each computer is ridden down for 4 consecutive rounds, fastest first.
    assert chosen[:4] == (7, 7, 7, 7)
    assert all(abs(r - 1 / 16) < 1e-12 for r in result.metadata["final_profile"])
