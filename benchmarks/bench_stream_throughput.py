"""Stream-layer throughput guard: windows must stay cheap per event.

Measures :class:`repro.stream.engine.StreamProcessor` end to end on a
synthetic drifting trace and records the results to
``BENCH_stream_throughput.json`` at the repo root:

1. **Ingest throughput** — events/second through feed-close-emit with
   calibration off, the floor the CLI's stdin path inherits.
2. **Calibration overhead** — the same trace with the online (τ, π, δ,
   ρ) fit on, as ``calibration_cost_ratio`` (calibrated seconds over
   uncalibrated seconds — machine-independent, lower is better).
3. **Shadow overhead** — one extra what-if evaluation per window, as
   ``shadow_cost_ratio`` over the plain calibrated run.
4. **Per-event unit cost** — one admitted event against one scalar
   ``x_measure`` evaluation on the same cluster size, as
   ``event_over_x_cost_ratio``; this pins the stream layer's bookkeeping
   to the repo's canonical kernel cost instead of wall-clock.

Timings use best-of-N minima.  The ``*_cost_ratio`` keys are what the
CI ``obs compare`` drift watchdog gates (its default key pattern matches
``ratio``); with ``REPRO_PERF_CHECK=1`` this run additionally fails hard
when a ratio exceeds its committed value by more than
``_REGRESSION_ALLOWANCE``.  A fresh measurement is always written to
``benchmarks/output/stream-throughput-measured.json`` for the watchdog.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.measure import x_measure
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.stream import StreamProcessor, synthetic_trace

BASELINE_PATH = (Path(__file__).resolve().parent.parent
                 / "BENCH_stream_throughput.json")
MEASURED_PATH = (Path(__file__).resolve().parent / "output"
                 / "stream-throughput-measured.json")

_PROFILE = Profile([1.0, 0.7, 0.5, 0.35, 0.25, 0.17, 0.12, 0.08])
_WINDOWS = 40
_WINDOW = 10.0
_REPEATS = 5
_X_REPEATS = 20_000

#: Absolute acceptance floor on uncalibrated ingest (events/second).
#: Conservative: the hot path is pure-Python dict/list bookkeeping plus
#: one ProfileBatch evaluation per *window*, so even busy CI machines
#: clear this by an order of magnitude.
_EVENTS_PER_SEC_FLOOR = 5_000.0

#: Check mode fails when a cost ratio grows beyond committed * allowance.
#: Ratios of two in-process timings are stable run to run; 2x headroom
#: only trips on real regressions (e.g. a per-event refit).
_REGRESSION_ALLOWANCE = 2.0
_GUARDED = ("calibration_cost_ratio", "shadow_cost_ratio",
            "event_over_x_cost_ratio")


def _trace() -> list:
    return list(synthetic_trace(
        profile=_PROFILE, params=PAPER_TABLE1, windows=_WINDOWS,
        window=_WINDOW, drift_worker=1, drift_factor=2.0, drift_window=5))


def _best_replay(events, **kwargs) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        processor = StreamProcessor(_WINDOW, params=PAPER_TABLE1, **kwargs)
        start = time.perf_counter()
        for _record in processor.process(events):
            pass
        processor.finish()
        best = min(best, time.perf_counter() - start)
    return best


def test_stream_throughput_and_baseline(report_sink):
    committed = (json.loads(BASELINE_PATH.read_text())
                 if BASELINE_PATH.exists() else None)
    check_mode = os.environ.get("REPRO_PERF_CHECK", "") == "1"

    events = _trace()
    plain_s = _best_replay(events, calibrate=False)
    calibrated_s = _best_replay(events, calibrate=True)
    shadow_s = _best_replay(events, calibrate=True,
                            what_if=list(map(float, _PROFILE.rho)))

    rho = np.asarray(_PROFILE.rho, dtype=float)
    start = time.perf_counter()
    for _ in range(_X_REPEATS):
        x_measure(rho, PAPER_TABLE1)
    x_unit_s = (time.perf_counter() - start) / _X_REPEATS

    per_event_s = plain_s / len(events)
    measured = {
        "events": len(events),
        "windows": _WINDOWS,
        "cluster_n": _PROFILE.n,
        "plain_replay_seconds": plain_s,
        "calibrated_replay_seconds": calibrated_s,
        "shadow_replay_seconds": shadow_s,
        "events_per_sec": round(len(events) / plain_s),
        "calibration_cost_ratio": round(calibrated_s / plain_s, 4),
        "shadow_cost_ratio": round(shadow_s / calibrated_s, 4),
        "x_measure_unit_seconds": x_unit_s,
        "event_over_x_cost_ratio": round(per_event_s / x_unit_s, 3),
    }

    lines = [
        f"stream throughput, n={_PROFILE.n} x {_WINDOWS} windows "
        f"({len(events)} events)",
        f"  uncalibrated {plain_s * 1e3:7.2f} ms "
        f"({measured['events_per_sec'] / 1e3:.1f} k events/s)",
        f"  calibrated   {calibrated_s * 1e3:7.2f} ms "
        f"(x{measured['calibration_cost_ratio']:.2f})",
        f"  + shadow     {shadow_s * 1e3:7.2f} ms "
        f"(x{measured['shadow_cost_ratio']:.2f} vs calibrated)",
        f"  one event costs {measured['event_over_x_cost_ratio']:.1f} "
        f"x_measure evaluations",
    ]
    report_sink("stream-throughput", "\n".join(lines))

    # Always leave a fresh measurement for the CI drift watchdog.
    MEASURED_PATH.parent.mkdir(parents=True, exist_ok=True)
    MEASURED_PATH.write_text(json.dumps(measured, indent=2) + "\n")
    if not check_mode:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")

    assert measured["events_per_sec"] >= _EVENTS_PER_SEC_FLOOR, (
        f"stream ingest is only {measured['events_per_sec']:.0f} events/s "
        f"(floor {_EVENTS_PER_SEC_FLOOR:.0f}) — something heavy landed on "
        f"the per-event path")

    if check_mode:
        assert committed is not None, (
            f"REPRO_PERF_CHECK=1 but no committed baseline at "
            f"{BASELINE_PATH}")
        regressions = []
        for key in _GUARDED:
            ceiling = committed[key] * _REGRESSION_ALLOWANCE
            if measured[key] > ceiling:
                regressions.append(
                    f"{key}: {measured[key]:.3f} vs committed "
                    f"{committed[key]:.3f} (ceiling {ceiling:.3f})")
        assert not regressions, (
            "stream cost ratio regressed vs BENCH_stream_throughput.json:"
            "\n  " + "\n  ".join(regressions))


def test_calibration_does_not_change_uncalibrated_records():
    """The calibrator must be a pure observer of the window stream."""
    events = _trace()

    def windows(calibrate):
        processor = StreamProcessor(_WINDOW, params=PAPER_TABLE1,
                                    calibrate=calibrate)
        records = list(processor.process(events))
        records.extend(processor.finish())
        return records

    off = windows(False)
    on = windows(True)
    assert len(off) == len(on)
    for a, b in zip(off, on):
        if a["kind"] == "window":
            assert a["events"] == b["events"]
            assert a["declared"] == b["declared"]
