"""Benchmark: regenerate the §4.3 θ-threshold study (paper: θ = 0.167).

Searches for the variance-gap level above which the variance predictor
was never wrong, and prints the accuracy-vs-gap curve.
"""

from repro.experiments import run_threshold
from repro.experiments.threshold import PAPER_THETA


def test_variance_threshold(benchmark, report_sink):
    result = benchmark.pedantic(
        run_threshold,
        kwargs=dict(sizes=(4, 8, 16, 32, 64, 128), trials_per_size=300,
                    seed=167),
        rounds=1, iterations=1)
    report_sink("variance-threshold", result.render())

    theta = result.metadata["empirical_theta"]
    assert 0.0 < theta < 3 * PAPER_THETA  # same order as the paper's 0.167
    # Accuracy at the paper's threshold: every pair with a gap >= 0.167
    # must be predicted correctly (or no such pair sampled).
    row_at_paper_theta = [row for row in result.rows if row[0] == PAPER_THETA][0]
    if row_at_paper_theta[1] > 0:
        assert row_at_paper_theta[2] == 100.0
