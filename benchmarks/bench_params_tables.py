"""Benchmark: regenerate Tables 1 and 2 (model parameters).

The computation is trivial; the value of this bench is the regenerated
artifact (the parameter tables with the paper's figures alongside) and a
timing floor for the :class:`ModelParams` machinery.
"""

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments import run_table1, run_table2


def test_table1(benchmark, report_sink):
    result = benchmark(run_table1)
    report_sink("table1", result.render())
    assert len(result.rows) == 3


def test_table2(benchmark, report_sink):
    result = benchmark(run_table2)
    report_sink("table2", result.render())
    assert result.metadata["A"] == PAPER_TABLE1.A


def test_params_construction_throughput(benchmark):
    """Microbenchmark: parameter-object construction plus derived values."""
    def build():
        p = ModelParams(tau=1e-6, pi=1e-5, delta=1.0)
        return p.A, p.B, p.speedup_threshold

    A, B, threshold = benchmark(build)
    assert A == PAPER_TABLE1.A and B == PAPER_TABLE1.B
    assert threshold > 0
