"""Serving-layer throughput benchmark: micro-batched vs unbatched.

Boots the service twice on a loopback ephemeral port — once with the
micro-batching coalescer on (the default 2 ms window) and once strictly
unbatched (``max_batch=1``) — and drives both with the same closed-loop
multi-threaded workload of hot evaluation queries (``/v1/x``, ``/v1/hecr``,
FIFO and LP ``/v1/allocate``).  The response cache is disabled in both
phases so the measured difference is the coalescer's: request collapsing,
the shared ``XEvaluator`` pool, and grouped ``lp_allocation_many`` solves.

A third phase overloads a deliberately tiny server (``max_inflight=2``
plus a token bucket) and checks that overload is *shed* — 429/503 with a
``Retry-After`` hint — rather than queued into client timeouts.

Numbers (throughput, p50/p99 latency, batch/shed statistics) land in
``BENCH_service_throughput.json`` at the repo root, and a rendered report
in ``benchmarks/output/service-throughput.txt``.  With
``REPRO_PERF_CHECK=1`` (the CI ``service`` job) the committed baseline is
left untouched and the batched-over-unbatched speedup floor is asserted.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.service import ServiceConfig, ServiceError, ServiceThread

BASELINE_PATH = (Path(__file__).resolve().parent.parent
                 / "BENCH_service_throughput.json")

#: Seconds of closed-loop load per measured phase (the CI mini load test
#: runs two phases plus the shedding phase in roughly five seconds).
_PHASE_SECONDS = float(os.environ.get("REPRO_SVC_BENCH_SECONDS", "2.0"))
_THREADS = 16

#: Required batched/unbatched throughput ratio in check mode.  The win
#: comes from sharing work, not from extra cores, so the floor holds on
#: single-core runners too — collapsed duplicates and grouped LP solves
#: cost one evaluation however many clients wait on them.
_SPEEDUP_FLOOR = 1.15

#: One hot cluster, harmonic speeds.  At n=24 an LP solve costs a few
#: milliseconds — enough to dominate per-request HTTP overhead, small
#: enough that grouped ``lp_allocation_many`` still amortises the
#: constraint assembly (at much larger n the solver itself dominates
#: and grouping stops paying).
_CLUSTER = tuple(1.0 / (i + 1) for i in range(24))
_NATURAL = tuple(range(len(_CLUSTER)))
_REVERSED = tuple(reversed(_NATURAL))
_ROTATED = _NATURAL[1:] + _NATURAL[:1]

#: The request mix, LP-heavy because LP is the expensive hot query.
#: Threads walk it round-robin from different offsets, so at any
#: instant several threads are asking the same hot question — the
#: thundering herd the coalescer exists to collapse — while the three
#: distinct LP order pairs exercise grouped solving.
_WORKLOAD = [
    ("x", lambda c: c.x(_CLUSTER)),
    ("lp-natural", lambda c: c.allocate(_CLUSTER, lifespan=200.0,
                                        protocol="lp")),
    ("hecr", lambda c: c.hecr(_CLUSTER)),
    ("lp-reversed", lambda c: c.allocate(_CLUSTER, lifespan=200.0,
                                         protocol="lp",
                                         startup_order=_REVERSED,
                                         finishing_order=_ROTATED)),
    ("work", lambda c: c.work(_CLUSTER, lifespan=200.0)),
    ("lp-rotated", lambda c: c.allocate(_CLUSTER, lifespan=200.0,
                                        protocol="lp",
                                        startup_order=_ROTATED,
                                        finishing_order=_REVERSED)),
]


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _load_phase(config: ServiceConfig) -> tuple[dict, dict]:
    """Drive one server with the closed-loop workload.

    Returns ``(stats, responses)`` where ``responses`` maps each
    workload item name to its decoded JSON answer — the cross-phase
    bit-identity check.
    """
    latencies: list[list[float]] = [[] for _ in range(_THREADS)]
    errors: list[str] = []
    with ServiceThread(config, registry=MetricsRegistry()) as server:
        stop_at = time.perf_counter() + _PHASE_SECONDS

        def worker(tid: int) -> None:
            with server.client(timeout=30.0) as client:
                step = tid
                while time.perf_counter() < stop_at:
                    _, call = _WORKLOAD[step % len(_WORKLOAD)]
                    begin = time.perf_counter()
                    try:
                        call(client)
                    except ServiceError as exc:  # any failure voids the run
                        errors.append(str(exc))
                        return
                    latencies[tid].append(time.perf_counter() - begin)
                    step += 1

        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(tid,))
                   for tid in range(_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

        assert not errors, f"load worker failed: {errors[0]}"
        with server.client() as client:
            responses = {name: call(client) for name, call in _WORKLOAD}

        batcher = server.service.batcher
        solver = batcher.solver
        flat = sorted(value for bucket in latencies for value in bucket)
        assert flat, "load phase issued no requests"
        stats = {
            "requests": len(flat),
            "seconds": round(elapsed, 4),
            "throughput_rps": round(len(flat) / elapsed, 2),
            "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
            "batches": batcher.batches,
            "mean_batch_size": round(batcher.requests
                                     / max(1, batcher.batches), 3),
            "collapsed": solver.collapsed,
            "lp_grouped": solver.lp_grouped,
        }
    return stats, responses


def _shed_phase() -> dict:
    """Overload a tiny server; overload must shed, not time out."""
    config = ServiceConfig(port=0, max_inflight=2, rate=150.0, burst=8.0,
                           cache_ttl=0.0, no_result_cache=True)
    counts = {"attempts": 0, "ok": 0, "shed_429": 0, "shed_503": 0,
              "timeouts": 0}
    hints: list[float] = []
    lock = threading.Lock()
    with ServiceThread(config, registry=MetricsRegistry()) as server:
        stop_at = time.perf_counter() + min(1.5, _PHASE_SECONDS)

        def worker() -> None:
            with server.client(timeout=30.0) as client:
                while time.perf_counter() < stop_at:
                    try:
                        client.allocate(_CLUSTER, lifespan=200.0,
                                        protocol="lp")
                        outcome = "ok"
                    except ServiceError as exc:
                        if exc.shed:
                            outcome = f"shed_{exc.status}"
                            with lock:
                                hints.append(exc.retry_after)
                        else:
                            outcome = "timeouts"
                    with lock:
                        counts["attempts"] += 1
                        counts[outcome] += 1

        threads = [threading.Thread(target=worker) for _ in range(_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shed_counter = server.service.registry.counter("svc_shed_total", "")
        shed_metric = sum(sample.value for sample in shed_counter.samples())

    counts["shed_total_metric"] = int(shed_metric)
    counts["retry_after_hinted"] = bool(hints) and all(h > 0 for h in hints)
    return counts


def test_service_throughput(report_sink):
    check_mode = os.environ.get("REPRO_PERF_CHECK", "") == "1"

    unbatched, unbatched_responses = _load_phase(ServiceConfig(
        port=0, batch_window=0.0, max_batch=1,
        cache_ttl=0.0, no_result_cache=True))
    batched, batched_responses = _load_phase(ServiceConfig(
        port=0, batch_window=0.002, max_batch=64,
        cache_ttl=0.0, no_result_cache=True))
    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]

    # Bit-identity first: a throughput win that moves floats is a bug.
    assert batched_responses == unbatched_responses, \
        "batched and unbatched responses differ"
    # The coalescer must actually have coalesced under this load.
    assert batched["mean_batch_size"] > 1.0
    assert batched["collapsed"] > 0

    shed = _shed_phase()
    assert shed["shed_429"] + shed["shed_503"] > 0, \
        "overload produced no shedding"
    assert shed["timeouts"] == 0, \
        f"overload timed {shed['timeouts']} requests out instead of shedding"
    assert shed["ok"] > 0, "admission control admitted nothing"
    assert shed["retry_after_hinted"], "shed responses lacked Retry-After"
    assert shed["shed_total_metric"] == shed["shed_429"] + shed["shed_503"], \
        "svc_shed_total disagrees with the client's shed count"

    record = {
        "threads": _THREADS,
        "phase_seconds": _PHASE_SECONDS,
        "cluster_size": len(_CLUSTER),
        "workload": [name for name, _ in _WORKLOAD],
        "unbatched": unbatched,
        "batched": batched,
        "speedup": round(speedup, 4),
        "speedup_floor": _SPEEDUP_FLOOR,
        "shed": shed,
    }
    if not check_mode:
        BASELINE_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report_sink("service-throughput", "\n".join([
        "service throughput benchmark "
        f"({_THREADS} threads, {_PHASE_SECONDS:g} s/phase)",
        f"  unbatched   {unbatched['throughput_rps']:9.1f} rps   "
        f"p50 {unbatched['p50_ms']:7.2f} ms   p99 {unbatched['p99_ms']:7.2f} ms",
        f"  batched     {batched['throughput_rps']:9.1f} rps   "
        f"p50 {batched['p50_ms']:7.2f} ms   p99 {batched['p99_ms']:7.2f} ms",
        f"  speedup     x{speedup:.2f} (floor x{_SPEEDUP_FLOOR}, "
        f"mean batch {batched['mean_batch_size']:.1f}, "
        f"collapsed {batched['collapsed']}, "
        f"lp grouped {batched['lp_grouped']})",
        f"  shedding    {shed['ok']} ok, {shed['shed_429']} x 429, "
        f"{shed['shed_503']} x 503, {shed['timeouts']} timeouts "
        f"of {shed['attempts']} attempts",
    ]))

    if check_mode:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"micro-batching was only {speedup:.2f}x the unbatched server "
            f"(floor {_SPEEDUP_FLOOR}x)")
