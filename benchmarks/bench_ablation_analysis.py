"""Benchmark (ablations/extensions): saturation ceiling, heterogeneity gain,
and the marginal-analysis kernels.

These regenerate the DESIGN.md-called-out ablations that the paper's
framework implies but does not print, and time the closed-form analysis
kernels (gradient, contributions) at cluster scale.
"""

import numpy as np

from repro.analysis.marginal import computer_contributions, x_gradient
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.experiments import (
    run_failure_rate_sweep,
    run_failure_resilience,
    run_heterogeneity_gain,
    run_majorization_study,
    run_moment_ablation,
    run_saturation,
    run_tau_sweep,
)


def test_saturation(benchmark, report_sink):
    result = benchmark.pedantic(run_saturation, rounds=1, iterations=1)
    report_sink("saturation", result.render())
    assert (np.diff(result.metadata["curve"]) > 0.0).all()


def test_heterogeneity_gain(benchmark, report_sink):
    result = benchmark.pedantic(run_heterogeneity_gain, rounds=1, iterations=1)
    report_sink("heterogeneity-gain", result.render())
    assert result.metadata["large_n_win_rate"] > 0.9
    assert (result.metadata["grid"].gain > 1.0).all()


def test_moment_ablation(benchmark, report_sink):
    result = benchmark.pedantic(run_moment_ablation, rounds=1, iterations=1)
    report_sink("moment-ablation", result.render())
    scores = result.metadata["mean_scores"]
    assert scores["harmonic-mean"] > scores["variance"]


def test_failure_resilience(benchmark, report_sink):
    result = benchmark.pedantic(run_failure_resilience, rounds=1, iterations=1)
    report_sink("failure-resilience", result.render())
    salvages = result.metadata["strict_salvage_pct"]
    assert salvages[0] == 0.0 and salvages == sorted(salvages)


def test_majorization_study(benchmark, report_sink):
    result = benchmark.pedantic(run_majorization_study, rounds=1, iterations=1)
    report_sink("majorization", result.render())
    assert result.metadata["comparable_wrong"] == 0
    assert result.metadata["bad_but_comparable"] == 0


def test_tau_sweep(benchmark, report_sink):
    result = benchmark.pedantic(run_tau_sweep, rounds=1, iterations=1)
    report_sink("tau-sweep", result.render())
    rates = [row[2] for row in result.rows]
    assert rates == sorted(rates, reverse=True)


def test_failure_rate_sweep(benchmark, report_sink):
    result = benchmark.pedantic(run_failure_rate_sweep,
                                kwargs=dict(n_samples=80), rounds=1, iterations=1)
    report_sink("failure-rate-sweep", result.render())
    for row in result.rows:
        assert row[3] >= row[1]  # skip policy dominates strict


def test_gradient_kernel(benchmark):
    """Closed-form ∂X/∂ρ for a 4096-computer cluster."""
    profile = Profile.linear(4096)
    grad = benchmark(x_gradient, profile, PAPER_TABLE1)
    assert (grad < 0.0).all()


def test_contributions_kernel(benchmark):
    """Per-computer contribution for a 4096-computer cluster."""
    profile = Profile.linear(4096)
    contrib = benchmark(computer_contributions, profile, PAPER_TABLE1)
    assert (contrib > 0.0).all()
