"""Coded-resilience benchmark: redundancy's tail-latency win, on record.

Runs the ``coded-resilience`` experiment on its default grid and
records the full table to ``BENCH_coded_resilience.json`` at the repo
root — the resilience trajectory future PRs regress against.  Three
contracts are asserted every run:

1. **The coded win.**  At a crash rate where recovery still mostly
   completes (0.005), at least one proactive scheme must beat the
   detect→reschedule posture on work-weighted p99 quantum latency —
   the headline claim of the coded-computation literature — while its
   waste fraction is honestly reported alongside.
2. **Shard determinism.**  ``--jobs 2`` must produce bit-identical rows
   to ``--jobs 1`` (the ShardSpec contract), and a direct sequential
   call must reproduce the batch rows from the same seed.
3. **Replayability.**  Re-running from the recorded seed reproduces
   the table row for row.

The experiment is a deterministic simulation, so with
``REPRO_PERF_CHECK=1`` (the CI mode) the freshly measured rows must
match the committed baseline *exactly* — any drift means the scheduler,
fault engine, or allocation rule changed semantics, which is a
regression here even if it is a speedup elsewhere.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.batch import run_batch
from repro.experiments import run_coded_resilience

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_coded_resilience.json"

#: The crash rate the p99 claim is judged at: high enough that faults
#: bite, low enough that recovery's rows are not fully censored at L.
_CLAIM_RATE = 0.005


def _rows_by_policy(result, rate):
    return {row[1]: row for row in result.rows if row[0] == rate}


def test_coded_resilience_benchmark(report_sink):
    committed = (json.loads(BASELINE_PATH.read_text())
                 if BASELINE_PATH.exists() else None)
    check_mode = os.environ.get("REPRO_PERF_CHECK", "") == "1"

    seq = run_batch(["coded-resilience"], jobs=1)
    par = run_batch(["coded-resilience"], jobs=2)
    result_seq, = seq.results
    result_par, = par.results

    # Contract 2: jobs-1 and jobs-2 merge to bit-identical tables, and
    # the sequential library entry point agrees with both.
    assert result_seq.rows == result_par.rows, \
        "coded-resilience rows differ between --jobs 1 and --jobs 2"
    direct = run_coded_resilience()
    assert direct.rows == result_seq.rows, \
        "sequential run_coded_resilience() disagrees with the batch path"

    # Contract 3: the recorded seed replays the whole grid.
    replay = run_coded_resilience(seed=result_seq.metadata["seed"])
    assert replay.rows == result_seq.rows, \
        "replay from the recorded seed did not reproduce the table"

    # Contract 1: the coded p99 win at the claim rate, waste on record.
    cells = _rows_by_policy(result_seq, _CLAIM_RATE)
    recovery_p99 = cells["recovery"][4]
    coded = {p: row for p, row in cells.items() if p != "recovery"}
    assert coded, "no coded policies in the grid"
    best_policy, best_row = min(coded.items(), key=lambda kv: kv[1][4])
    assert best_row[4] < recovery_p99, (
        f"no coded scheme beat recovery's p99 at rate {_CLAIM_RATE}: "
        f"recovery {recovery_p99} vs best coded {best_row[4]} "
        f"({best_policy})")
    for policy, row in coded.items():
        assert 0.0 < row[5] < 100.0, (
            f"{policy} reports an implausible waste fraction {row[5]}%")

    measured = {
        "headers": list(result_seq.headers),
        "rows": [list(row) for row in result_seq.rows],
        "seed": result_seq.metadata["seed"],
        "claim_rate": _CLAIM_RATE,
        "recovery_p99_at_claim_rate": recovery_p99,
        "best_coded_policy": best_policy,
        "best_coded_p99_at_claim_rate": best_row[4],
        "waste_pct_by_policy": {
            p: row[5] for p, row in cells.items()},
    }

    lines = [
        result_seq.render(),
        f"p99 @ rate {_CLAIM_RATE}: recovery {recovery_p99:.2f} vs "
        f"{best_policy} {best_row[4]:.2f} "
        f"(waste {best_row[5]:.1f}%)",
    ]
    report_sink("coded-resilience", "\n".join(lines))

    if not check_mode:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        return

    # CI mode: the simulation is deterministic — exact match required.
    assert committed is not None, (
        f"REPRO_PERF_CHECK=1 but no committed baseline at {BASELINE_PATH}")
    assert measured["rows"] == committed["rows"], (
        "coded-resilience table drifted from BENCH_coded_resilience.json "
        "(deterministic simulation: investigate the semantic change and "
        "re-commit the baseline deliberately)")
    assert measured["best_coded_p99_at_claim_rate"] < \
        measured["recovery_p99_at_claim_rate"]
