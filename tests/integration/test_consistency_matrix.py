"""Cross-cutting consistency matrix.

One parametrised sweep over (protocol family × results policy ×
environment × cluster shape), asserting the invariants that tie the
subsystems together:

* the allocation conforms to the protocol contract;
* the DES completes exactly the allocated work (below saturation);
* predicted and observed timelines agree;
* Theorem 1's FIFO bound holds;
* utilization statistics are self-consistent.

This is deliberately broad-and-shallow: each cell re-checks the whole
pipeline on a distinct configuration, catching interface drift that
focused unit tests can miss.
"""

import numpy as np
import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.conformance import check_protocol_conformance
from repro.protocols.fifo import FifoProtocol, fifo_allocation, fifo_saturation_index
from repro.protocols.general import GeneralProtocol
from repro.protocols.lifo import LifoProtocol
from repro.sampling.scenarios import aging_lab, hero_and_herd, two_tier_datacenter
from repro.simulation.runner import simulate_allocation
from repro.simulation.trace import utilization_summary

ENVIRONMENTS = [
    ModelParams(tau=1e-6, pi=1e-5, delta=1.0),     # paper Table 1
    ModelParams(tau=1e-3, pi=1e-4, delta=0.5),     # moderate comms
    ModelParams(tau=5e-3, pi=5e-4, delta=0.0),     # no result return
    ModelParams(tau=8e-3, pi=2e-3, delta=1.0),     # comm-flavoured
]

CLUSTERS = [
    aging_lab(5),
    two_tier_datacenter(4, 2),
    hero_and_herd(4, hero_speedup=8.0),
    Profile([1.0]),
]


def _protocols(n):
    rng = np.random.default_rng(n)
    sigma = tuple(rng.permutation(n).tolist())
    phi = tuple(rng.permutation(n).tolist())
    return [FifoProtocol(), LifoProtocol(), GeneralProtocol(sigma, phi)]


@pytest.mark.parametrize("params", ENVIRONMENTS,
                         ids=[f"env{i}" for i in range(len(ENVIRONMENTS))])
@pytest.mark.parametrize("profile", CLUSTERS,
                         ids=["aging", "two-tier", "hero", "solo"])
def test_full_pipeline_cell(profile, params):
    lifespan = 40.0
    if fifo_saturation_index(profile, params) > 1.0:
        pytest.skip("saturated configuration")
    fifo_total = fifo_allocation(profile, params, lifespan).total_work

    for protocol in _protocols(profile.n):
        # Contract.
        violations = check_protocol_conformance(protocol, profile, params,
                                                lifespan)
        assert violations == [], (protocol.name, violations)

        allocation = protocol.allocate(profile, params, lifespan)
        # Theorem-1 bound (redundant with conformance, asserted tightly).
        assert allocation.total_work <= fifo_total * (1 + 1e-9)

        for policy in ("late", "greedy"):
            result = simulate_allocation(allocation, results_policy=policy)
            assert result.all_completed, (protocol.name, policy)
            assert result.completed_work == pytest.approx(
                allocation.total_work, rel=1e-7), (protocol.name, policy)

            summary = utilization_summary(result)
            assert 0.0 <= summary.network_utilization <= 1.0 + 1e-9
            for breakdown in summary.worker_breakdowns:
                assert breakdown.total == pytest.approx(lifespan, rel=1e-7)


@pytest.mark.parametrize("params", ENVIRONMENTS[:2],
                         ids=["table1", "moderate"])
def test_random_clusters_pipeline(params, rng):
    for _ in range(5):
        n = int(rng.integers(2, 9))
        profile = Profile(rng.uniform(0.05, 1.0, n))
        if fifo_saturation_index(profile, params) > 1.0:
            continue
        allocation = fifo_allocation(profile, params, 25.0)
        result = simulate_allocation(allocation)
        assert result.completed_work == pytest.approx(
            allocation.total_work, rel=1e-9)
