"""Integration tests: the full pipeline, module boundaries crossed.

Each test chains several subsystems: analytic measure → protocol
scheduling → timeline → feasibility → discrete-event execution →
observed work, plus the CEP/CRP duality and the upgrade planner feeding
back into scheduling.
"""

import pytest

from repro.cep.problem import ClusterExploitationProblem, ClusterRentalProblem
from repro.cep.rental import rent_cluster
from repro.core.hecr import hecr
from repro.core.measure import work_production, work_rate
from repro.core.profile import Profile
from repro.protocols.feasibility import check_allocation, check_timeline
from repro.protocols.fifo import FifoProtocol, fifo_allocation
from repro.protocols.general import lp_allocation
from repro.protocols.lifo import LifoProtocol
from repro.protocols.timeline import build_timeline
from repro.simulation.runner import simulate_allocation, simulate_protocol
from repro.speedup.planner import plan_multiplicative


class TestThreeRoutesAgree:
    """Closed form, LP, and DES must produce the same number."""

    @pytest.mark.parametrize("profile", [
        Profile([1.0, 0.5, 1 / 3, 0.25]),
        Profile.linear(6),
        Profile.two_point(2, 2, 1.0, 0.2),
    ])
    def test_three_routes(self, profile, heavy_comm_params):
        params = heavy_comm_params
        L = 80.0
        analytic = work_production(profile, params, L)
        closed = fifo_allocation(profile, params, L)
        lp = lp_allocation(profile, params, L,
                           tuple(range(profile.n)), tuple(range(profile.n)))
        sim = simulate_allocation(closed)
        assert closed.total_work == pytest.approx(analytic, rel=1e-10)
        assert lp.total_work == pytest.approx(analytic, rel=1e-6)
        assert sim.completed_work == pytest.approx(analytic, rel=1e-9)


class TestUpgradeThenSchedule:
    def test_planned_upgrades_deliver_predicted_work(self, paper_params):
        profile = Profile([1.0, 0.5, 0.25])
        plan = plan_multiplicative(profile, paper_params, 0.5, 4)
        upgraded = plan.final_profile
        # The plan's payoff must materialise end to end in the simulator.
        before = simulate_protocol(FifoProtocol(), profile, paper_params, 50.0)
        after = simulate_protocol(FifoProtocol(), upgraded, paper_params, 50.0)
        assert (after.completed_work / before.completed_work
                == pytest.approx(plan.total_work_ratio, rel=1e-9))


class TestCepCrpPipeline:
    def test_rental_executes_on_time(self, heavy_comm_params):
        profile = Profile([1.0, 0.6, 0.3])
        crp = ClusterRentalProblem(profile, heavy_comm_params, workload=40.0)
        alloc = rent_cluster(crp)
        result = simulate_allocation(alloc)
        assert result.completed_work == pytest.approx(40.0, rel=1e-9)
        assert result.makespan <= crp.optimal_lifespan * (1 + 1e-9)

    def test_cep_crp_consistency(self, paper_params):
        profile = Profile([1.0, 0.5])
        cep = ClusterExploitationProblem(profile, paper_params, lifespan=30.0)
        crp = cep.dual()
        assert crp.optimal_lifespan == pytest.approx(30.0, rel=1e-12)


class TestHecrAsPredictorOfSimulatedWork:
    def test_smaller_hecr_means_more_simulated_work(self, heavy_comm_params):
        params = heavy_comm_params
        p1 = Profile([1.0, 0.2, 0.2])
        p2 = Profile([0.8, 0.6, 0.4])
        h1, h2 = hecr(p1, params), hecr(p2, params)
        w1 = simulate_protocol(FifoProtocol(), p1, params, 50.0).completed_work
        w2 = simulate_protocol(FifoProtocol(), p2, params, 50.0).completed_work
        assert (h1 < h2) == (w1 > w2)


class TestTimelineSimulatorConsistency:
    def test_predicted_and_observed_timelines_match(self, heavy_comm_params):
        profile = Profile([1.0, 0.5, 1 / 3, 0.25])
        alloc = fifo_allocation(profile, heavy_comm_params, 60.0)
        predicted = build_timeline(alloc)
        observed = simulate_allocation(alloc).to_timeline()
        assert check_timeline(observed).feasible
        for c in range(profile.n):
            pred_busy = [iv for iv in predicted.for_computer(c) if iv.kind == "busy"][0]
            obs_busy = [iv for iv in observed.for_computer(c) if iv.kind == "busy"][0]
            assert obs_busy.start == pytest.approx(pred_busy.start, rel=1e-10)
            assert obs_busy.end == pytest.approx(pred_busy.end, rel=1e-10)


class TestProtocolComparisonPipeline:
    def test_fifo_lifo_gap_positive_and_consistent(self, heavy_comm_params):
        profile = Profile([1.0, 0.5, 1 / 3, 0.25])
        fifo = simulate_protocol(FifoProtocol(), profile, heavy_comm_params, 60.0)
        lifo = simulate_protocol(LifoProtocol(), profile, heavy_comm_params, 60.0)
        assert fifo.completed_work > lifo.completed_work
        # Both honest executions of feasible schedules.
        assert fifo.all_completed and lifo.all_completed


class TestScaleSweep:
    def test_work_rate_improves_with_each_added_computer(self, paper_params):
        rates = []
        for n in range(1, 9):
            rates.append(work_rate(Profile.harmonic(n), paper_params))
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_large_cluster_end_to_end(self, paper_params):
        profile = Profile.harmonic(64)
        alloc = fifo_allocation(profile, paper_params, 10.0)
        assert check_allocation(alloc).feasible
        result = simulate_allocation(alloc, engine="events")
        assert result.all_completed
        assert result.events_processed >= 4 * 64
