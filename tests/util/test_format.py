"""Unit tests for repro.util.format."""

from repro.util.format import format_quantity, format_ratio, format_seconds, significant


class TestSignificant:
    def test_small(self):
        assert significant(0.123456, 3) == "0.123"

    def test_large_scientific(self):
        assert significant(12345.6, 3) == "1.23e+04"

    def test_zero(self):
        assert significant(0.0) == "0"

    def test_nonfinite(self):
        assert significant(float("inf")) == "inf"

    def test_negative(self):
        assert significant(-0.5, 2).startswith("-0.5")


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(1.1e-5) == "11 µs"

    def test_milliseconds(self):
        assert format_seconds(2e-3) == "2 ms"

    def test_seconds(self):
        assert format_seconds(1.5) == "1.5 s"

    def test_zero(self):
        assert format_seconds(0.0) == "0 s"

    def test_nanoseconds(self):
        assert format_seconds(3e-9) == "3 ns"

    def test_below_nano_falls_back(self):
        assert "e" in format_seconds(1e-12)


class TestRatioAndQuantity:
    def test_ratio_three_decimals(self):
        assert format_ratio(1.159) == "1.159"

    def test_ratio_custom_decimals(self):
        assert format_ratio(1.5, 1) == "1.5"

    def test_quantity_with_unit(self):
        assert format_quantity(42.0, "work units") == "42 work units"

    def test_quantity_without_unit(self):
        assert format_quantity(0.125) == "0.125"
