"""Unit tests for the crash-safe write primitive (repro.util.fsio)."""

import os
import threading

import pytest

from repro.util.fsio import atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "doc.json", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_failed_replace_leaves_destination_untouched(self, tmp_path,
                                                         monkeypatch):
        target = tmp_path / "doc.json"
        atomic_write_text(target, "original")

        def explode(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr("repro.util.fsio.os.replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement")
        assert target.read_text() == "original"
        # ... and the temp file was cleaned up, not orphaned.
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_missing_parent_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "nowhere" / "doc.json", "x")

    def test_durable_fsyncs(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr("repro.util.fsio.os.fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd)))
        atomic_write_text(tmp_path / "doc.json", "x", durable=True)
        assert len(synced) == 1

    def test_reader_never_sees_a_partial_document(self, tmp_path):
        """The satellite regression: concurrent writers + a reader.

        Two threads repeatedly rewrite the same file with distinct
        complete documents while a reader polls it; every successful
        read must be one of the complete documents, never a torn mix.
        """
        target = tmp_path / "doc.txt"
        documents = ["A" * 4096 + "\n", "B" * 4096 + "\n"]
        stop = threading.Event()
        torn: list[str] = []

        def writer(doc: str) -> None:
            while not stop.is_set():
                atomic_write_text(target, doc)

        def reader() -> None:
            while not stop.is_set():
                try:
                    text = target.read_text()
                except OSError:
                    continue
                if text not in documents:
                    torn.append(text)
                    return

        threads = [threading.Thread(target=writer, args=(d,))
                   for d in documents] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(timeout=10)
        stop_timer.cancel()
        stop.set()
        assert torn == []
