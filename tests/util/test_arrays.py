"""Unit tests for repro.util.arrays."""

import numpy as np
import pytest

from repro.errors import InvalidProfileError
from repro.util.arrays import (
    as_float_vector,
    is_nondecreasing,
    is_nonincreasing,
    validate_positive_vector,
)


class TestAsFloatVector:
    def test_list(self):
        v = as_float_vector([1, 2, 3])
        assert v.dtype == np.float64
        assert v.tolist() == [1.0, 2.0, 3.0]

    def test_generator(self):
        v = as_float_vector(x for x in (1.5, 2.5))
        assert v.tolist() == [1.5, 2.5]

    def test_copies_input(self):
        src = np.array([1.0, 2.0])
        v = as_float_vector(src)
        src[0] = 9.0
        assert v[0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidProfileError):
            as_float_vector([])

    def test_rejects_2d(self):
        with pytest.raises(InvalidProfileError):
            as_float_vector(np.ones((2, 2)))

    def test_rejects_inf(self):
        with pytest.raises(InvalidProfileError):
            as_float_vector([1.0, float("inf")])

    def test_error_mentions_name(self):
        with pytest.raises(InvalidProfileError, match="speeds"):
            as_float_vector([], name="speeds")


class TestValidatePositive:
    def test_accepts_positive(self):
        validate_positive_vector([0.1, 1.0])

    def test_rejects_zero(self):
        with pytest.raises(InvalidProfileError):
            validate_positive_vector([0.0, 1.0])

    def test_upper_bound(self):
        with pytest.raises(InvalidProfileError):
            validate_positive_vector([0.5, 1.5], upper=1.0)
        validate_positive_vector([0.5, 1.0], upper=1.0)


class TestMonotone:
    def test_nonincreasing(self):
        assert is_nonincreasing(np.array([3.0, 2.0, 2.0, 1.0]))
        assert not is_nonincreasing(np.array([1.0, 2.0]))

    def test_nondecreasing(self):
        assert is_nondecreasing(np.array([1.0, 2.0, 2.0]))
        assert not is_nondecreasing(np.array([2.0, 1.0]))

    def test_tolerance(self):
        assert is_nonincreasing(np.array([1.0, 1.0 + 1e-12]), tol=1e-9)

    def test_singletons_and_empty(self):
        assert is_nonincreasing(np.array([5.0]))
        assert is_nondecreasing(np.array([]))
