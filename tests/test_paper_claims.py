"""The paper contract: one test per headline claim, end to end.

Every claim the paper makes in its abstract and conclusions, asserted in
a single readable file.  Each test exercises the public API only — if a
refactor breaks the reproduction, this file says *which paper claim*
broke.
"""

import numpy as np
import pytest

from repro import (
    FIG34_CALIBRATION,
    PAPER_TABLE1,
    Profile,
    compare_clusters,
    hecr,
    work_production,
    x_measure,
)
from repro.experiments import run_variance_trials
from repro.predictors import heterogeneity_gain, variance_prediction
from repro.protocols import fifo_allocation, lifo_allocation
from repro.sampling import equal_mean_pair
from repro.simulation import simulate_allocation
from repro.speedup import (
    best_additive_upgrade,
    best_multiplicative_upgrade,
    run_trajectory,
    theorem4_regime,
)


class TestHighlight1_ReplaceTheFastest:
    """Abstract highlight (1): if one can replace only one computer by a
    faster one, it is provably (almost) always most advantageous to
    replace the fastest one."""

    def test_additive_always_the_fastest(self):
        # "This is always true for additive speedups (Theorem 3)."
        rng = np.random.default_rng(1)
        for _ in range(25):
            profile = Profile(rng.uniform(0.05, 1.0, rng.integers(2, 7)))
            phi = profile.fastest_rho * 0.5
            choice = best_additive_upgrade(profile, PAPER_TABLE1, phi)
            assert profile[choice.index] == profile.fastest_rho

    def test_multiplicative_almost_always(self):
        # "...and almost always for multiplicative ones (Theorem 4)":
        # under realistic (Table-1) parameters the threshold is ~1e-11,
        # so the fastest computer always wins...
        profile = Profile([1.0, 0.6, 0.3, 0.1])
        choice = best_multiplicative_upgrade(profile, PAPER_TABLE1, 0.5)
        assert profile[choice.index] == profile.fastest_rho
        # ...but "almost": when every machine is already very fast
        # relative to the threshold, condition (2) flips the advice.
        fast_profile = Profile([1 / 16, 1 / 16, 1 / 16, 1 / 32])
        flipped = best_multiplicative_upgrade(fast_profile, FIG34_CALIBRATION, 0.5)
        assert fast_profile[flipped.index] == fast_profile.slowest_rho


class TestHighlight2_VariancePredicts:
    """Abstract highlight (2): among equal-mean clusters, the one with
    larger speed variance is (almost) always the faster one."""

    def test_provably_for_two_computers(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            mean = rng.uniform(0.2, 0.8)
            cap = min(mean, 1 - mean) * 0.99
            s1, s2 = sorted(rng.uniform(0, cap, 2))
            if s1 == s2:
                continue
            wide = Profile([mean + s2, mean - s2])
            tight = Profile([mean + s1, mean - s1])
            assert variance_prediction(wide, tight) == 0
            assert x_measure(wide, PAPER_TABLE1) > x_measure(tight, PAPER_TABLE1)

    def test_almost_always_for_larger_clusters(self):
        # "empirically, it is true 76% of the time for larger clusters"
        result = run_variance_trials(sizes=(64, 256), trials_per_size=250,
                                     seed=2010)
        overall = result.metadata["overall_good"]
        assert 0.70 <= overall <= 0.90

    def test_perfect_above_a_variance_gap(self):
        # "true 100% of the time when the difference in variances is
        # sufficiently large" — spread-strategy pairs have large gaps.
        rng = np.random.default_rng(3)
        for _ in range(40):
            wide, tight = equal_mean_pair(rng, 16, strategy="spread")
            if wide.variance - tight.variance < 0.167:
                continue
            assert x_measure(wide, PAPER_TABLE1) > x_measure(tight, PAPER_TABLE1)


class TestHighlight3_HeterogeneityLendsPower:
    """Abstract highlight (3) / Corollary 1: heterogeneity can actually
    lend power to a cluster."""

    def test_two_computer_corollary(self):
        for mean in (0.3, 0.5, 0.7):
            for rel in (0.2, 0.5, 0.9):
                spread = rel * min(mean, 1 - mean) * 0.999
                assert heterogeneity_gain(mean, spread, PAPER_TABLE1) > 1.0

    def test_sec4_witness_beats_better_mean(self):
        # ⟨0.99, 0.02⟩ beats ⟨0.5, 0.5⟩ despite the worse mean.
        comparison = compare_clusters(Profile([0.99, 0.02]), Profile([0.5, 0.5]),
                                      PAPER_TABLE1)
        assert comparison.winner == 0
        assert comparison.p1.mean > comparison.p2.mean


class TestTheorem1_Foundation:
    """Theorem 1 (from [1]): FIFO solves the CEP optimally and its
    production is startup-order independent."""

    def test_order_independence_and_lifo_gap(self):
        from repro.core.params import ModelParams
        params = ModelParams(tau=0.02, pi=0.002, delta=1.0)
        profile = Profile([1.0, 0.5, 1 / 3, 0.25])
        a = fifo_allocation(profile, params, 80.0, startup_order=[0, 1, 2, 3])
        b = fifo_allocation(profile, params, 80.0, startup_order=[3, 1, 0, 2])
        assert a.total_work == pytest.approx(b.total_work, rel=1e-12)
        assert lifo_allocation(profile, params, 80.0).total_work < a.total_work


class TestTheorem2_WorkProduction:
    """Theorem 2: W(L;P) = L/(τδ + 1/X(P)) — and a real execution
    delivers it."""

    def test_formula_realised_by_simulation(self):
        profile = Profile([1.0, 0.5, 1 / 3, 0.25])
        promised = work_production(profile, PAPER_TABLE1, 3600.0)
        delivered = simulate_allocation(
            fifo_allocation(profile, PAPER_TABLE1, 3600.0)).completed_work
        assert delivered == pytest.approx(promised, rel=1e-9)


class TestFigures3And4_Narrative:
    """The iterative-speedup experiment's two phases, round for round."""

    def test_phase_structure(self):
        trajectory = run_trajectory(Profile.homogeneous(4), FIG34_CALIBRATION,
                                    0.5, 20)
        assert trajectory.chosen_sequence()[:16] == (
            3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0)
        assert list(trajectory.rounds[15].profile_after) == pytest.approx(
            [1 / 16] * 4)
        for snap in trajectory.rounds[16:]:
            assert snap.profile_before[snap.chosen] == snap.profile_before.slowest_rho

    def test_threshold_semantics(self):
        from repro.speedup import SpeedupRegime
        assert theorem4_regime(1.0, 0.5, 0.5,
                               FIG34_CALIBRATION) is SpeedupRegime.FASTER_WINS
        assert theorem4_regime(1 / 16, 1 / 16, 0.5,
                               FIG34_CALIBRATION) is SpeedupRegime.SLOWER_WINS


class TestTable3_Calibration:
    """Table 3's HECR values, to the paper's print precision."""

    def test_values(self):
        expectations = {
            (Profile.linear, 8): 0.366, (Profile.linear, 16): 0.298,
            (Profile.linear, 32): 0.251,
            (Profile.harmonic, 8): 0.216, (Profile.harmonic, 16): 0.116,
            (Profile.harmonic, 32): 0.060,
        }
        for (factory, n), expected in expectations.items():
            assert hecr(factory(n), PAPER_TABLE1) == pytest.approx(
                expected, abs=7e-3)
