"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(SCRIPTS) >= 3, "the deliverable requires at least 3 examples"


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_quickstart_reports_agreement():
    proc = subprocess.run([sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
                          capture_output=True, text=True, timeout=120)
    assert "drift" in proc.stdout
    assert "HECR" in proc.stdout


def test_upgrade_planner_names_theorems():
    proc = subprocess.run([sys.executable, str(EXAMPLES_DIR / "upgrade_planner.py")],
                          capture_output=True, text=True, timeout=120)
    assert "Theorem 3" in proc.stdout
    assert "condition" in proc.stdout
