"""Unit tests for repro.analysis.selection."""

import pytest

from repro.analysis.overheads import latency_adjusted_work
from repro.analysis.selection import best_roster
from repro.core.profile import Profile
from repro.errors import InvalidParameterError


class TestBestRoster:
    def test_zero_latency_uses_everything(self, paper_params, table4_profile):
        choice = best_roster(table4_profile, paper_params, 30.0, 0.0)
        assert choice.size == 4
        assert not choice.leaving_some_out_helps

    def test_stragglers_benched_under_latency(self, paper_params):
        fleet = Profile([1.0] * 10 + [0.1] * 3)
        choice = best_roster(fleet, paper_params, 30.0, 1.0)
        assert choice.leaving_some_out_helps
        assert choice.size < fleet.n
        # The three fast machines must all be enlisted.
        assert set(choice.members) >= {10, 11, 12}

    def test_members_fastest_first(self, paper_params):
        fleet = Profile([0.5, 1.0, 0.1, 0.3])
        choice = best_roster(fleet, paper_params, 30.0, 0.1)
        rhos = [fleet[i] for i in choice.members]
        assert rhos == sorted(rhos)

    def test_choice_beats_every_prefix(self, paper_params):
        fleet = Profile([1.0, 0.9, 0.5, 0.2, 0.05])
        L, lam = 20.0, 0.5
        choice = best_roster(fleet, paper_params, L, lam)
        fastest_first = sorted(fleet, key=float)
        for k in range(1, fleet.n + 1):
            prefix_work = latency_adjusted_work(
                Profile(fastest_first[:k]), paper_params, L, lam)
            assert choice.work >= prefix_work - 1e-12

    def test_work_all_matches_full_fleet(self, paper_params, table4_profile):
        L, lam = 30.0, 0.3
        choice = best_roster(table4_profile, paper_params, L, lam)
        assert choice.work_all == pytest.approx(
            latency_adjusted_work(table4_profile.power_ordered().permuted(
                list(range(table4_profile.n))[::-1]), paper_params, L, lam))

    def test_huge_latency_single_machine(self, paper_params):
        fleet = Profile([1.0, 0.5, 0.25])
        choice = best_roster(fleet, paper_params, 10.0, 2.0)
        assert choice.size == 1
        assert fleet[choice.members[0]] == fleet.fastest_rho

    def test_validation(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            best_roster(table4_profile, paper_params, 0.0, 0.1)
        with pytest.raises(InvalidParameterError):
            best_roster(table4_profile, paper_params, 10.0, -0.1)
