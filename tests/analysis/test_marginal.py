"""Unit tests for repro.analysis.marginal."""

import numpy as np
import pytest

from repro.analysis.marginal import (
    computer_contributions,
    marginal_speedup_value,
    most_critical_computer,
    x_gradient,
)
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestGradient:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_matches_finite_differences(self, profile, params):
        grad = x_gradient(profile, params)
        eps = 1e-7
        for i in range(profile.n):
            bumped = profile.with_rho_at(i, profile[i] + eps)
            fd = (x_measure(bumped, params) - x_measure(profile, params)) / eps
            assert grad[i] == pytest.approx(fd, rel=5e-5), i

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_all_entries_negative(self, params, table4_profile):
        assert (x_gradient(table4_profile, params) < 0.0).all()

    def test_theorem3_differential_form(self, paper_params):
        # Marginal speedup value is largest for the fastest computer.
        profile = Profile([1.0, 0.6, 0.3, 0.1])
        value = marginal_speedup_value(profile, paper_params)
        assert int(np.argmax(value)) == 3
        assert (np.diff(value) > 0.0).all()

    def test_single_computer(self, paper_params):
        grad = x_gradient([0.5], paper_params)
        B, A = paper_params.B, paper_params.A
        assert grad[0] == pytest.approx(-B / (B * 0.5 + A) ** 2, rel=1e-12)

    def test_order_invariance(self, heavy_comm_params, rng):
        profile = Profile([1.0, 0.5, 0.25, 0.125])
        grad = x_gradient(profile, heavy_comm_params)
        order = rng.permutation(4)
        permuted_grad = x_gradient(profile.permuted(order), heavy_comm_params)
        assert permuted_grad == pytest.approx(grad[order], rel=1e-12)

    def test_delta_zero_fast_computer_stable(self):
        # τδ = 0 makes one ratio factor tiny; the prefix/suffix product
        # formulation must stay finite and correct.
        params = ModelParams(tau=1e-3, pi=1e-4, delta=0.0)
        profile = Profile([1.0, 1e-6])
        grad = x_gradient(profile, params)
        assert np.all(np.isfinite(grad))
        eps = 1e-10
        fd = (x_measure(profile.with_rho_at(1, 1e-6 + eps), params)
              - x_measure(profile, params)) / eps
        assert grad[1] == pytest.approx(fd, rel=1e-3)


class TestContributions:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_matches_removal_difference(self, params, table4_profile):
        contrib = computer_contributions(table4_profile, params)
        x_full = x_measure(table4_profile, params)
        for i in range(table4_profile.n):
            x_without = x_measure(table4_profile.without(i), params)
            assert contrib[i] == pytest.approx(x_full - x_without, rel=1e-11), i

    def test_all_positive(self, paper_params, table4_profile):
        assert (computer_contributions(table4_profile, paper_params) > 0.0).all()

    def test_fastest_contributes_most_in_calm_regime(self, paper_params):
        profile = Profile([1.0, 0.5, 0.1])
        assert most_critical_computer(profile, paper_params) == 2

    def test_single_computer_contribution_is_x(self, paper_params):
        profile = Profile([0.5])
        contrib = computer_contributions(profile, paper_params)
        assert contrib[0] == pytest.approx(x_measure(profile, paper_params))
