"""Unit tests for repro.analysis.asymptotics."""

import math

import numpy as np
import pytest

from repro.analysis.asymptotics import (
    cluster_size_for_coverage,
    homogeneous_returns_curve,
    marginal_computer_value,
    saturation_fraction,
    saturation_x,
)
from repro.core.homogeneous import homogeneous_x
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError


class TestSaturation:
    def test_ceiling_value(self, paper_params):
        assert saturation_x(paper_params) == pytest.approx(
            1.0 / paper_params.A_minus_tau_delta)

    def test_degenerate_ceiling_infinite(self):
        params = ModelParams(tau=0.2, pi=0.0, delta=1.0)
        assert math.isinf(saturation_x(params))
        assert saturation_fraction(Profile([1.0, 0.5]), params) == 0.0

    def test_fraction_in_unit_interval(self, paper_params, table4_profile):
        frac = saturation_fraction(table4_profile, paper_params)
        assert 0.0 < frac < 1.0

    def test_fraction_grows_with_cluster(self, paper_params):
        fracs = [saturation_fraction(Profile.linear(n), paper_params)
                 for n in (4, 16, 64)]
        assert fracs == sorted(fracs)


class TestReturnsCurve:
    def test_matches_closed_form(self, paper_params):
        sizes = [1, 2, 8, 64]
        curve = homogeneous_returns_curve(0.5, paper_params, sizes)
        for n, x in zip(sizes, curve):
            assert x == pytest.approx(homogeneous_x(n, 0.5, paper_params))

    def test_concave_increasing(self, paper_params):
        sizes = list(range(1, 40))
        curve = homogeneous_returns_curve(0.5, paper_params, sizes)
        diffs = np.diff(curve)
        assert (diffs > 0.0).all()           # increasing
        assert (np.diff(diffs) <= 1e-12).all()  # diminishing returns


class TestCoverage:
    def test_roundtrip_through_closed_form(self, paper_params):
        n = cluster_size_for_coverage(1.0, paper_params, 0.5)
        x = homogeneous_x(int(round(n)), 1.0, paper_params)
        target = 0.5 * saturation_x(paper_params)
        assert x == pytest.approx(target, rel=1e-3)

    def test_higher_coverage_needs_more_machines(self, paper_params):
        n50 = cluster_size_for_coverage(1.0, paper_params, 0.5)
        n95 = cluster_size_for_coverage(1.0, paper_params, 0.95)
        assert n95 > n50

    def test_invalid_coverage(self, paper_params):
        for bad in (0.0, 1.0, 1.5):
            with pytest.raises(InvalidParameterError):
                cluster_size_for_coverage(1.0, paper_params, bad)

    def test_degenerate_environment_rejected(self):
        params = ModelParams(tau=0.2, pi=0.0, delta=1.0)
        with pytest.raises(InvalidParameterError):
            cluster_size_for_coverage(1.0, params, 0.9)


class TestMarginalComputer:
    def test_matches_extension_difference(self, heavy_comm_params, table4_profile):
        for new_rho in (1.0, 0.3, 0.05):
            delta = marginal_computer_value(table4_profile, heavy_comm_params, new_rho)
            direct = (x_measure(table4_profile.extended(new_rho), heavy_comm_params)
                      - x_measure(table4_profile, heavy_comm_params))
            assert delta == pytest.approx(direct, rel=1e-11)

    def test_faster_newcomer_worth_more(self, paper_params, table4_profile):
        slow = marginal_computer_value(table4_profile, paper_params, 1.0)
        fast = marginal_computer_value(table4_profile, paper_params, 0.1)
        assert fast > slow

    def test_rejects_bad_rho(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            marginal_computer_value(table4_profile, paper_params, 0.0)
