"""Unit tests for repro.analysis.sensitivity."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    find_tau_crossover,
    sweep_delta,
    sweep_pi,
    sweep_tau,
)
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError


class TestSweeps:
    def test_work_rate_monotone_decreasing_in_tau(self, table4_profile):
        sweep = sweep_tau(table4_profile, np.geomspace(1e-6, 0.1, 10))
        assert (np.diff(sweep.work_rate) < 0.0).all()

    def test_x_monotone_decreasing_in_pi(self, table4_profile):
        sweep = sweep_pi(table4_profile, np.linspace(0.0, 0.1, 8))
        assert (np.diff(sweep.x) < 0.0).all()

    def test_work_rate_decreasing_in_delta(self, table4_profile):
        # More results per unit of work = more result traffic = less work.
        sweep = sweep_delta(table4_profile, np.linspace(0.0, 1.0, 6), tau=1e-3)
        assert (np.diff(sweep.work_rate) < 0.0).all()

    def test_hecr_increases_with_tau(self, table4_profile):
        # Communication erodes the heterogeneous cluster's calibrated rate.
        sweep = sweep_tau(table4_profile, np.geomspace(1e-6, 0.05, 8))
        assert sweep.hecr[-1] > sweep.hecr[0]

    def test_rows_shape(self, table4_profile):
        sweep = sweep_tau(table4_profile, [1e-6, 1e-3])
        rows = sweep.as_rows()
        assert len(rows) == 2
        assert len(rows[0]) == 4

    def test_empty_grid_rejected(self, table4_profile):
        with pytest.raises(InvalidParameterError):
            sweep_tau(table4_profile, [])


class TestCrossover:
    def test_stable_ranking_returns_none(self):
        # Minorizing pairs never flip (Prop. 3 territory).
        p1, p2 = Profile([0.9, 0.4]), Profile([1.0, 0.5])
        assert find_tau_crossover(p1, p2) is None

    def test_flip_found_and_verified(self):
        # A heterogeneous cluster beats a homogeneous one at low tau but
        # can lose once communication dominates (its fast machine starves).
        p1 = Profile([1.0, 0.05])
        p2 = Profile([0.45, 0.45])
        crossover = find_tau_crossover(p1, p2, pi=1e-5, delta=1.0,
                                       tau_low=1e-6, tau_high=5.0)
        if crossover is None:
            pytest.skip("pair is tau-stable under these parameters")
        lo = ModelParams(tau=crossover * 0.5, pi=1e-5, delta=1.0)
        hi = ModelParams(tau=min(crossover * 2.0, 5.0), pi=1e-5, delta=1.0)
        sign_lo = np.sign(x_measure(p1, lo) - x_measure(p2, lo))
        sign_hi = np.sign(x_measure(p1, hi) - x_measure(p2, hi))
        assert sign_lo != sign_hi

    def test_size_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            find_tau_crossover(Profile([1.0]), Profile([1.0, 0.5]))

    def test_bad_bracket_rejected(self, table4_profile):
        with pytest.raises(InvalidParameterError):
            find_tau_crossover(table4_profile, table4_profile,
                               tau_low=1.0, tau_high=0.5)
