"""Unit tests for repro.analysis.phase."""

import numpy as np
import pytest

from repro.analysis.phase import (
    HeterogeneityGainGrid,
    equal_mean_gain,
    heterogeneity_gain_grid,
)
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.errors import InvalidParameterError


class TestEqualMeanGain:
    def test_corollary1_two_computers(self, paper_params):
        assert equal_mean_gain(Profile([0.9, 0.1]), paper_params) > 1.0

    def test_homogeneous_cluster_gains_nothing(self, paper_params):
        assert equal_mean_gain(Profile([0.5, 0.5]), paper_params) == pytest.approx(1.0)

    def test_can_lose_for_larger_n(self, paper_params):
        # Spread concentrated in the slow half: heterogeneity hurts.
        # ⟨0.98, 0.98, 0.02, 0.02⟩ (mean 0.5) vs ⟨0.5,…⟩: the two nearly
        # free computers win; flip it: spread that only *slows* machines.
        losing = Profile([0.505, 0.505, 0.505, 0.485])
        # mean 0.5, variance > 0 but dominated by slower-than-mean machines?
        gain = equal_mean_gain(losing, paper_params)
        # Not asserting < 1 (regime-dependent); assert well-defined & near 1.
        assert gain == pytest.approx(1.0, abs=0.05)

    def test_accepts_plain_sequence(self, paper_params):
        assert equal_mean_gain([0.9, 0.1], paper_params) == pytest.approx(
            equal_mean_gain(Profile([0.9, 0.1]), paper_params))


class TestGainGrid:
    @pytest.fixture(scope="class")
    def grid(self) -> HeterogeneityGainGrid:
        return heterogeneity_gain_grid(PAPER_TABLE1)

    def test_every_entry_exceeds_one(self, grid):
        # Theorem 5(2)/Corollary 1 across the whole grid.
        assert (grid.gain > 1.0).all()

    def test_gain_monotone_in_spread(self, grid):
        assert (np.diff(grid.gain, axis=1) > 0.0).all()

    def test_max_gain_location(self, grid):
        mean, rel_spread, gain = grid.max_gain()
        assert rel_spread == grid.relative_spreads.max()
        assert gain == grid.gain.max()

    def test_shape(self, grid):
        assert grid.gain.shape == (grid.means.size, grid.relative_spreads.size)

    def test_invalid_grids_rejected(self):
        with pytest.raises(InvalidParameterError):
            heterogeneity_gain_grid(PAPER_TABLE1, means=(0.0, 0.5))
        with pytest.raises(InvalidParameterError):
            heterogeneity_gain_grid(PAPER_TABLE1, relative_spreads=(1.0,))
