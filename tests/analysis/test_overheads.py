"""Unit tests for repro.analysis.overheads."""

import pytest

from repro.analysis.overheads import (
    latency_adjusted_work,
    lifespan_efficiency,
    min_lifespan_for_efficiency,
)
from repro.core.measure import work_production
from repro.core.profile import Profile
from repro.errors import InvalidParameterError


class TestLatencyAdjustedWork:
    def test_zero_latency_recovers_fluid_model(self, paper_params, table4_profile):
        assert latency_adjusted_work(table4_profile, paper_params, 100.0, 0.0) == (
            pytest.approx(work_production(table4_profile, paper_params, 100.0)))

    def test_latency_costs_exactly_2n_lambda_of_lifespan(self, paper_params,
                                                         table4_profile):
        lam = 0.5
        full = latency_adjusted_work(table4_profile, paper_params, 100.0, 0.0)
        adj = latency_adjusted_work(table4_profile, paper_params, 100.0, lam)
        lost_time = 2 * table4_profile.n * lam
        assert adj == pytest.approx(full * (100.0 - lost_time) / 100.0, rel=1e-12)

    def test_too_short_lifespan_produces_nothing(self, paper_params):
        profile = Profile.linear(50)
        # 2·50·2 = 200 > L = 100: the round's fixed costs eat the lifespan.
        assert latency_adjusted_work(profile, paper_params, 100.0, 2.0) == 0.0

    def test_cluster_can_be_too_large(self, paper_params):
        # With fixed costs, the bigger cluster can deliver LESS work over
        # a short engagement — impossible in the pure fluid model.
        lam, L = 1.0, 85.0
        small = latency_adjusted_work(Profile.homogeneous(4, 0.25),
                                      paper_params, L, lam)
        large = latency_adjusted_work(Profile.homogeneous(40, 0.25),
                                      paper_params, L, lam)
        assert large < small

    def test_rejects_negative_latency(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            latency_adjusted_work(table4_profile, paper_params, 10.0, -1.0)


class TestEfficiency:
    def test_formula(self, table4_profile):
        assert lifespan_efficiency(table4_profile, 100.0, 0.5) == pytest.approx(
            1.0 - 2 * 4 * 0.5 / 100.0)

    def test_clamped_at_zero(self, table4_profile):
        assert lifespan_efficiency(table4_profile, 1.0, 10.0) == 0.0

    def test_improves_with_lifespan(self, table4_profile):
        effs = [lifespan_efficiency(table4_profile, L, 0.1)
                for L in (10.0, 100.0, 1000.0)]
        assert effs == sorted(effs)


class TestMinLifespan:
    def test_inverse_of_efficiency(self, table4_profile):
        lam, target = 0.25, 0.95
        L = min_lifespan_for_efficiency(table4_profile, lam, target)
        assert lifespan_efficiency(table4_profile, L, lam) == pytest.approx(target)

    def test_scales_with_cluster_size(self, paper_params):
        lam = 0.1
        small = min_lifespan_for_efficiency(Profile.linear(4), lam)
        large = min_lifespan_for_efficiency(Profile.linear(16), lam)
        assert large == pytest.approx(4.0 * small)

    def test_target_validated(self, table4_profile):
        for bad in (0.0, 1.0, 2.0):
            with pytest.raises(InvalidParameterError):
                min_lifespan_for_efficiency(table4_profile, 0.1, bad)
