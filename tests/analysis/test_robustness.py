"""Unit tests for repro.analysis.robustness."""

import numpy as np
import pytest

from repro.analysis.robustness import expected_work_under_failures
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.protocols.fifo import fifo_allocation


@pytest.fixture
def alloc():
    params = ModelParams(tau=0.01, pi=0.001, delta=1.0)
    return fifo_allocation(Profile([1.0, 0.5, 1 / 3, 0.25]), params, 50.0)


class TestExpectedWork:
    def test_zero_rate_equals_failure_free(self, alloc, rng):
        estimate = expected_work_under_failures(alloc, 0.0, rng, n_samples=5)
        assert estimate.mean == pytest.approx(alloc.total_work, rel=1e-9)
        assert estimate.fraction_total_loss == 0.0

    def test_higher_rate_lower_mean(self, alloc):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        low = expected_work_under_failures(alloc, 0.001, rng1, n_samples=100,
                                           skip_failed_results=True)
        high = expected_work_under_failures(alloc, 0.05, rng2, n_samples=100,
                                            skip_failed_results=True)
        assert high.mean < low.mean

    def test_skip_policy_dominates_strict(self, alloc):
        rng1 = np.random.default_rng(9)
        rng2 = np.random.default_rng(9)
        strict = expected_work_under_failures(alloc, 0.02, rng1, n_samples=150)
        skipping = expected_work_under_failures(alloc, 0.02, rng2, n_samples=150,
                                                skip_failed_results=True)
        assert skipping.mean >= strict.mean

    def test_strict_policy_has_total_loss_mass(self, alloc):
        # Strict FIFO's tail risk: some trials lose everything.
        rng = np.random.default_rng(11)
        estimate = expected_work_under_failures(alloc, 0.05, rng, n_samples=150)
        assert estimate.fraction_total_loss > 0.0
        assert estimate.quantile(0.0) == 0.0

    def test_reproducible_from_seed(self, alloc):
        a = expected_work_under_failures(alloc, 0.02,
                                         np.random.default_rng(7), n_samples=40)
        b = expected_work_under_failures(alloc, 0.02,
                                         np.random.default_rng(7), n_samples=40)
        assert a.samples == pytest.approx(b.samples)

    def test_std_error_shrinks_with_samples(self, alloc):
        small = expected_work_under_failures(alloc, 0.02,
                                             np.random.default_rng(1), n_samples=30)
        large = expected_work_under_failures(alloc, 0.02,
                                             np.random.default_rng(1), n_samples=300)
        assert large.std_error < small.std_error

    def test_validation(self, alloc, rng):
        with pytest.raises(InvalidParameterError):
            expected_work_under_failures(alloc, -0.1, rng)
        with pytest.raises(InvalidParameterError):
            expected_work_under_failures(alloc, 0.1, rng, n_samples=0)
        estimate = expected_work_under_failures(alloc, 0.1, rng, n_samples=5)
        with pytest.raises(InvalidParameterError):
            estimate.quantile(1.5)
