"""Lifecycle tests for the pre-fork supervisor (repro.service.supervisor).

These spawn real forked worker processes on ephemeral ports, so each
test owns its supervisor on a background thread and always tears it
down.  Crash handling is exercised with real SIGKILLs.
"""

import json
import os
import signal
import threading
import time
import urllib.request

import pytest

from repro.errors import InvalidParameterError
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.supervisor import (BURST_SHARE, EXIT_RESPAWN_BUDGET,
                                      Supervisor, worker_config)


class _RunningSupervisor:
    """A supervisor on a thread with guaranteed teardown."""

    def __init__(self, config: ServiceConfig, **kwargs) -> None:
        kwargs.setdefault("install_signals", False)
        self.supervisor = Supervisor(config, **kwargs)
        self.exit_code: int | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self.exit_code = self.supervisor.run()

    def __enter__(self) -> "_RunningSupervisor":
        self._thread.start()
        self.port = self.supervisor.wait_ready(30.0)
        return self

    def __exit__(self, *exc_info) -> None:
        self.supervisor.initiate_stop()
        self._thread.join(timeout=30.0)

    def join(self, timeout: float = 30.0) -> int | None:
        self._thread.join(timeout=timeout)
        return self.exit_code

    def worker_pids(self) -> list[int]:
        # A slot's Process has pid None between construction and start().
        return [slot.process.pid for slot in self.supervisor._slots
                if slot.process is not None and slot.process.pid is not None]


def _config(**overrides) -> ServiceConfig:
    defaults = dict(port=0, workers=2, no_store=True, drain_timeout=2.0,
                    cache_ttl=0.0, cache_entries=0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestBudgetSplit:
    def test_rate_and_inflight_divide(self):
        config = ServiceConfig(workers=4, rate=100.0, max_inflight=10,
                               burst=40.0)
        derived = worker_config(config, 1)
        assert derived.rate == pytest.approx(25.0)
        assert derived.max_inflight == 3  # ceil(10/4): nobody gets zero
        assert derived.worker_index == 1

    def test_burst_share_is_inflated_but_capped(self):
        config = ServiceConfig(workers=4, rate=100.0, burst=40.0)
        derived = worker_config(config, 0)
        assert derived.burst == pytest.approx(10.0 * (1.0 + BURST_SHARE))
        # A tiny burst can never exceed the configured total...
        whole = worker_config(ServiceConfig(workers=1, rate=10.0, burst=2.0), 0)
        assert whole.burst == 2.0
        # ... and never drops below the token-bucket minimum of 1.
        sliver = worker_config(
            ServiceConfig(workers=8, rate=10.0, burst=2.0), 0)
        assert sliver.burst >= 1.0

    def test_unlimited_rate_stays_unlimited(self):
        config = ServiceConfig(workers=4, rate=0.0)
        assert worker_config(config, 0).rate == 0.0

    def test_index_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            worker_config(ServiceConfig(workers=2), 2)


class TestFleet:
    def test_two_workers_serve_and_clean_stop(self):
        with _RunningSupervisor(_config()) as running:
            with ServiceClient("127.0.0.1", running.port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["worker"] in (0, 1)
                result = client.x([1.0, 2.0, 4.0])
                assert result["n"] == 3
            pids = running.worker_pids()
        # Clean SIGTERM fan-down: exit 0, no orphans left behind.
        assert running.join() == 0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_alive(pid) for pid in pids)

    def test_multi_worker_responses_match_single_worker(self):
        profile = [1.0, 1.5, 2.0, 3.0]
        bodies = {}
        for workers in (1, 2):
            with _RunningSupervisor(_config(workers=workers)) as running:
                with ServiceClient("127.0.0.1", running.port) as client:
                    bodies[workers] = json.dumps(client.x(profile),
                                                 sort_keys=True)
        assert bodies[1] == bodies[2]

    def test_crashed_worker_is_respawned(self):
        with _RunningSupervisor(_config(workers=2),
                                backoff_base=0.05) as running:
            victim = running.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 15.0
            respawned = False
            while time.monotonic() < deadline:
                pids = running.worker_pids()
                if victim not in pids and all(_alive(p) for p in pids):
                    respawned = True
                    break
                time.sleep(0.05)
            assert respawned, "killed worker was not replaced"
            assert running.supervisor.registry.counter(
                "svc_supervisor_restarts_total", "").value(worker=0) >= 1
            # The replacement serves traffic.
            with ServiceClient("127.0.0.1", running.port) as client:
                assert client.healthz()["status"] == "ok"

    def test_respawn_budget_exhaustion_exits_nonzero(self, capfd):
        running = _RunningSupervisor(
            _config(workers=1), backoff_base=0.01, backoff_cap=0.05,
            respawn_budget=2, stable_after=60.0)
        with running:
            # Keep killing whatever comes up until the budget runs out.
            deadline = time.monotonic() + 30.0
            while running.exit_code is None and time.monotonic() < deadline:
                for pid in running.worker_pids():
                    if _alive(pid):
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                time.sleep(0.02)
        assert running.join() == EXIT_RESPAWN_BUDGET
        assert running.supervisor.exit_reason == "respawn budget exhausted"
        stderr = capfd.readouterr().err
        assert "respawn budget" in stderr and "exhausted" in stderr

    def test_startup_failure_is_fatal_fast_not_a_respawn_storm(self):
        # Binding an unbindable address fails inside the worker (the
        # supervisor's placeholder binds 127.0.0.1 fine; the REUSEPORT
        # child then cannot bind the same port on a mismatched host) —
        # easier to provoke via a bad engine, which surfaces at boot.
        running = _RunningSupervisor(
            _config(workers=1, engine="not-an-engine"))
        running._thread.start()
        assert running.join(30.0) in (1, 3)
        assert running.supervisor.exit_reason is not None
        assert running.supervisor.exit_reason.startswith("startup")


class TestAggregation:
    def test_aggregate_metrics_carry_worker_labels(self):
        config = _config(workers=2, metrics_port=0,
                         metrics_flush_interval=0.1)
        with _RunningSupervisor(config) as running:
            with ServiceClient("127.0.0.1", running.port) as client:
                for _ in range(3):
                    client.healthz()
            deadline = time.monotonic() + 10.0
            text = ""
            while time.monotonic() < deadline:
                url = (f"http://127.0.0.1:"
                       f"{running.supervisor.metrics_port}/metrics")
                text = urllib.request.urlopen(url).read().decode()
                if 'route="/healthz"' in text and 'worker="' in text:
                    break
                time.sleep(0.1)
            assert 'worker="' in text, "no per-worker series in aggregate"
            url = (f"http://127.0.0.1:"
                   f"{running.supervisor.metrics_port}/healthz")
            fleet = json.loads(urllib.request.urlopen(url).read())
            assert len(fleet["workers"]) == 2
            assert all(w["alive"] for w in fleet["workers"])


class TestSingleFlightEndToEnd:
    def test_duplicate_dispatch_across_workers_computes_once(self):
        """The acceptance criterion: K dispatches, 2 workers, 1 compute.

        Each connection gets its own worker (kernel balancing pins a
        connection to one acceptor), so concurrent clients genuinely
        exercise the cross-process claim protocol.  Exactly one
        response may be the leader; every response must be identical
        modulo the dedup/cached/wall_seconds bookkeeping fields.
        """
        config = _config(workers=2, no_result_cache=True)
        with _RunningSupervisor(config) as running:
            results = [None] * 4
            barrier = threading.Barrier(len(results))

            def dispatch(i: int) -> None:
                with ServiceClient("127.0.0.1", running.port,
                                   timeout=120.0) as client:
                    barrier.wait()
                    results[i] = client.run_experiment("sec4-example")

            threads = [threading.Thread(target=dispatch, args=(i,))
                       for i in range(len(results))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert all(r is not None for r in results)
            outcomes = [r["dedup"] for r in results]
            assert outcomes.count("leader") == 1, outcomes
            assert all(o in ("leader", "follower", "hit")
                       for o in outcomes), outcomes
            payloads = {json.dumps(r["result"], sort_keys=True)
                        for r in results}
            assert len(payloads) == 1  # bit-identical results for all


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
