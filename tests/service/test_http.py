"""Unit tests for the minimal HTTP/1.1 layer (repro.service.http)."""

import asyncio

import pytest

from repro.service.http import (HttpError, Request, read_request,
                                render_response)


def _parse(data: bytes, **limits):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **limits)
    return asyncio.run(main())


class TestReadRequest:
    def test_simple_get(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.body == b""
        assert request.keep_alive is True

    def test_post_with_body(self):
        request = _parse(b"POST /v1/x HTTP/1.1\r\nContent-Length: 7\r\n\r\n"
                         b'{"a":1}')
        assert request.method == "POST"
        assert request.body == b'{"a":1}'

    def test_query_string_and_percent_decoding(self):
        request = _parse(b"GET /a%20b?k=v&empty= HTTP/1.1\r\n\r\n")
        assert request.path == "/a b"
        assert request.query == {"k": "v", "empty": ""}

    def test_connection_close(self):
        request = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_mid_request_eof_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET / HTTP/1.1\r\nHost")
        assert excinfo.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unknown_method_is_501(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"BREW /coffee HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 501

    def test_transfer_encoding_is_501(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 501

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413_and_recoverable(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\nx",
                   max_body_bytes=10)
        assert excinfo.value.status == 413

    def test_oversized_head_is_431(self):
        huge = b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 200 + b"\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            _parse(huge, max_header_bytes=64)
        assert excinfo.value.status == 431

    def test_obs_fold_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            _parse(b"GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n")
        assert excinfo.value.status == 400

    def test_header_names_lowercased(self):
        request = _parse(b"GET / HTTP/1.1\r\nX-Repro-Deadline-Ms: 50\r\n\r\n")
        assert request.headers["x-repro-deadline-ms"] == "50"
        assert request.header_float("x-repro-deadline-ms") == 50.0

    def test_header_float_rejects_junk(self):
        request = Request("GET", "/", headers={"h": "nan", "g": "-1",
                                               "f": "inf", "ok": "2.5"})
        assert request.header_float("h") is None
        assert request.header_float("g") is None
        assert request.header_float("f") is None
        assert request.header_float("ok") == 2.5
        assert request.header_float("absent") is None


class TestRenderResponse:
    def test_content_length_matches_body(self):
        raw = render_response(200, b'{"ok":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b'{"ok":1}'
        assert b"Content-Length: 8" in head
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")

    def test_close_and_extra_headers(self):
        raw = render_response(429, b"{}", keep_alive=False,
                              extra_headers={"Retry-After": "2"})
        assert b"Connection: close" in raw
        assert b"Retry-After: 2" in raw
        assert b"429 Too Many Requests" in raw

    def test_parses_back(self):
        # The response we render must be parseable by a real HTTP client;
        # this is covered end-to-end by test_endpoints (http.client).
        raw = render_response(503, b"shed", content_type="text/plain")
        assert raw.index(b"\r\n\r\n") > 0
