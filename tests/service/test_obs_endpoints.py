"""Service observability surfaces: obs endpoints, spans, SLO, logging.

Covers the telemetry contract end to end against a live server: every
response carries trace headers, every request lands a ``svc:<route>``
span record and (by default) a run-history-store row, ``/metrics``
exposes exemplars and SLO burn gauges, and a traced experiment dispatch
through the batch pool yields one connected span tree retrievable from
the store and exportable as Perfetto JSON.
"""

import http.client
import json
import logging

import pytest

from repro.obs.export import perfetto_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.service import ServiceConfig, ServiceError, ServiceThread

PROFILE = [1.0, 0.5, 0.25]


def _boot(tmp_path, *, tracer=None, **overrides):
    defaults = dict(port=0, no_result_cache=True,
                    store_dir=str(tmp_path / "obs"))
    defaults.update(overrides)
    return ServiceThread(ServiceConfig(**defaults),
                         registry=MetricsRegistry(), tracer=tracer)


def _raw_response(server, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection(server.host, server.port)
    try:
        body = (json.dumps(payload).encode() if payload is not None else None)
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestTraceHeaders:
    def test_every_response_carries_trace_and_span_ids(self, tmp_path):
        with _boot(tmp_path) as server:
            status, headers, _ = _raw_response(
                server, "POST", "/v1/x", {"profile": PROFILE})
            assert status == 200
            assert headers["X-Repro-Trace-Id"] == server.service.tracer.trace_id
            first_span = headers["X-Repro-Span-Id"]
            _, headers2, _ = _raw_response(server, "GET", "/healthz")
        assert len(first_span) == 16
        assert headers2["X-Repro-Span-Id"] != first_span  # per-request
        assert headers2["X-Repro-Trace-Id"] == headers["X-Repro-Trace-Id"]

    def test_errors_carry_trace_headers_too(self, tmp_path):
        with _boot(tmp_path) as server:
            status, headers, _ = _raw_response(server, "GET", "/nope")
        assert status == 404
        assert headers["X-Repro-Trace-Id"]
        assert headers["X-Repro-Span-Id"]


class TestRecordSpan:
    """Regression for the hand-built span-dict this layer replaced:
    request spans must come from ``Tracer.record_span`` with real ids."""

    def test_request_emits_linked_span_record(self, tmp_path):
        tracer = Tracer(keep_records=True)
        with _boot(tmp_path, tracer=tracer) as server:
            _, headers, _ = _raw_response(
                server, "POST", "/v1/x", {"profile": PROFILE})
        spans = tracer.records_named("svc:/v1/x")
        assert spans, "request did not emit a svc:<route> span"
        (span,) = spans
        assert span["type"] == "span"
        assert span["span_id"] == headers["X-Repro-Span-Id"]
        assert span["trace_id"] == tracer.trace_id
        assert span["attrs"]["code"] == 200
        assert span["attrs"]["method"] == "POST"
        assert span["dur"] >= 0.0

    def test_coalesced_solve_parents_onto_request_span(self, tmp_path):
        tracer = Tracer(keep_records=True)
        with _boot(tmp_path, tracer=tracer) as server:
            _, headers, _ = _raw_response(
                server, "POST", "/v1/hecr", {"profile": PROFILE})
        (batch_span,) = tracer.records_named("svc:batch")
        assert batch_span["parent_id"] == headers["X-Repro-Span-Id"]
        assert headers["X-Repro-Span-Id"] in batch_span["attrs"]["waiters"]


class TestMetricsSurfaces:
    def test_exposition_has_exemplars_and_slo_gauge(self, tmp_path):
        with _boot(tmp_path, slo_latency=1e-9) as server:
            with server.client() as client:
                client.x(PROFILE)
                text = client.metrics_text()
            trace_id = server.service.tracer.trace_id
        assert "# TYPE svc_slo_burn_rate gauge" in text
        burn_lines = [ln for ln in text.splitlines()
                      if ln.startswith("svc_slo_burn_rate")
                      and 'route="/v1/x"' in ln]
        assert burn_lines
        # slo_latency ~ 0 makes every request bad: burn rate = 1/budget
        assert float(burn_lines[0].rsplit(" ", 1)[1]) == pytest.approx(
            1.0 / (1.0 - ServiceConfig().slo_objective))
        exemplar_lines = [ln for ln in text.splitlines()
                          if ln.startswith("svc_request_seconds_bucket")
                          and " # {" in ln]
        assert exemplar_lines, "no exemplar on any latency bucket"
        assert f'trace_id="{trace_id}"' in exemplar_lines[0]

    def test_slo_gauge_absent_when_disabled(self, tmp_path):
        with _boot(tmp_path, slo_latency=0.0) as server:
            with server.client() as client:
                client.x(PROFILE)
                text = client.metrics_text()
        assert "svc_slo_burn_rate" not in text


class TestObsEndpoints:
    def test_summary_reports_store_and_slo(self, tmp_path):
        with _boot(tmp_path) as server:
            with server.client() as client:
                client.x(PROFILE)
                summary = client.request("GET", "/v1/obs/summary")
        assert summary["store_enabled"] is True
        assert summary["store"]["by_kind"] == {"request": 1}
        assert summary["trace_id"]
        route_slo = summary["slo"]["routes"]["/v1/x"]
        assert route_slo["requests"] == 1

    def test_requests_become_store_rows(self, tmp_path):
        with _boot(tmp_path) as server:
            with server.client() as client:
                client.x(PROFILE)
                runs = client.request("GET", "/v1/obs/runs")["runs"]
        (row,) = runs
        assert row["kind"] == "request"
        assert row["label"] == "/v1/x"
        assert row["status"] == "200"
        assert row["extra"]["method"] == "POST"

    def test_obs_routes_are_not_self_recorded(self, tmp_path):
        with _boot(tmp_path) as server:
            with server.client() as client:
                client.request("GET", "/v1/obs/runs")
                runs = client.request("GET", "/v1/obs/runs")["runs"]
        assert runs == []  # watching the store must not fill the store

    def test_single_run_with_spans_and_404(self, tmp_path):
        with _boot(tmp_path) as server:
            with server.client() as client:
                client.x(PROFILE)
                run_id = client.request(
                    "GET", "/v1/obs/runs")["runs"][0]["run_id"]
                detail = client.request("GET", f"/v1/obs/runs/{run_id[:8]}")
                assert detail["run"]["run_id"] == run_id
                with pytest.raises(ServiceError) as excinfo:
                    client.request("GET", "/v1/obs/runs/zzzz")
        assert excinfo.value.status == 404

    def test_store_disabled_degrades_to_503(self, tmp_path):
        with _boot(tmp_path, no_store=True) as server:
            with server.client() as client:
                summary = client.request("GET", "/v1/obs/summary")
                assert summary["store_enabled"] is False
                assert summary["store"] is None
                with pytest.raises(ServiceError) as excinfo:
                    client.request("GET", "/v1/obs/runs")
        assert excinfo.value.status == 503


class TestAccessLog:
    def test_one_json_line_per_request(self, tmp_path, caplog):
        with _boot(tmp_path) as server:
            with caplog.at_level(logging.INFO, logger="repro.service.access"):
                with server.client() as client:
                    client.x(PROFILE)
            trace_id = server.service.tracer.trace_id
        lines = [json.loads(r.message) for r in caplog.records
                 if r.name == "repro.service.access"]
        entry = next(ln for ln in lines if ln["route"] == "/v1/x")
        assert entry["method"] == "POST"
        assert entry["status"] == 200
        assert entry["latency_ms"] >= 0.0
        assert entry["trace_id"] == trace_id
        assert len(entry["span_id"]) == 16
        assert entry["shed"] is None

    def test_silent_at_default_level(self, tmp_path, caplog):
        with _boot(tmp_path) as server:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.service.access"):
                with server.client() as client:
                    client.x(PROFILE)
        assert not [r for r in caplog.records
                    if r.name == "repro.service.access"]


class TestExperimentDispatchTree:
    """The acceptance scenario: a request dispatched into
    ``run_batch --jobs 2`` yields one connected span tree, stored."""

    def test_single_connected_tree_stored_and_exportable(self, tmp_path):
        tracer = Tracer(keep_records=True)
        with _boot(tmp_path, tracer=tracer, jobs=2) as server:
            with server.client() as client:
                got = client.run_experiment(
                    "majorization", trials_per_size=30, seed=5)
                runs = client.request(
                    "GET", "/v1/obs/runs")["runs"]
        assert got["result"]["rows"]

        # one coherent tree: every record shares the session trace id
        records = tracer.records
        assert {r["trace_id"] for r in records} == {tracer.trace_id}
        (batch_span,) = tracer.records_named("batch:run")
        (request_span,) = tracer.records_named(
            "svc:/v1/experiments/{id}")
        assert batch_span["parent_id"] == request_span["span_id"]
        span_ids = {r["span_id"] for r in records if "span_id" in r}
        for record in records:
            parent = record.get("parent_id")
            assert parent is None or parent in span_ids
        # the pool actually fanned out and its roots link to batch:run
        worker_roots = [r for r in records
                        if r["attrs"].get("worker_pid") and r["depth"] == 0]
        assert worker_roots
        assert {r["parent_id"] for r in worker_roots} == \
            {batch_span["span_id"]}

        # the dispatch landed in the store, joined by trace id
        experiment_rows = [r for r in runs if r["kind"] == "experiment"]
        (row,) = experiment_rows
        assert row["label"] == "majorization"
        assert row["trace_id"] == tracer.trace_id
        assert row["cache_key"]
        assert row["extra"]["jobs"] == 2
        assert row["extra"]["span_id"] == request_span["span_id"]

        # and the whole tree exports as valid Perfetto JSON
        doc = json.loads(json.dumps(perfetto_trace(records)))
        assert {e["ph"] for e in doc["traceEvents"]} >= {"X", "M"}
        worker_pids = {e["pid"] for e in doc["traceEvents"]} - {0}
        assert worker_pids, "no worker process lanes in the export"
