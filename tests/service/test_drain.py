"""Graceful-drain tests: SIGTERM semantics without the signals.

``ReproService.stop()`` (what SIGTERM triggers) must stop accepting
before cancelling anything, give in-flight requests ``drain_timeout``
seconds to finish, and answer requests arriving on surviving
keep-alive connections with ``503`` + ``Retry-After`` instead of a
connection reset.  These drive the drain directly over raw sockets so
the keep-alive/reset distinction is observable.
"""

import asyncio
import json
import socket
import time

import pytest

from repro.service.config import ServiceConfig
from repro.service.runtime import ServiceThread


def _send_request(sock: socket.socket, method: str, path: str,
                  payload: dict | None = None) -> None:
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: t\r\nContent-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n\r\n").encode()
    sock.sendall(head + body)


def _read_response(sock: socket.socket) -> tuple[int, dict[str, str], bytes]:
    sock.settimeout(30.0)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("peer closed before a full response")
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return status, headers, rest


def _start_drain(server: ServiceThread, timeout: float) -> "asyncio.Future":
    """Kick off service.drain() on the server's loop; returns the future."""
    return asyncio.run_coroutine_threadsafe(
        server.service.drain(timeout), server._loop)


@pytest.fixture
def server():
    config = ServiceConfig(port=0, no_store=True, cache_ttl=0.0,
                           cache_entries=0, drain_timeout=2.0)
    with ServiceThread(config) as running:
        yield running


class TestDrain:
    def test_keepalive_request_during_drain_gets_503(self):
        # An in-flight slow request (long batch window) holds the drain
        # open; a request arriving on another keep-alive connection in
        # that window must get a clean 503, not a connection reset.
        config = ServiceConfig(port=0, no_store=True, cache_ttl=0.0,
                               cache_entries=0, batch_window=0.5,
                               drain_timeout=5.0)
        with ServiceThread(config) as server:
            slow = socket.create_connection(("127.0.0.1", server.port))
            idle = socket.create_connection(("127.0.0.1", server.port))
            try:
                _send_request(idle, "GET", "/healthz")
                status, headers, _ = _read_response(idle)
                assert status == 200
                assert headers.get("connection") == "keep-alive"

                _send_request(slow, "POST", "/v1/x",
                              {"profile": [1.0, 2.0]})
                time.sleep(0.05)  # slow request is now in flight
                future = _start_drain(server, 5.0)
                time.sleep(0.1)  # drain flag is set, waiting on `slow`

                # The idle connection survived the listener closing;
                # its next request must be answered, not reset.
                _send_request(idle, "GET", "/healthz")
                status, headers, body = _read_response(idle)
                assert status == 503
                assert headers.get("retry-after") == "1"
                assert headers.get("connection") == "close"
                assert json.loads(body)["error"] == "shed: draining"

                status, _, _ = _read_response(slow)
                assert status == 200  # in-flight work was not axed
                future.result(timeout=10.0)
            finally:
                slow.close()
                idle.close()

    def test_drain_refuses_new_connections(self, server):
        port = server.port
        future = _start_drain(server, 1.0)
        future.result(timeout=10.0)
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0)

    def test_inflight_request_finishes_within_drain_timeout(self):
        # A long batch window makes an eval request observably slow:
        # submitted work waits out the window before solving, so a
        # drain starting mid-request must still answer it with 200.
        config = ServiceConfig(port=0, no_store=True, cache_ttl=0.0,
                               cache_entries=0, batch_window=0.4,
                               drain_timeout=5.0)
        with ServiceThread(config) as server:
            with socket.create_connection(("127.0.0.1", server.port)) as sock:
                _send_request(sock, "POST", "/v1/x",
                              {"profile": [1.0, 2.0, 3.0]})
                time.sleep(0.05)  # request is now in the batch window
                started = time.perf_counter()
                future = _start_drain(server, 5.0)
                status, _, body = _read_response(sock)
                future.result(timeout=10.0)
                assert status == 200
                assert json.loads(body)["n"] == 3
                # ... and the drain waited for it rather than axing it.
                assert time.perf_counter() - started < 5.0

    def test_drain_past_timeout_closes_lingering_connections(self, server):
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            _send_request(sock, "GET", "/healthz")
            _read_response(sock)
            # An idle keep-alive connection does not block the drain:
            # it is closed once in-flight work (none here) is done.
            future = _start_drain(server, 0.5)
            future.result(timeout=10.0)
            deadline = time.monotonic() + 5.0
            closed = False
            while time.monotonic() < deadline:
                try:
                    if sock.recv(1) == b"":
                        closed = True
                        break
                except (ConnectionResetError, socket.timeout, OSError):
                    closed = True
                    break
            assert closed

    def test_drain_is_idempotent_and_stop_still_works(self, server):
        future = _start_drain(server, 0.5)
        future.result(timeout=10.0)
        again = _start_drain(server, 0.5)
        again.result(timeout=10.0)  # second drain is a no-op, not an error

    def test_shed_counter_labels_draining(self):
        config = ServiceConfig(port=0, no_store=True, cache_ttl=0.0,
                               cache_entries=0, batch_window=0.5,
                               drain_timeout=5.0)
        with ServiceThread(config) as server:
            registry = server.service.registry
            # The service shares the process-global registry: other
            # tests may have shed already, so assert the delta.
            before = registry.counter(
                "svc_shed_total", "").value(reason="draining")
            slow = socket.create_connection(("127.0.0.1", server.port))
            idle = socket.create_connection(("127.0.0.1", server.port))
            try:
                _send_request(idle, "GET", "/healthz")
                _read_response(idle)
                _send_request(slow, "POST", "/v1/x", {"profile": [1.0]})
                time.sleep(0.05)
                future = _start_drain(server, 5.0)
                time.sleep(0.1)
                _send_request(idle, "GET", "/healthz")
                status, _, _ = _read_response(idle)
                assert status == 503
                _read_response(slow)
                future.result(timeout=10.0)
            finally:
                slow.close()
                idle.close()
            assert registry.counter(
                "svc_shed_total", "").value(reason="draining") == before + 1
