"""Unit tests for the TTL'd LRU response cache (repro.service.respcache)."""

from repro.service.respcache import ResponseCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestResponseCache:
    def test_hit_and_miss(self):
        cache = ResponseCache(4, 10.0, clock=FakeClock())
        key = cache.key("/v1/x", {"profile": [1.0, 0.5]})
        assert cache.get(key) is None
        cache.put(key, b'{"x":1}')
        assert cache.get(key) == b'{"x":1}'
        assert cache.hits == 1 and cache.misses == 1

    def test_keys_are_content_addresses(self):
        a = ResponseCache.key("/v1/x", {"profile": [1.0, 0.5]})
        b = ResponseCache.key("/v1/x", {"profile": [1.0, 0.5]})
        c = ResponseCache.key("/v1/x", {"profile": [1.0, 0.25]})
        d = ResponseCache.key("/v1/hecr", {"profile": [1.0, 0.5]})
        assert a == b
        assert len({a, c, d}) == 3

    def test_key_folds_in_version(self, monkeypatch):
        before = ResponseCache.key("/v1/x", {})
        monkeypatch.setattr("repro.service.respcache.__version__", "999.0")
        assert ResponseCache.key("/v1/x", {}) != before

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResponseCache(4, ttl=5.0, clock=clock)
        cache.put("k", b"v")
        clock.now = 4.9
        assert cache.get("k") == b"v"
        clock.now = 5.0
        assert cache.get("k") is None
        assert len(cache) == 0  # expired entries are evicted, not kept

    def test_lru_eviction_past_cap(self):
        cache = ResponseCache(2, 100.0, clock=FakeClock())
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # refresh a
        cache.put("c", b"3")           # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == b"1"
        assert cache.get("c") == b"3"

    def test_disabled_when_zero_sized_or_zero_ttl(self):
        for cache in (ResponseCache(0, 10.0), ResponseCache(10, 0.0)):
            assert not cache.enabled
            cache.put("k", b"v")
            assert cache.get("k") is None
