"""End-to-end endpoint tests against a live server (ServiceThread).

Each test boots a real asyncio server on an ephemeral loopback port
and talks to it with the blocking :class:`ServiceClient` — the same
path the CI smoke job and the throughput benchmark use.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.measure import x_measure
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.protocols.general import lp_allocation
from repro.service import (ServiceClient, ServiceConfig, ServiceError,
                           ServiceThread)

PROFILE = [1.0, 0.5, 0.25]


@pytest.fixture()
def server(tmp_path):
    config = ServiceConfig(port=0, result_cache_dir=str(tmp_path / "cache"))
    with ServiceThread(config, registry=MetricsRegistry()) as thread:
        yield thread


class TestEvaluationEndpoints:
    def test_x_matches_library(self, server):
        with server.client() as client:
            got = client.x(PROFILE)
        assert got["x"] == x_measure(Profile(PROFILE), PAPER_TABLE1)
        assert got["n"] == 3

    def test_hecr_and_work(self, server):
        with server.client() as client:
            h = client.hecr(PROFILE)
            w = client.work(PROFILE, lifespan=80.0)
        assert 0 < h["hecr"] < 1
        assert w["work"] == pytest.approx(w["work_rate"] * 80.0)

    def test_custom_params(self, server):
        with server.client() as client:
            default = client.x(PROFILE)
            custom = client.x(PROFILE,
                              params={"tau": 0.5, "pi": 1.0, "delta": 0.5})
        assert custom["x"] != default["x"]

    def test_allocate_lp_matches_library(self, server):
        with server.client() as client:
            got = client.allocate(PROFILE, lifespan=100.0, protocol="lp")
        allocation = lp_allocation(Profile(PROFILE), PAPER_TABLE1, 100.0,
                                   (0, 1, 2), (0, 1, 2))
        assert got["allocation"]["w"] == [float(v) for v in allocation.w]
        assert got["total_work"] == float(allocation.w.sum())

    def test_allocate_fifo_with_order(self, server):
        with server.client() as client:
            got = client.allocate(PROFILE, lifespan=100.0, protocol="fifo",
                                  startup_order=[2, 1, 0])
        assert got["allocation"]["startup_order"] == [2, 1, 0]
        assert got["allocation"]["protocol_name"].lower().startswith("fifo")

    def test_bad_inputs_are_400(self, server):
        with server.client() as client:
            for payload in ({"profile": []},
                            {"profile": [1.0, -2.0]},
                            {"profile": PROFILE, "params": {"zap": 1}},
                            {"profile": PROFILE, "lifespan": -5.0,
                             "protocol": "fifo"}):
                path = ("/v1/allocate" if "lifespan" in payload else "/v1/x")
                with pytest.raises(ServiceError) as excinfo:
                    client.request("POST", path, payload)
                assert excinfo.value.status == 400

    def test_malformed_json_body_is_400(self, server):
        import http.client
        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("POST", "/v1/x", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            conn.close()

    def test_unknown_protocol_is_400(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.allocate(PROFILE, lifespan=50.0, protocol="magic")
            assert excinfo.value.status == 400


class TestOperationalEndpoints:
    def test_healthz(self, server):
        with server.client() as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_metrics_exposition(self, server):
        with server.client() as client:
            client.x(PROFILE)
            text = client.metrics_text()
        assert "# TYPE svc_requests_total counter" in text
        assert 'route="/v1/x"' in text
        assert "svc_batch_size" in text

    def test_experiment_index(self, server):
        with server.client() as client:
            experiments = client.experiments()
        by_id = {e["id"]: e for e in experiments}
        assert "fig3" in by_id
        assert set(by_id["fig3"]) == {"id", "description", "shardable"}

    def test_run_experiment_and_result_cache(self, server):
        with server.client() as client:
            first = client.run_experiment("fig3")
            second = client.run_experiment("fig3")
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"]["rows"] == second["result"]["rows"]

    def test_unknown_experiment_404(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.run_experiment("not-a-thing")
            assert excinfo.value.status == 404
            assert "known" in excinfo.value.payload

    def test_unknown_route_404_and_wrong_method_405(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("GET", "/nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client.request("GET", "/v1/x")
            assert excinfo.value.status == 405


class TestBatchingOverHttp:
    def test_concurrent_identical_requests_share_one_solve(self, tmp_path):
        config = ServiceConfig(port=0, batch_window=0.05, max_batch=64,
                               cache_entries=0,  # force the coalescer path
                               no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()) as server:
            results, errors = [], []

            def hammer():
                try:
                    with server.client() as client:
                        results.append(client.x(PROFILE)["x"])
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            solver = server.service.batcher.solver
            assert not errors
            assert len(set(results)) == 1
            assert results[0] == x_measure(Profile(PROFILE), PAPER_TABLE1)
            # at least some requests must have shared a batch/solve
            assert solver.collapsed + solver.xpool.hits > 0

    def test_response_cache_serves_repeats(self, tmp_path):
        registry = MetricsRegistry()
        config = ServiceConfig(port=0, no_result_cache=True)
        with ServiceThread(config, registry=registry) as server:
            with server.client() as client:
                first = client.x(PROFILE)
                second = client.x(PROFILE)
        assert first == second
        hits = registry.counter(
            "svc_response_cache_hits_total", "").value(kind="x")
        assert hits >= 1


class TestAdmissionOverHttp:
    def test_rate_limit_sheds_429_with_retry_after(self, tmp_path):
        config = ServiceConfig(port=0, rate=1.0, burst=1.0,
                               no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()) as server:
            with server.client() as client:
                client.x(PROFILE)  # consumes the single burst token
                with pytest.raises(ServiceError) as excinfo:
                    client.x([0.9, 0.8])
        assert excinfo.value.status == 429
        assert excinfo.value.shed
        assert excinfo.value.retry_after >= 1.0
        assert excinfo.value.payload["error"].startswith("shed")

    def test_healthz_and_metrics_exempt_from_shedding(self, tmp_path):
        config = ServiceConfig(port=0, rate=1.0, burst=1.0,
                               no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()) as server:
            with server.client() as client:
                client.x(PROFILE)
                # bucket is empty, but the operational endpoints answer
                assert client.healthz()["status"] == "ok"
                assert "svc_shed_total" not in client.metrics_text() or True
                text = client.metrics_text()
        assert "svc_requests_total" in text


class TestDeadlines:
    def test_deadline_header_cancels_with_504(self, tmp_path):
        config = ServiceConfig(port=0, cache_entries=0, no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()) as server:
            big = list(np.random.default_rng(0).uniform(0.1, 1.0, 600))
            with server.client() as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.x(big, deadline_ms=0.0001)
        assert excinfo.value.status == 504

    def test_generous_deadline_succeeds(self, tmp_path):
        config = ServiceConfig(port=0, no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()) as server:
            with server.client() as client:
                got = client.x(PROFILE, deadline_ms=30000)
        assert got["n"] == 3


class TestObservability:
    def test_request_spans_ingested(self, tmp_path):
        tracer = Tracer()
        config = ServiceConfig(port=0, no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry(),
                           tracer=tracer) as server:
            with server.client() as client:
                client.x(PROFILE)
                client.healthz()
        names = {r["name"] for r in tracer.records}
        assert "svc:/v1/x" in names
        assert "svc:/healthz" in names
        span = tracer.records_named("svc:/v1/x")[0]
        assert span["attrs"]["code"] == 200
        assert span["dur"] >= 0

    def test_inflight_gauge_returns_to_zero(self, tmp_path):
        registry = MetricsRegistry()
        config = ServiceConfig(port=0, no_result_cache=True)
        with ServiceThread(config, registry=registry) as server:
            with server.client() as client:
                client.x(PROFILE)
        assert registry.gauge("svc_inflight", "").value() == 0


class TestKeepAliveAndFraming:
    def test_many_requests_one_connection(self, server):
        with server.client() as client:
            for _ in range(5):
                assert client.healthz()["status"] == "ok"

    def test_oversized_body_rejected(self, tmp_path):
        config = ServiceConfig(port=0, max_body_bytes=64,
                               no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()) as server:
            with server.client() as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.x([0.5] * 200)
        assert excinfo.value.status == 413


class TestServeEngineConfig:
    def test_bad_engine_fails_at_boot(self, tmp_path):
        from repro.errors import SimulationError
        config = ServiceConfig(port=0, engine="warp-drive",
                               no_result_cache=True)
        with pytest.raises(SimulationError):
            ServiceThread(config).start()

    def test_engine_override_reaches_env(self, tmp_path, monkeypatch):
        import os

        from repro.simulation import runner
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        monkeypatch.setattr(runner, "_default_engine", None)
        config = ServiceConfig(port=0, engine="analytic",
                               no_result_cache=True)
        with ServiceThread(config, registry=MetricsRegistry()):
            # set for dispatch workers (fork inherits the environment)
            assert os.environ.get("REPRO_SIM_ENGINE") == "analytic"
            assert runner.default_engine() == "analytic"
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        monkeypatch.setattr(runner, "_default_engine", None)


class TestClientTransport:
    def test_transport_error_reconnects(self, server):
        client = ServiceClient(server.host, server.port)
        assert client.healthz()["status"] == "ok"
        client._conn.close()  # simulate a dropped keep-alive socket
        # http.client raises on the dead socket; the client resets and
        # the next call transparently reconnects.
        try:
            client.healthz()
        except ServiceError:
            pass
        assert client.healthz()["status"] == "ok"
        client.close()

    def test_error_payload_decoded(self, server):
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/v1/x", {"profile": "zebra"})
        assert excinfo.value.status == 400
        assert "error" in excinfo.value.payload
        assert json.dumps(excinfo.value.payload)  # JSON-safe
