"""Unit tests for admission control (repro.service.admission)."""

import pytest

from repro.errors import InvalidParameterError
from repro.service.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.now += 0.5  # one token at 2/s
        assert bucket.try_acquire() == 0.0

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.now += 1000.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        assert bucket.try_acquire() == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(InvalidParameterError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionController:
    def test_inflight_ceiling_sheds_503(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.admit()
        assert controller.admit()
        decision = controller.admit()
        assert not decision
        assert decision.status == 503
        assert decision.reason == "overload"
        assert decision.retry_after > 0

    def test_release_reopens_capacity(self):
        controller = AdmissionController(max_inflight=1)
        assert controller.admit()
        assert not controller.admit()
        controller.release()
        assert controller.admit()

    def test_rate_limit_sheds_429_before_inflight(self):
        clock = FakeClock()
        controller = AdmissionController(max_inflight=100, rate=1.0,
                                         burst=1.0, clock=clock)
        assert controller.admit()
        decision = controller.admit()
        assert decision.status == 429
        assert decision.reason == "ratelimit"
        # a 429 must not consume an in-flight slot
        assert controller.inflight == 1

    def test_retry_after_header_rounds_up_with_floor_one(self):
        clock = FakeClock()
        controller = AdmissionController(max_inflight=10, rate=10.0,
                                         burst=1.0, clock=clock)
        controller.admit()
        decision = controller.admit()
        assert decision.retry_after == pytest.approx(0.1)
        assert decision.retry_after_header == "1"

    def test_rate_zero_disables_bucket(self):
        controller = AdmissionController(max_inflight=3, rate=0.0)
        assert all(controller.admit() for _ in range(3))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            AdmissionController(max_inflight=0)
