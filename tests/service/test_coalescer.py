"""The micro-batching coalescer, above all its bit-identity contract.

The serving layer's headline guarantee: for any batch of concurrent
evaluation requests, every response is **bit-identical** to the response
the same request would have produced in a batch of one (and to a direct
library call).  The property test below drives randomised request mixes
— duplicate-heavy so request collapsing, X-sharing and LP grouping all
actually engage — and compares float-for-float with ``==`` (bit
equality for non-NaN floats).
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hecr import hecr
from repro.core.measure import work_production, work_rate, x_measure
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.io import allocation_to_dict
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation
from repro.service.coalescer import (BatchSolver, MicroBatcher, request_key,
                                     solve_batch)

# A deliberately small pool: collisions are the point.
_PROFILES = ((1.0, 0.5, 0.25), (0.9, 0.9, 0.1), (1.0, 0.75),
             (0.8, 0.6, 0.4, 0.2))
_PARAMS = (PAPER_TABLE1, ModelParams(tau=0.5, pi=1.0, delta=0.5))
_LIFESPANS = (60.0, 150.0)


def _orders(n: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    return tuple(range(n)), tuple(reversed(range(n)))


@st.composite
def eval_requests(draw):
    kind = draw(st.sampled_from(("x", "work", "hecr", "allocate")))
    profile = draw(st.sampled_from(_PROFILES))
    params = draw(st.sampled_from(_PARAMS))
    payload = {"profile": profile, "params": params}
    if kind == "work":
        payload["lifespan"] = draw(st.sampled_from(_LIFESPANS + (None,)))
    elif kind == "allocate":
        payload["lifespan"] = draw(st.sampled_from(_LIFESPANS))
        natural, reverse = _orders(len(profile))
        if draw(st.booleans()):
            payload["protocol"] = "lp"
            payload["startup_order"] = draw(st.sampled_from((natural, reverse)))
            payload["finishing_order"] = draw(
                st.sampled_from((natural, reverse)))
            payload["enforce_separation"] = True
        else:
            payload["protocol"] = "fifo"
            payload["startup_order"] = draw(
                st.sampled_from((None, natural, reverse)))
    return (kind, payload)


def _expected(kind, payload):
    """What the plain library, called directly, answers."""
    profile = Profile(payload["profile"])
    params = payload["params"]
    if kind == "x":
        return {"x": x_measure(profile, params), "n": len(profile)}
    if kind == "hecr":
        return {"x": x_measure(profile, params),
                "hecr": hecr(profile, params), "n": len(profile)}
    if kind == "work":
        out = {"x": x_measure(profile, params),
               "work_rate": work_rate(profile, params)}
        if payload.get("lifespan") is not None:
            out["lifespan"] = payload["lifespan"]
            out["work"] = work_production(profile, params,
                                          payload["lifespan"])
        return out
    if payload["protocol"] == "lp":
        allocation = lp_allocation(profile, params, payload["lifespan"],
                                   payload["startup_order"],
                                   payload["finishing_order"])
    else:
        allocation = fifo_allocation(profile, params, payload["lifespan"],
                                     startup_order=payload["startup_order"])
    return {"allocation": allocation_to_dict(allocation),
            "total_work": float(allocation.w.sum())}


class TestBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(eval_requests(), min_size=1, max_size=24))
    def test_batched_equals_solo_equals_library(self, requests):
        batched = solve_batch(requests)
        assert len(batched) == len(requests)
        for request, (ok, value) in zip(requests, batched):
            assert ok, value
            solo_ok, solo = solve_batch([request])[0]
            assert solo_ok
            # dict == compares floats bitwise (modulo NaN, never produced
            # here): batch-of-N result is the batch-of-1 result...
            assert value == solo
            # ...which is the direct library answer.
            assert value == _expected(*request)

    def test_lp_grouping_engages_and_stays_identical(self):
        natural, reverse = _orders(3)
        base = {"profile": (1.0, 0.5, 0.25), "params": PAPER_TABLE1,
                "lifespan": 100.0, "protocol": "lp",
                "enforce_separation": True}
        requests = [("allocate", {**base, "startup_order": natural,
                                  "finishing_order": natural}),
                    ("allocate", {**base, "startup_order": reverse,
                                  "finishing_order": natural}),
                    ("allocate", {**base, "startup_order": natural,
                                  "finishing_order": reverse})]
        solver = BatchSolver()
        outcomes = solver.solve(requests)
        assert solver.lp_grouped == 3
        for request, (ok, value) in zip(requests, outcomes):
            assert ok
            assert value == _expected(*request)


class TestBatchSolver:
    def test_collapsing_counts_duplicates(self):
        payload = {"profile": (1.0, 0.5), "params": PAPER_TABLE1}
        solver = BatchSolver()
        outcomes = solver.solve([("x", payload)] * 5)
        assert solver.collapsed == 4
        assert len({id(value) for _, value in outcomes}) == 1  # shared

    def test_x_shared_across_kinds(self):
        payload = {"profile": (1.0, 0.5, 0.25), "params": PAPER_TABLE1}
        solver = BatchSolver()
        solver.solve([("x", payload), ("hecr", payload),
                      ("work", {**payload, "lifespan": 50.0})])
        assert solver.xpool.misses == 1
        assert solver.xpool.hits == 2

    def test_error_isolated_to_the_bad_request(self):
        good = {"profile": (1.0, 0.5), "params": PAPER_TABLE1}
        # not a permutation -> the library raises ProtocolError
        bad = {"profile": (1.0, 0.5), "params": PAPER_TABLE1,
               "lifespan": 50.0, "protocol": "lp",
               "startup_order": (0, 0), "finishing_order": (0, 1),
               "enforce_separation": True}
        outcomes = solve_batch([("x", good), ("allocate", bad), ("x", good)])
        assert outcomes[0][0] and outcomes[2][0]
        assert not outcomes[1][0]
        assert isinstance(outcomes[1][1], Exception)

    def test_request_key_separates_kinds_and_fields(self):
        a = {"profile": (1.0, 0.5), "params": PAPER_TABLE1}
        assert request_key("x", a) != request_key("hecr", a)
        assert (request_key("work", {**a, "lifespan": 5.0})
                != request_key("work", {**a, "lifespan": 6.0}))
        other = {"profile": (1.0, 0.5),
                 "params": ModelParams(tau=0.5, pi=1.0, delta=0.5)}
        assert request_key("x", a) != request_key("x", other)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_into_one_batch(self):
        async def main():
            batcher = MicroBatcher(window=0.05, max_batch=64)
            batcher.start()
            payload = {"profile": (1.0, 0.5, 0.25), "params": PAPER_TABLE1}
            try:
                results = await asyncio.gather(
                    *(batcher.submit("x", payload) for _ in range(8)))
            finally:
                await batcher.stop()
            return batcher, results
        batcher, results = asyncio.run(main())
        assert batcher.batches == 1
        assert batcher.requests == 8
        assert batcher.solver.collapsed == 7
        assert all(r == results[0] for r in results)

    def test_max_batch_one_disables_coalescing(self):
        async def main():
            batcher = MicroBatcher(window=0.0, max_batch=1)
            batcher.start()
            payload = {"profile": (1.0, 0.5), "params": PAPER_TABLE1}
            try:
                await asyncio.gather(
                    *(batcher.submit("x", payload) for _ in range(4)))
            finally:
                await batcher.stop()
            return batcher
        batcher = asyncio.run(main())
        assert batcher.batches == 4

    def test_error_propagates_as_exception(self):
        async def main():
            batcher = MicroBatcher(window=0.0, max_batch=4)
            batcher.start()
            bad = {"profile": (1.0, 0.5), "params": PAPER_TABLE1,
                   "lifespan": 50.0, "protocol": "lp",
                   "startup_order": (0, 0), "finishing_order": (0, 1),
                   "enforce_separation": True}
            try:
                with pytest.raises(Exception):
                    await batcher.submit("allocate", bad)
            finally:
                await batcher.stop()
        asyncio.run(main())

    def test_stop_fails_queued_requests(self):
        async def main():
            batcher = MicroBatcher(window=1.0, max_batch=64)
            # Never started: queue a request by hand and stop.
            future = asyncio.get_running_loop().create_future()
            batcher._queue.put_nowait(("x", {}, future))
            await batcher.stop()
            with pytest.raises(ConnectionError):
                future.result()
        asyncio.run(main())

    def test_unknown_kind_rejected(self):
        async def main():
            batcher = MicroBatcher()
            batcher.start()
            try:
                with pytest.raises(InvalidParameterError):
                    await batcher.submit("nope", {})
            finally:
                await batcher.stop()
        asyncio.run(main())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MicroBatcher(window=-0.1)
        with pytest.raises(InvalidParameterError):
            MicroBatcher(max_batch=0)
