"""Live-server tests for the stream endpoints (docs/STREAM.md).

POST /v1/stream/events feeds the single live streaming session (lazily
created, reset via ``reset``, finalised via ``finish``); GET
/v1/stream/state reads its snapshot without mutating it.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (ServiceClient, ServiceConfig, ServiceError,
                           ServiceThread)
from repro.stream import event_to_dict, synthetic_trace

PROFILE = [1.0, 0.5, 0.25]


def _events(**kwargs):
    kwargs.setdefault("profile", PROFILE)
    kwargs.setdefault("windows", 3)
    return [event_to_dict(e) for e in synthetic_trace(**kwargs)]


@pytest.fixture()
def server(tmp_path):
    config = ServiceConfig(port=0, result_cache_dir=str(tmp_path / "cache"),
                           store_dir=str(tmp_path / "state"))
    with ServiceThread(config, registry=MetricsRegistry()) as thread:
        yield thread


class TestStreamEvents:
    def test_feed_close_finish_lifecycle(self, server):
        events = _events()
        with server.client() as client:
            first = client.request("POST", "/v1/stream/events",
                                   {"events": events, "window": 10.0})
            assert first["accepted"] == len(events)
            assert all(r["kind"] == "window" for r in first["windows"])
            assert first["state"]["windows_closed"] == len(first["windows"])
            final = client.request("POST", "/v1/stream/events",
                                   {"events": [], "finish": True})
            kinds = [r["kind"] for r in final["windows"]]
            assert kinds[-1] == "summary"
            state = client.request("GET", "/v1/stream/state")
            assert state == {"active": False, "state": None}

    def test_state_reports_live_session(self, server):
        with server.client() as client:
            client.request("POST", "/v1/stream/events",
                           {"events": _events()[:2], "window": 25.0})
            state = client.request("GET", "/v1/stream/state")
            assert state["active"] is True
            assert state["state"]["window_size"] == 25.0
            assert state["state"]["buffered_events"] == 2

    def test_reset_reapplies_session_knobs(self, server):
        with server.client() as client:
            client.request("POST", "/v1/stream/events",
                           {"events": [], "window": 10.0})
            # Without reset, knobs of an existing session are sticky.
            client.request("POST", "/v1/stream/events",
                           {"events": [], "window": 99.0})
            state = client.request("GET", "/v1/stream/state")
            assert state["state"]["window_size"] == 10.0
            fresh = client.request("POST", "/v1/stream/events",
                                   {"events": [], "reset": True,
                                    "window": 99.0, "calibrate": False})
            assert fresh["state"]["window_size"] == 99.0
            assert fresh["state"]["calibrating"] is False

    def test_shadow_profile_flows_through(self, server):
        with server.client() as client:
            out = client.request("POST", "/v1/stream/events",
                                 {"events": _events(),
                                  "what_if": [1.0, 1.0, 1.0, 1.0],
                                  "finish": True})
            window = out["windows"][0]
            assert window["shadow"]["n"] == 4
            assert window["shadow"]["work_rate_delta"] is not None


class TestStreamErrors:
    @pytest.mark.parametrize("body, fragment", [
        ({"events": "nope"}, "events must be"),
        ({"events": [{"type": "bogus", "time": 0.0}]}, "type"),
        ({"events": [42]}, "event 0 must be"),
        ({"events": [], "window": -1.0}, "window"),
        ({"events": [], "calibrate": "yes"}, "calibrate"),
        ({"events": [], "what_if": "1,2"}, "what_if"),
        ({"events": [], "forget": 2.0}, "forget"),
    ])
    def test_bad_requests_are_400(self, server, body, fragment):
        body = dict(body, reset=True)
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/v1/stream/events", body)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    def test_bad_event_does_not_kill_the_session(self, server):
        with server.client() as client:
            client.request("POST", "/v1/stream/events",
                           {"events": _events()[:3]})
            with pytest.raises(ServiceError):
                client.request("POST", "/v1/stream/events",
                               {"events": [{"type": "bogus", "time": 0.0}]})
            state = client.request("GET", "/v1/stream/state")
            assert state["active"] is True
            assert state["state"]["events_total"] == 3
