"""Service-layer tests for scheme-carrying /v1/allocate requests."""

import pytest

from repro.coded import DEFAULT_MARGIN, MDSScheme, ReplicationScheme
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.errors import (CodedSchemeError, InvalidParameterError,
                          ProtocolError)
from repro.obs.metrics import MetricsRegistry
from repro.service import ServiceConfig, ServiceError, ServiceThread
from repro.service.app import parse_eval_payload
from repro.service.coalescer import request_key, solve_batch

PROFILE = [1.0, 0.5, 0.25, 0.2]
BODY = {"profile": PROFILE, "lifespan": 60.0}


def _body(**extra):
    return {**BODY, **extra}


class TestParsePayload:
    def test_scheme_becomes_canonical_tuple(self):
        payload = parse_eval_payload(
            "allocate", _body(scheme={"kind": "replication", "r": 3}))
        assert payload["scheme"] == ("replication", 3)
        assert payload["scheme_margin"] == DEFAULT_MARGIN

    def test_mds_accepts_shares_alias_and_margin(self):
        payload = parse_eval_payload(
            "allocate", _body(scheme={"kind": "mds", "k": 2, "shares": 3},
                              margin=0.5))
        assert payload["scheme"] == ("mds", 2, 3)
        assert payload["scheme_margin"] == 0.5

    def test_no_scheme_leaves_payload_unchanged(self):
        payload = parse_eval_payload("allocate", _body())
        assert "scheme" not in payload
        assert "scheme_margin" not in payload

    @pytest.mark.parametrize("scheme", [
        {"kind": "mds", "k": 3, "n": 2},          # k > n
        {"kind": "parity", "r": 2},               # unknown kind
        {"kind": "replication", "r": "two"},      # non-integer
        {"kind": "replication", "r": 2, "x": 1},  # unknown field
        "replication:2",                          # must be an object
    ])
    def test_bad_schemes_rejected(self, scheme):
        with pytest.raises(CodedSchemeError):
            parse_eval_payload("allocate", _body(scheme=scheme))

    def test_scheme_requires_fifo_protocol(self):
        with pytest.raises(ProtocolError):
            parse_eval_payload(
                "allocate", _body(protocol="lp",
                                  scheme={"kind": "replication", "r": 2}))

    def test_scheme_rejects_explicit_orders(self):
        with pytest.raises(ProtocolError):
            parse_eval_payload(
                "allocate", _body(startup_order=[3, 2, 1, 0],
                                  scheme={"kind": "replication", "r": 2}))

    def test_bad_margin_rejected(self):
        for margin in (0.0, 2.0, "x", True):
            with pytest.raises(InvalidParameterError):
                parse_eval_payload(
                    "allocate",
                    _body(scheme={"kind": "replication", "r": 2},
                          margin=margin))


class TestCoalescerIdentity:
    def test_key_distinguishes_scheme_and_margin(self):
        plain = parse_eval_payload("allocate", _body())
        rep = parse_eval_payload(
            "allocate", _body(scheme={"kind": "replication", "r": 2}))
        mds = parse_eval_payload(
            "allocate", _body(scheme={"kind": "mds", "k": 2, "n": 3}))
        tight = parse_eval_payload(
            "allocate", _body(scheme={"kind": "mds", "k": 2, "n": 3},
                              margin=0.5))
        keys = {request_key("allocate", p) for p in (plain, rep, mds, tight)}
        assert len(keys) == 4

    def test_equal_scheme_requests_collapse_to_one_key(self):
        a = parse_eval_payload(
            "allocate", _body(scheme={"kind": "mds", "k": 2, "shares": 3}))
        b = parse_eval_payload(
            "allocate", _body(scheme={"kind": "mds", "k": 2, "n": 3}))
        assert request_key("allocate", a) == request_key("allocate", b)

    def test_solve_matches_library_plan(self):
        payload = parse_eval_payload(
            "allocate", _body(scheme={"kind": "mds", "k": 2, "n": 2}))
        (ok, response), = solve_batch([("allocate", payload)])
        assert ok
        plan = MDSScheme(2, 2).plan(Profile(PROFILE), PAPER_TABLE1, 60.0,
                                    margin=DEFAULT_MARGIN)
        assert response["allocation"]["w"] == [float(v)
                                               for v in plan.allocation.w]
        assert response["total_work"] == float(plan.allocation.w.sum())
        assert response["coded"]["expected_waste_fraction"] == \
            plan.expected_waste_fraction
        assert response["coded"]["scheme"] == "mds-2/2"


@pytest.fixture()
def server(tmp_path):
    config = ServiceConfig(port=0, result_cache_dir=str(tmp_path / "cache"))
    with ServiceThread(config, registry=MetricsRegistry()) as thread:
        yield thread


class TestEndpoint:
    def test_allocate_with_scheme_returns_redundant_plan(self, server):
        with server.client() as client:
            got = client.request(
                "POST", "/v1/allocate",
                _body(scheme={"kind": "replication", "r": 2}))
        plan = ReplicationScheme(2).plan(Profile(PROFILE), PAPER_TABLE1, 60.0)
        assert got["allocation"]["w"] == [float(v) for v in plan.allocation.w]
        assert got["allocation"]["protocol_name"] == "coded-replication-2"
        assert got["coded"]["expected_waste_fraction"] == \
            pytest.approx(plan.expected_waste_fraction)
        assert len(got["coded"]["quanta"]) == len(plan.quanta)

    def test_scheme_and_plain_responses_are_cached_apart(self, server):
        with server.client() as client:
            plain = client.request("POST", "/v1/allocate", _body())
            coded = client.request(
                "POST", "/v1/allocate",
                _body(scheme={"kind": "replication", "r": 2}))
            plain_again = client.request("POST", "/v1/allocate", _body())
        assert "coded" not in plain
        assert "coded" in coded
        assert plain_again == plain

    def test_bad_scheme_bodies_are_400(self, server):
        bad = (
            _body(scheme={"kind": "mds", "k": 3, "n": 2}),
            _body(scheme={"kind": "parity", "r": 2}),
            _body(scheme={"kind": "replication", "r": 2}, protocol="lp"),
            _body(scheme={"kind": "replication", "r": 2},
                  startup_order=[3, 2, 1, 0]),
            _body(scheme={"kind": "replication", "r": 2}, margin=1.5),
        )
        with server.client() as client:
            for body in bad:
                with pytest.raises(ServiceError) as excinfo:
                    client.request("POST", "/v1/allocate", body)
                assert excinfo.value.status == 400

    def test_infeasible_scheme_is_400_not_500(self, server):
        # more shares than workers: CodedSchemeError at solve time
        with server.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    "POST", "/v1/allocate",
                    _body(scheme={"kind": "mds", "k": 2, "n": 8}))
            assert excinfo.value.status == 400
