"""Unit tests for the ``repro-hetero obs`` command family (repro.cli).

The autouse ``_isolated_run_store`` fixture points ``$REPRO_OBS_DIR``
at a fresh temp directory, so every test starts with an empty store
and ``run`` invocations here populate it without touching the user's
real state home.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def recorded_run(capsys):
    """One completed ``run table3`` (with store row); returns its id."""
    assert main(["run", "table3"]) == 0
    err = capsys.readouterr().err
    line = next(ln for ln in err.splitlines() if "recorded run" in ln)
    return line.split()[2]


class TestRunRecording:
    def test_run_announces_stored_id(self, recorded_run):
        assert len(recorded_run) == 12

    def test_no_store_skips_recording(self, capsys):
        assert main(["run", "table3", "--no-store"]) == 0
        assert "recorded run" not in capsys.readouterr().err
        assert main(["obs", "runs"]) == 0
        assert "table3" not in capsys.readouterr().out

    def test_traced_run_stores_spans(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "table3", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "tail"]) == 0
        out = capsys.readouterr().out
        assert "batch:run" in out
        assert "experiment:table3" in out


class TestInspection:
    def test_summary(self, recorded_run, capsys):
        assert main(["obs", "summary"]) == 0
        out = capsys.readouterr().out
        assert "run-history store" in out
        assert "'run': 1" in out

    def test_runs_table(self, recorded_run, capsys):
        assert main(["obs", "runs"]) == 0
        out = capsys.readouterr().out
        assert recorded_run in out
        assert "table3" in out
        assert "ok" in out

    def test_runs_kind_filter(self, recorded_run, capsys):
        assert main(["obs", "runs", "--kind", "request"]) == 0
        assert recorded_run not in capsys.readouterr().out

    def test_top_aggregates_spans(self, tmp_path, capsys):
        assert main(["run", "table3", "--trace",
                     str(tmp_path / "t.jsonl")]) == 0
        capsys.readouterr()
        assert main(["obs", "top"]) == 0
        out = capsys.readouterr().out
        assert "batch:run" in out
        assert "count" in out and "total" in out

    def test_tail_accepts_prefix(self, tmp_path, recorded_run, capsys):
        assert main(["obs", "tail", recorded_run[:6]]) == 0
        assert recorded_run[:6] in capsys.readouterr().out

    def test_missing_run_is_exit_2(self, capsys):
        assert main(["obs", "tail", "deadbeef"]) == 2
        assert "no matching stored run" in capsys.readouterr().err

    def test_prune(self, recorded_run, capsys):
        assert main(["obs", "prune", "--max-runs", "0"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert main(["obs", "runs"]) == 0
        assert recorded_run not in capsys.readouterr().out


class TestExport:
    def test_export_stored_run_to_perfetto(self, tmp_path, capsys):
        assert main(["run", "table3", "--trace",
                     str(tmp_path / "t.jsonl")]) == 0
        out_path = tmp_path / "trace.perfetto.json"
        assert main(["obs", "export", "--perfetto", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "batch:run" in names
        assert doc["displayTimeUnit"] == "ms"

    def test_export_from_jsonl_input(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "table3", "--trace", str(trace)]) == 0
        out_path = tmp_path / "from-jsonl.json"
        assert main(["obs", "export", "--input", str(trace),
                     "--perfetto", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_export_without_spans_is_exit_2(self, recorded_run, capsys):
        # a span-less run (no --trace) has nothing to export... so
        # export of an empty store must fail loudly, not write "[]"
        assert main(["obs", "prune", "--max-runs", "0"]) == 0
        capsys.readouterr()
        assert main(["obs", "export", "--perfetto", "x.json"]) == 2


class TestCompareWatchdog:
    def _write(self, path, **metrics):
        path.write_text(json.dumps(metrics))
        return str(path)

    def test_regression_past_threshold_exits_1(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", wall_seconds=1.0)
        cand = self._write(tmp_path / "c.json", wall_seconds=1.4)
        assert main(["obs", "compare", base, cand]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "DRIFT" in captured.err

    def test_within_threshold_exits_0(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", wall_seconds=1.0)
        cand = self._write(tmp_path / "c.json", wall_seconds=1.2)
        assert main(["obs", "compare", base, cand]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_improvement_exits_0(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", wall_seconds=1.0)
        cand = self._write(tmp_path / "c.json", wall_seconds=0.2)
        assert main(["obs", "compare", base, cand]) == 0

    def test_custom_threshold(self, tmp_path):
        base = self._write(tmp_path / "b.json", wall_seconds=1.0)
        cand = self._write(tmp_path / "c.json", wall_seconds=1.2)
        assert main(["obs", "compare", base, cand,
                     "--threshold", "0.1"]) == 1

    def test_custom_key_pattern(self, tmp_path):
        base = self._write(tmp_path / "b.json", throughput_rps=100.0)
        cand = self._write(tmp_path / "c.json", throughput_rps=160.0)
        # throughput is not latency-like: invisible by default...
        assert main(["obs", "compare", base, cand]) == 2
        # ...but selectable, where growth reads as regression per the
        # grows-is-worse convention (use it for costs, not throughput)
        assert main(["obs", "compare", base, cand,
                     "--keys", "throughput"]) == 1

    def test_no_shared_keys_exits_2(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", a_seconds=1.0)
        cand = self._write(tmp_path / "c.json", b_seconds=1.0)
        assert main(["obs", "compare", base, cand]) == 2
        assert "no comparable" in capsys.readouterr().err

    def test_unresolvable_ref_exits_2(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", wall_seconds=1.0)
        assert main(["obs", "compare", base, "no-such-run"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stored_runs_compare_by_id(self, tmp_path, capsys):
        assert main(["run", "table3"]) == 0
        assert main(["run", "table3"]) == 0
        capsys.readouterr()
        assert main(["obs", "runs"]) == 0
        rows = capsys.readouterr().out.strip().splitlines()[1:]
        newer, older = rows[0].split()[0], rows[1].split()[0]
        code = main(["obs", "compare", older, newer])
        assert code in (0, 1)  # both resolve; timing decides the verdict
        out = capsys.readouterr().out
        assert "wall_seconds" in out
        assert "_bucket" not in out  # cardinality series are filtered
