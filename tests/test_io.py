"""Unit tests for repro.io — persistence round-trips."""

import json

import pytest

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError, InvalidProfileError
from repro.io import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    params_from_dict,
    params_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_allocation,
)
from repro.protocols.fifo import fifo_allocation
from repro.simulation.runner import simulate_allocation


class TestProfileRoundtrip:
    def test_roundtrip(self):
        p = Profile([1.0, 0.5, 1 / 3])
        assert profile_from_dict(profile_to_dict(p)) == p

    def test_missing_key(self):
        with pytest.raises(InvalidParameterError):
            profile_from_dict({})

    def test_validation_applies(self):
        with pytest.raises(InvalidProfileError):
            profile_from_dict({"rho": [1.0, -0.5]})


class TestParamsRoundtrip:
    def test_roundtrip(self):
        p = ModelParams(tau=0.01, pi=0.002, delta=0.5)
        assert params_from_dict(params_to_dict(p)) == p

    def test_validation_applies(self):
        with pytest.raises(InvalidParameterError):
            params_from_dict({"tau": -1.0, "pi": 0.0, "delta": 1.0})


class TestAllocationRoundtrip:
    @pytest.fixture
    def alloc(self):
        return fifo_allocation(Profile([1.0, 0.5, 0.25]), PAPER_TABLE1, 30.0)

    def test_roundtrip_preserves_everything(self, alloc):
        rebuilt = allocation_from_dict(allocation_to_dict(alloc))
        assert rebuilt.profile == alloc.profile
        assert rebuilt.params == alloc.params
        assert rebuilt.lifespan == alloc.lifespan
        assert rebuilt.w == pytest.approx(alloc.w, rel=0, abs=0)
        assert rebuilt.startup_order == alloc.startup_order
        assert rebuilt.finishing_order == alloc.finishing_order
        assert rebuilt.protocol_name == alloc.protocol_name

    def test_roundtrip_is_json_clean(self, alloc):
        text = json.dumps(allocation_to_dict(alloc))
        rebuilt = allocation_from_dict(json.loads(text))
        assert rebuilt.total_work == pytest.approx(alloc.total_work, rel=0)

    def test_rebuilt_schedule_executes_identically(self, alloc):
        rebuilt = allocation_from_dict(allocation_to_dict(alloc))
        original = simulate_allocation(alloc)
        replayed = simulate_allocation(rebuilt)
        assert replayed.completed_work == original.completed_work

    def test_file_roundtrip(self, alloc, tmp_path):
        path = tmp_path / "schedule.json"
        save_allocation(alloc, str(path))
        loaded = load_allocation(str(path))
        assert loaded.total_work == pytest.approx(alloc.total_work, rel=0)

    def test_schema_version_checked(self, alloc):
        data = allocation_to_dict(alloc)
        data["schema_version"] = 99
        with pytest.raises(InvalidParameterError):
            allocation_from_dict(data)

    def test_corrupted_quanta_rejected(self, alloc):
        data = allocation_to_dict(alloc)
        data["w"] = [-1.0] * 3
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            allocation_from_dict(data)

    def test_missing_key_reported(self, alloc):
        data = allocation_to_dict(alloc)
        del data["lifespan"]
        with pytest.raises(InvalidParameterError):
            allocation_from_dict(data)
