"""Unit tests for repro.obs.profile: the opt-in hot-path profiler."""

import pytest

from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.obs.profile import DEFAULT_TARGETS, HotPathProfiler, _resolve


class TestResolve:
    def test_module_function(self):
        owner, attr, func = _resolve("repro.core.measure:x_measure")
        assert attr == "x_measure"
        assert callable(func)

    def test_class_method(self):
        owner, attr, func = _resolve("repro.simulation.engine:Simulator.run")
        assert attr == "run"
        assert callable(func)

    def test_bad_spec_raises(self):
        with pytest.raises(InvalidParameterError):
            _resolve("no-colon-here")

    def test_non_callable_raises(self):
        with pytest.raises(InvalidParameterError):
            _resolve("repro.core.params:PAPER_TABLE1")


class TestHotPathProfiler:
    def test_counts_calls_and_time(self):
        import repro.core.measure as measure
        prof = HotPathProfiler(targets=("repro.core.measure:x_measure",))
        with prof:
            measure.x_measure(Profile([1.0, 0.5]), PAPER_TABLE1)
            measure.x_measure(Profile([1.0]), PAPER_TABLE1)
        (stat,) = prof.stats()
        assert stat.calls == 2
        assert stat.cumulative_seconds >= 0.0
        assert stat.mean_seconds == stat.cumulative_seconds / 2

    def test_disable_restores_original(self):
        import repro.core.measure as measure
        original = measure.x_measure
        prof = HotPathProfiler(targets=("repro.core.measure:x_measure",))
        prof.enable()
        assert measure.x_measure is not original
        prof.disable()
        assert measure.x_measure is original

    def test_enable_is_idempotent(self):
        import repro.core.measure as measure
        original = measure.x_measure
        prof = HotPathProfiler(targets=("repro.core.measure:x_measure",))
        prof.enable()
        wrapped = measure.x_measure
        prof.enable()
        assert measure.x_measure is wrapped
        prof.disable()
        assert measure.x_measure is original

    def test_default_targets_all_resolve_and_profile_simulation(self):
        from repro.protocols.fifo import FifoProtocol
        from repro.simulation.runner import simulate_protocol
        with HotPathProfiler() as prof:
            result = simulate_protocol(FifoProtocol(), Profile.linear(4),
                                       PAPER_TABLE1, 100.0, engine="events")
        assert result.all_completed
        by_target = {s.target: s for s in prof.stats()}
        assert set(by_target) == set(DEFAULT_TARGETS)
        assert by_target["repro.simulation.engine:Simulator.run"].calls == 1
        assert by_target["repro.protocols.fifo:fifo_allocation"].calls >= 1

    def test_report_is_a_table(self):
        with HotPathProfiler() as prof:
            pass
        report = prof.report()
        assert "target" in report and "calls" in report
        assert all(t in report for t in DEFAULT_TARGETS)
