"""Unit tests for repro.obs.store: the persistent run-history tier."""

import threading
import time

from repro.obs.store import RunStore, default_store_path
from repro.obs.tracing import Tracer


class TestDefaultPath:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert default_store_path() == tmp_path / "runs.sqlite3"

    def test_xdg_state_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        monkeypatch.setenv("XDG_STATE_HOME", str(tmp_path))
        assert default_store_path() == (
            tmp_path / "repro-hetero" / "runs.sqlite3")


class TestRecordAndRead:
    def test_round_trip_with_documents(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            run_id = store.record_run(
                kind="experiment", label="table3", trace_id="t" * 32,
                cache_key="deadbeef", engine="analytic", status="ok",
                wall_seconds=0.5,
                metrics={"sim_runs_total": {"value": 3}},
                extra={"cached": True, "jobs": 2})
            assert run_id is not None
            run = store.get_run(run_id)
        assert run["kind"] == "experiment"
        assert run["label"] == "table3"
        assert run["trace_id"] == "t" * 32
        assert run["cache_key"] == "deadbeef"
        assert run["metrics"] == {"sim_runs_total": {"value": 3}}
        assert run["extra"] == {"cached": True, "jobs": 2}
        assert run["started_iso"].startswith("20")  # formatted, not epoch

    def test_runs_newest_first_and_kind_filter(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            store.record_run(kind="run", label="old", started_at=100.0)
            store.record_run(kind="request", label="req", started_at=200.0)
            store.record_run(kind="run", label="new", started_at=300.0)
            labels = [r["label"] for r in store.runs()]
            only_runs = [r["label"] for r in store.runs(kind="run")]
        assert labels == ["new", "req", "old"]
        assert only_runs == ["new", "old"]

    def test_prefix_lookup_must_be_unambiguous(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            store.record_run(kind="run", run_id="abc111")
            store.record_run(kind="run", run_id="abc222")
            store.record_run(kind="run", run_id="xyz333")
            assert store.get_run("xyz")["run_id"] == "xyz333"
            assert store.get_run("abc") is None  # two matches
            assert store.get_run("abc1")["run_id"] == "abc111"
            assert store.get_run("nope") is None

    def test_latest_by_kind(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            store.record_run(kind="run", label="a", started_at=1.0)
            store.record_run(kind="request", label="b", started_at=2.0)
            assert store.latest()["label"] == "b"
            assert store.latest(kind="run")["label"] == "a"
            assert store.latest(kind="bench") is None


class TestSpans:
    def test_tracer_records_survive_round_trip(self, tmp_path):
        tracer = Tracer(keep_records=True)
        with tracer.span("outer", n=8):
            tracer.event("tick")
        with RunStore(tmp_path / "runs.sqlite3") as store:
            run_id = store.record_run(
                kind="run", trace_id=tracer.trace_id,
                spans=tracer.records)
            stored = store.spans(run_id)
        assert [r["name"] for r in stored] == ["tick", "outer"]
        outer = stored[1]
        assert outer["type"] == "span"
        assert outer["attrs"]["n"] == 8
        assert outer["trace_id"] == tracer.trace_id
        assert "dur" in outer and "span_id" in outer
        event = stored[0]
        assert "dur" not in event and "span_id" not in event

    def test_spans_accepts_run_id_prefix(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            run_id = store.record_run(
                kind="run",
                spans=[{"type": "event", "name": "e", "ts": 0.0}])
            assert [r["name"] for r in store.spans(run_id[:6])] == ["e"]

    def test_spans_for_trace_joins_across_runs(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            for name in ("first", "second"):
                store.record_run(
                    kind="request", trace_id="shared-trace",
                    spans=[{"type": "span", "name": name, "ts": 0.0,
                            "dur": 0.1}])
            names = {r["name"] for r in store.spans_for_trace("shared-trace")}
        assert names == {"first", "second"}


class TestSummaryAndPrune:
    def test_summary_counts(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            store.record_run(kind="run", status="ok",
                             spans=[{"name": "s", "ts": 0.0}])
            store.record_run(kind="request", status="error")
            digest = store.summary()
        assert digest["runs"] == 2
        assert digest["spans"] == 1
        assert digest["by_kind"] == {"run": 1, "request": 1}
        assert digest["by_status"] == {"ok": 1, "error": 1}
        assert digest["latest"] is not None
        assert digest["db_bytes"] > 0

    def test_prune_max_runs_keeps_newest(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            for i in range(5):
                store.record_run(kind="run", label=f"r{i}",
                                 started_at=float(i),
                                 spans=[{"name": "s", "ts": 0.0}])
            assert store.prune(max_runs=2) == 3
            kept = [r["label"] for r in store.runs()]
            assert kept == ["r4", "r3"]
            # orphaned spans go with their runs
            assert store.summary()["spans"] == 2

    def test_prune_max_age(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            store.record_run(kind="run", label="ancient",
                             started_at=time.time() - 10 * 86400.0)
            store.record_run(kind="run", label="fresh")
            assert store.prune(max_age_days=1.0) == 1
            assert [r["label"] for r in store.runs()] == ["fresh"]


class TestDurability:
    def test_concurrent_threads_all_recorded(self, tmp_path):
        """WAL + the connection lock arbitrate racing writers."""
        with RunStore(tmp_path / "runs.sqlite3") as store:
            def write(i: int) -> None:
                store.record_run(kind="request", label=f"req{i}",
                                 spans=[{"name": "s", "ts": 0.0}])
            threads = [threading.Thread(target=write, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert store.summary() == store.summary()  # readable after race
            assert store.summary()["runs"] == 16
            assert store.summary()["spans"] == 16

    def test_two_stores_same_path_share_history(self, tmp_path):
        path = tmp_path / "runs.sqlite3"
        with RunStore(path) as writer:
            writer.record_run(kind="run", label="from-writer")
        with RunStore(path) as reader:
            assert reader.latest()["label"] == "from-writer"

    def test_write_failure_degrades_to_none(self, tmp_path):
        """The durability contract: a broken store never raises."""
        store = RunStore(tmp_path / "runs.sqlite3")
        store._conn.close()  # simulate a dead backend
        assert store.record_run(kind="run") is None
        assert store.add_spans("x", [{"name": "s", "ts": 0.0}]) == 0

    def test_unjsonable_documents_stored_as_null(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            run_id = store.record_run(
                kind="run", extra={("tuple", "key"): 1})  # unjsonable key
            assert store.get_run(run_id)["extra"] is None
