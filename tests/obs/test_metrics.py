"""Unit tests for repro.obs.metrics: counter/gauge/histogram/timer semantics."""

import threading

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events_total")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_cells_are_independent(self):
        c = Counter("runs_total")
        c.inc(experiment="table3")
        c.inc(3, experiment="fig4")
        assert c.value(experiment="table3") == 1.0
        assert c.value(experiment="fig4") == 3.0
        assert c.value(experiment="nope") == 0.0

    def test_label_order_does_not_matter(self):
        c = Counter("x_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1.0

    def test_cannot_decrease(self):
        with pytest.raises(InvalidParameterError):
            Counter("down_total").inc(-1)

    def test_thread_safety_exact_total(self):
        c = Counter("racy_total")

        def worker():
            for _ in range(1000):
                c.inc()
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000.0

    def test_samples(self):
        c = Counter("s_total")
        c.inc(5, kind="a")
        samples = list(c.samples())
        assert len(samples) == 1
        assert samples[0].name == "s_total"
        assert samples[0].labels == (("kind", "a"),)
        assert samples[0].value == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value() == 7.0

    def test_set_to_max_keeps_high_water_mark(self):
        g = Gauge("peak")
        g.set_to_max(3)
        g.set_to_max(9)
        g.set_to_max(5)
        assert g.value() == 9.0


class TestHistogram:
    def test_bucket_assignment_is_le_inclusive(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(1.0)   # == bound: falls in the le=1 bucket
        h.observe(5.0)
        h.observe(100.0)  # overflow -> +Inf
        counts = h.bucket_counts()
        assert counts[1.0] == 2
        assert counts[10.0] == 3            # cumulative
        assert counts[float("inf")] == 4
        assert h.count() == 4
        assert h.sum() == pytest.approx(106.5)

    def test_labelled_cells(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5, op="read")
        h.observe(2.0, op="write")
        assert h.count(op="read") == 1
        assert h.count(op="write") == 1
        assert h.count() == 0

    def test_invalid_buckets_raise(self):
        with pytest.raises(InvalidParameterError):
            Histogram("bad", buckets=())

    def test_samples_include_bucket_sum_count(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        names = [s.name for s in h.samples()]
        assert names == ["lat_bucket", "lat_bucket", "lat_sum", "lat_count"]


class TestTimer:
    def test_time_context_records_elapsed(self):
        registry = MetricsRegistry()
        timer = registry.timer("step_seconds")
        with timer.time(step="noop") as t:
            pass
        assert timer.count(step="noop") == 1
        assert t.elapsed >= 0.0
        assert timer.sum(step="noop") == pytest.approx(t.elapsed)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(InvalidParameterError):
            registry.gauge("thing")

    def test_timer_and_histogram_are_distinct_kinds(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        with pytest.raises(InvalidParameterError):
            registry.timer("h")

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz_total")
        registry.gauge("aa")
        assert [m.name for m in registry.collect()] == ["aa", "zz_total"]

    def test_snapshot_is_json_safe(self):
        import json
        registry = MetricsRegistry()
        registry.counter("c_total", "help text").inc(2, k="v")
        snap = registry.snapshot()
        json.dumps(snap)
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["series"]["c_total{k=v}"] == 2.0

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.reset()
        assert len(registry) == 0

    def test_invalid_metric_name_raises(self):
        with pytest.raises(InvalidParameterError):
            MetricsRegistry().counter("bad name!")


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous


class TestDumpMerge:
    """Cross-process transport: dump() in a worker, merge() in the parent."""

    def test_counter_cells_add(self):
        worker = MetricsRegistry()
        worker.counter("runs_total", "help").inc(3, experiment="a")
        worker.counter("runs_total").inc(1, experiment="b")
        parent = MetricsRegistry()
        parent.counter("runs_total").inc(2, experiment="a")
        parent.merge(worker.dump())
        assert parent.counter("runs_total").value(experiment="a") == 5.0
        assert parent.counter("runs_total").value(experiment="b") == 1.0

    def test_gauge_merges_as_high_water_mark(self):
        worker = MetricsRegistry()
        worker.gauge("depth").set(3.0)
        parent = MetricsRegistry()
        parent.gauge("depth").set(7.0)
        parent.merge(worker.dump())
        assert parent.gauge("depth").value() == 7.0  # max, not overwrite
        low = MetricsRegistry()
        low.gauge("depth").set(2.0)
        parent.merge(low.dump())
        assert parent.gauge("depth").value() == 7.0

    def test_histogram_buckets_add_cellwise(self):
        worker = MetricsRegistry()
        h = worker.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=(1.0, 10.0)).observe(20.0)
        parent.merge(worker.dump())
        merged = parent.histogram("lat", buckets=(1.0, 10.0))
        samples = {s.name + str(dict(s.labels)): s.value
                   for s in merged.samples()}
        assert samples["lat_count{}"] == 3.0
        assert samples["lat_sum{}"] == 25.5

    def test_merge_into_empty_registry_recreates_metrics(self):
        worker = MetricsRegistry()
        worker.counter("c_total", "counted things").inc(4)
        worker.timer("t_seconds", "timed things").observe(0.25)
        parent = MetricsRegistry()
        parent.merge(worker.dump())
        assert parent.counter("c_total").value() == 4.0
        names = [m.name for m in parent.collect()]
        assert names == ["c_total", "t_seconds"]

    def test_dump_is_json_safe(self):
        import json
        registry = MetricsRegistry()
        registry.counter("c_total").inc(k="v")
        registry.histogram("h").observe(2.0)
        json.dumps(registry.dump())

    def test_merge_mismatched_buckets_raises(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(0.5)
        with pytest.raises(InvalidParameterError):
            parent.merge(worker.dump())
