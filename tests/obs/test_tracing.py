"""Unit tests for repro.obs.tracing: spans, events, ambient observation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    Observation,
    SimulationObserver,
    Tracer,
    current_observation,
    observe,
    traced,
)


class TestSpans:
    def test_span_records_name_duration_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            pass
        (record,) = tracer.records
        assert record["type"] == "span"
        assert record["name"] == "outer"
        assert record["depth"] == 0
        assert record["dur"] >= 0.0

    def test_nesting_child_closes_first_with_greater_depth(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        names = [r["name"] for r in tracer.records]
        assert names == ["child", "parent"]
        assert tracer.records_named("child")[0]["depth"] == 1
        assert tracer.records_named("parent")[0]["depth"] == 0

    def test_span_attrs_mutable_until_close(self):
        tracer = Tracer()
        with tracer.span("work", fixed=1) as attrs:
            attrs["rows"] = 42
        record = tracer.records[0]
        assert record["attrs"] == {"fixed": 1, "rows": 42}

    def test_exception_marks_error_and_unwinds_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("no")
        assert tracer.records[0]["attrs"]["error"] is True
        assert tracer.active_depth == 0

    def test_events_carry_attrs_and_depth(self):
        tracer = Tracer()
        with tracer.span("ctx"):
            tracer.event("tick", t=1.5)
        event = tracer.records_named("tick")[0]
        assert event["type"] == "event"
        assert event["attrs"]["t"] == 1.5
        assert event["depth"] == 1

    def test_sink_receives_every_record(self):
        seen = []
        tracer = Tracer(sink=seen.append, keep_records=False)
        tracer.event("a")
        with tracer.span("b"):
            pass
        assert [r["name"] for r in seen] == ["a", "b"]
        assert tracer.records == ()  # keep_records=False


class TestAmbientObservation:
    def test_default_is_none(self):
        assert current_observation() is None

    def test_observe_installs_and_restores(self):
        ctx = Observation(tracer=Tracer())
        with observe(ctx) as installed:
            assert installed is ctx
            assert current_observation() is ctx
        assert current_observation() is None

    def test_nested_observe_restores_outer(self):
        outer, inner = Observation(), Observation()
        with observe(outer):
            with observe(inner):
                assert current_observation() is inner
            assert current_observation() is outer


class TestTracedDecorator:
    def test_no_observation_is_passthrough(self):
        @traced()
        def add(a, b):
            return a + b
        assert add(1, 2) == 3

    def test_traced_emits_span_with_default_name(self):
        @traced()
        def compute():
            return 7
        tracer = Tracer()
        with observe(Observation(tracer=tracer)):
            assert compute() == 7
        (record,) = tracer.records
        assert record["name"].endswith("compute")

    def test_traced_custom_name(self):
        @traced("custom.name")
        def f():
            return None
        tracer = Tracer()
        with observe(Observation(tracer=tracer)):
            f()
        assert tracer.records[0]["name"] == "custom.name"


class TestSimulationObserver:
    def test_on_event_tracks_peak_depth_and_count(self):
        obs = SimulationObserver()
        obs.on_event(0.0, "a", 3)
        obs.on_event(1.0, "b", 7)
        obs.on_event(2.0, "c", 2)
        assert obs.events_seen == 3
        assert obs.peak_queue_depth == 7

    def test_run_metrics_recorded_on_run_end(self):
        class FakeSim:
            now = 5.0
            events_processed = 12
            peak_queue_depth = 4
        registry = MetricsRegistry()
        obs = SimulationObserver(registry=registry)
        obs.on_run_start(FakeSim())
        obs.on_run_end(FakeSim())
        assert registry.counter("sim_runs_total").value() == 1.0
        assert registry.counter("sim_events_total").value() == 12.0
        assert registry.gauge("sim_queue_depth_peak").value() == 4.0


class TestIngest:
    """Folding worker-process trace records back into a session tracer."""

    def test_reemits_records_and_counts(self):
        worker = Tracer(keep_records=True)
        with worker.span("shard:x[0]"):
            worker.event("tick")
        session = Tracer(keep_records=True)
        assert session.ingest(worker.records) == 2
        assert [r["name"] for r in session.records] == ["tick", "shard:x[0]"]

    def test_extra_attrs_mark_provenance(self):
        worker = Tracer(keep_records=True)
        with worker.span("work", n=8):
            pass
        session = Tracer(keep_records=True)
        session.ingest(worker.records, worker_pid=4242)
        record, = session.records
        assert record["attrs"]["worker_pid"] == 4242
        assert record["attrs"]["n"] == 8  # original attrs survive

    def test_ingested_records_reach_sinks(self):
        seen = []
        session = Tracer(keep_records=False)
        session.add_sink(seen.append)
        session.ingest([{"type": "event", "name": "e", "ts": 0.0,
                         "depth": 0, "attrs": {}}], task="t1")
        assert seen[0]["attrs"] == {"task": "t1"}

    def test_source_records_are_not_mutated(self):
        original = {"type": "event", "name": "e", "ts": 0.0,
                    "depth": 0, "attrs": {}}
        Tracer(keep_records=True).ingest([original], worker_pid=1)
        assert original["attrs"] == {}
