"""Unit tests for repro.obs.export: JSONL round-trip, Prometheus text."""

import json

from repro.obs.export import (
    JsonlTraceWriter,
    prometheus_text,
    read_jsonl,
    run_summary,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class TestJsonlRoundTrip:
    def test_writer_streams_and_reader_restores(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceWriter(path) as writer:
            tracer = Tracer(sink=writer)
            tracer.event("first", t=1.0)
            with tracer.span("work", n=4):
                tracer.event("inner")
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["first", "inner", "work"]
        assert records[0]["attrs"]["t"] == 1.0
        assert records[2]["attrs"]["n"] == 4
        assert writer.records_written == 3

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceWriter(path) as writer:
            for i in range(10):
                writer({"type": "event", "name": f"e{i}", "ts": i,
                        "depth": 0, "attrs": {}})
        for line in open(path, encoding="utf-8"):
            json.loads(line)

    def test_write_after_close_is_a_noop(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = JsonlTraceWriter(path)
        writer({"type": "event", "name": "a", "ts": 0, "depth": 0, "attrs": {}})
        writer.close()
        writer({"type": "event", "name": "b", "ts": 1, "depth": 0, "attrs": {}})
        assert len(read_jsonl(path)) == 1

    def test_non_json_attr_values_stringified(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceWriter(path) as writer:
            writer({"type": "event", "name": "odd", "ts": 0, "depth": 0,
                    "attrs": {"obj": object()}})
        assert isinstance(read_jsonl(path)[0]["attrs"]["obj"], str)


class TestPrometheusText:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "number of runs").inc(3, kind="sim")
        registry.gauge("depth", "queue depth").set(7)
        registry.histogram("lat_seconds", "latency", buckets=(1.0,)).observe(0.5)
        return registry

    def test_help_and_type_lines(self):
        text = prometheus_text(self._registry())
        assert "# HELP runs_total number of runs" in text
        assert "# TYPE runs_total counter" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_sample_lines(self):
        text = prometheus_text(self._registry())
        assert 'runs_total{kind="sim"} 3' in text
        assert "\ndepth 7" in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_parseable_shape(self):
        """Every non-comment line must be `name{labels} value` or `name value`."""
        import re
        pattern = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$')
        for line in prometheus_text(self._registry()).strip().splitlines():
            if not line.startswith("#"):
                assert pattern.match(line), line

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(label='quote"back\\slash\nnl')
        text = prometheus_text(registry)
        assert r'\"' in text and r'\\' in text and r'\n' in text
        assert "\nnl" not in text  # the newline itself must not survive

    def test_label_value_exact_escaped_form(self):
        # The exposition spec: label values escape backslash, double
        # quote, and line feed — in that order, so escapes don't double.
        # The value here is shaped like the hostile request paths the
        # service's route labels are derived from.
        registry = MetricsRegistry()
        registry.counter("svc_requests_total").inc(
            route='/v1/"x"\\path\nend')
        text = prometheus_text(registry)
        assert r'route="/v1/\"x\"\\path\nend"' in text

    def test_help_escaping(self):
        # HELP text escapes exactly backslash and line feed (no quote
        # escaping there, unlike label values).  Unescaped, the newline
        # would split the line and corrupt every sample below it.
        registry = MetricsRegistry()
        registry.counter("h_total", 'line one\nline "two" \\ back').inc()
        text = prometheus_text(registry)
        assert r'# HELP h_total line one\nline "two" \\ back' in text
        for line in text.splitlines():
            assert line.startswith(("#", "h_total")), line

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_metrics_file(self, tmp_path):
        path = tmp_path / "m.prom"
        write_metrics(self._registry(), str(path))
        assert "runs_total" in path.read_text()


class TestRunSummary:
    def test_mentions_every_series(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(1, zone="x")
        text = run_summary(registry)
        assert "a_total" in text and "b [zone=x]" in text

    def test_empty_registry(self):
        assert "(no metrics recorded)" in run_summary(MetricsRegistry())
