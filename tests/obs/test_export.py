"""Unit tests for repro.obs.export: JSONL round-trip, Prometheus text."""

import json

from repro.obs.export import (
    JsonlTraceWriter,
    perfetto_trace,
    prometheus_text,
    read_jsonl,
    run_summary,
    write_metrics,
    write_perfetto,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class TestJsonlRoundTrip:
    def test_writer_streams_and_reader_restores(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceWriter(path) as writer:
            tracer = Tracer(sink=writer)
            tracer.event("first", t=1.0)
            with tracer.span("work", n=4):
                tracer.event("inner")
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["first", "inner", "work"]
        assert records[0]["attrs"]["t"] == 1.0
        assert records[2]["attrs"]["n"] == 4
        assert writer.records_written == 3

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceWriter(path) as writer:
            for i in range(10):
                writer({"type": "event", "name": f"e{i}", "ts": i,
                        "depth": 0, "attrs": {}})
        for line in open(path, encoding="utf-8"):
            json.loads(line)

    def test_write_after_close_is_a_noop(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = JsonlTraceWriter(path)
        writer({"type": "event", "name": "a", "ts": 0, "depth": 0, "attrs": {}})
        writer.close()
        writer({"type": "event", "name": "b", "ts": 1, "depth": 0, "attrs": {}})
        assert len(read_jsonl(path)) == 1

    def test_non_json_attr_values_stringified(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceWriter(path) as writer:
            writer({"type": "event", "name": "odd", "ts": 0, "depth": 0,
                    "attrs": {"obj": object()}})
        assert isinstance(read_jsonl(path)[0]["attrs"]["obj"], str)


class TestPrometheusText:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "number of runs").inc(3, kind="sim")
        registry.gauge("depth", "queue depth").set(7)
        registry.histogram("lat_seconds", "latency", buckets=(1.0,)).observe(0.5)
        return registry

    def test_help_and_type_lines(self):
        text = prometheus_text(self._registry())
        assert "# HELP runs_total number of runs" in text
        assert "# TYPE runs_total counter" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_sample_lines(self):
        text = prometheus_text(self._registry())
        assert 'runs_total{kind="sim"} 3' in text
        assert "\ndepth 7" in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_parseable_shape(self):
        """Every non-comment line must be `name{labels} value` or `name value`."""
        import re
        pattern = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$')
        for line in prometheus_text(self._registry()).strip().splitlines():
            if not line.startswith("#"):
                assert pattern.match(line), line

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(label='quote"back\\slash\nnl')
        text = prometheus_text(registry)
        assert r'\"' in text and r'\\' in text and r'\n' in text
        assert "\nnl" not in text  # the newline itself must not survive

    def test_label_value_exact_escaped_form(self):
        # The exposition spec: label values escape backslash, double
        # quote, and line feed — in that order, so escapes don't double.
        # The value here is shaped like the hostile request paths the
        # service's route labels are derived from.
        registry = MetricsRegistry()
        registry.counter("svc_requests_total").inc(
            route='/v1/"x"\\path\nend')
        text = prometheus_text(registry)
        assert r'route="/v1/\"x\"\\path\nend"' in text

    def test_help_escaping(self):
        # HELP text escapes exactly backslash and line feed (no quote
        # escaping there, unlike label values).  Unescaped, the newline
        # would split the line and corrupt every sample below it.
        registry = MetricsRegistry()
        registry.counter("h_total", 'line one\nline "two" \\ back').inc()
        text = prometheus_text(registry)
        assert r'# HELP h_total line one\nline "two" \\ back' in text
        for line in text.splitlines():
            assert line.startswith(("#", "h_total")), line

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_metrics_file(self, tmp_path):
        path = tmp_path / "m.prom"
        write_metrics(self._registry(), str(path))
        assert "runs_total" in path.read_text()


class TestRunSummary:
    def test_mentions_every_series(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(1, zone="x")
        text = run_summary(registry)
        assert "a_total" in text and "b [zone=x]" in text

    def test_empty_registry(self):
        assert "(no metrics recorded)" in run_summary(MetricsRegistry())


class TestExemplars:
    def _histogram_with_exemplar(self):
        registry = MetricsRegistry()
        hist = registry.histogram("req_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05, route="/a")  # no exemplar
        hist.observe(0.5, exemplar={"trace_id": "abc123"}, route="/a")
        return registry

    def test_bucket_line_carries_exemplar(self):
        text = prometheus_text(self._histogram_with_exemplar(),
                               exemplars=True)
        lines = [ln for ln in text.splitlines() if " # {" in ln]
        assert len(lines) == 1
        (line,) = lines
        assert line.startswith('req_seconds_bucket{route="/a",le="1"}')
        assert 'trace_id="abc123"' in line
        assert line.split(" # ")[1].startswith('{trace_id="abc123"} 0.5 ')

    def test_exemplars_off_by_default(self):
        text = prometheus_text(self._histogram_with_exemplar())
        assert " # {" not in text

    def test_latest_exemplar_wins_per_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.2, exemplar={"trace_id": "old"})
        hist.observe(0.3, exemplar={"trace_id": "new"})
        text = prometheus_text(registry, exemplars=True)
        assert 'trace_id="new"' in text and 'trace_id="old"' not in text

    def test_dump_and_merge_ignore_exemplars(self):
        source = self._histogram_with_exemplar()
        target = MetricsRegistry()
        target.merge(source.dump())
        # merged counts line up; exemplars (latest-wins, unmergeable)
        # stay local to the process that recorded them
        assert prometheus_text(target) == prometheus_text(source)
        assert " # {" not in prometheus_text(target, exemplars=True)


class TestPerfettoTrace:
    def _records(self):
        tracer = Tracer(keep_records=True)
        with tracer.span("batch:run", jobs=2):
            tracer.event("tick")
        records = [dict(r) for r in tracer.records]
        records[0]["attrs"]["worker_pid"] = 4242  # the event, worker-side
        return records

    def test_spans_become_complete_events(self):
        doc = perfetto_trace(self._records())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (span,) = complete
        assert span["name"] == "batch:run"
        assert span["dur"] >= 0
        assert span["args"]["jobs"] == 2
        assert span["args"]["trace_id"]
        assert span["args"]["span_id"]

    def test_events_become_instants(self):
        doc = perfetto_trace(self._records())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        (instant,) = instants
        assert instant["name"] == "tick"
        assert instant["s"] == "t"

    def test_worker_pid_maps_to_process_lane(self):
        doc = perfetto_trace(self._records())
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["pid"] == 4242
        assert "worker_pid" not in instant["args"]
        names = {e["pid"]: e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert names[0] == "coordinator"
        assert names[4242] == "worker pid=4242"

    def test_timestamps_scaled_to_microseconds(self):
        doc = perfetto_trace([{"type": "span", "name": "s", "ts": 0.5,
                               "dur": 0.25, "depth": 1, "attrs": {}}])
        span = doc["traceEvents"][0]
        assert span["ts"] == 500000.0
        assert span["dur"] == 250000.0
        assert span["tid"] == 1

    def test_write_perfetto_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.perfetto.json"
        write_perfetto(self._records(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) >= 3
