"""Tests for fastest-k collection and simulate_coded (repro.coded.collector)."""

import math

import pytest

from repro.coded import (CodedCollector, MDSScheme, ReplicationScheme,
                         simulate_coded)
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.obs import MetricsRegistry, Observation, observe
from repro.obs.tracing import Tracer

PARAMS = ModelParams(tau=0.01, pi=0.001, delta=1.0)
PROFILE = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0,
                   1.0 / 5.0, 1.0 / 6.0])
LIFESPAN = 60.0


class TestFaultFree:
    def test_all_quanta_decode(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        outcome = simulate_coded(plan)
        assert outcome.completed_quanta == len(plan.quanta)
        assert outcome.completed_work == pytest.approx(plan.useful_work)

    def test_realized_waste_matches_expected_on_full_delivery(self):
        plan = MDSScheme(2, 4).plan(PROFILE, PARAMS, LIFESPAN)
        outcome = simulate_coded(plan)
        # every share arrives, so realized waste equals the plan's
        assert outcome.realized_waste_fraction == pytest.approx(
            plan.expected_waste_fraction)

    def test_completion_time_is_kth_delivery(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        outcome = simulate_coded(plan)
        for status in outcome.statuses:
            assert len(status.deliveries) == len(status.quantum.members)
            times = [t for _, t in status.deliveries]
            assert times == sorted(times)
            assert status.completion_time == pytest.approx(
                times[status.quantum.k - 1])

    def test_makespan_not_after_raw_simulation(self):
        # Decoding at the k-th of n shares can only stop the clock
        # earlier than waiting for every share.
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        outcome = simulate_coded(plan)
        assert outcome.makespan <= outcome.result.makespan + 1e-12


class TestUnderFaults:
    def test_mds_survives_one_crash_per_group(self):
        # MDS(2,3): any single member of each triple may die and the
        # quantum still decodes from the surviving pair.
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        victim = plan.quanta[0].members[0]
        outcome = simulate_coded(plan, f"crash:{victim}@0.01")
        assert outcome.completed_quanta == len(plan.quanta)
        assert outcome.completed_work == pytest.approx(plan.useful_work)

    def test_quorum_loss_fails_the_quantum(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        q = plan.quanta[0]
        spec = ",".join(f"crash:{c}@0.01" for c in q.members[:2])
        outcome = simulate_coded(plan, spec)
        status = outcome.statuses[q.index]
        assert not status.completed
        assert math.isnan(status.completion_time)
        assert outcome.completed_quanta == len(plan.quanta) - 1

    def test_replication_first_delivery_wins(self):
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        outcome = simulate_coded(plan)
        for status in outcome.statuses:
            # quorum 1: the decode instant is the *earliest* delivery
            assert status.completion_time == pytest.approx(
                min(t for _, t in status.deliveries))

    def test_waste_accounting_conserves_delivered_mass(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        outcome = simulate_coded(plan, "crash~0.02,loss:0.05,seed:7")
        assert outcome.delivered_share_work <= plan.sent_work + 1e-9
        assert outcome.waste_work == pytest.approx(
            outcome.delivered_share_work - outcome.completed_work)
        assert 0.0 <= outcome.realized_waste_fraction <= 1.0

    def test_replay_is_deterministic(self):
        plan = MDSScheme(3, 4).plan(PROFILE, PARAMS, LIFESPAN)
        spec = "crash~0.03,outage~0.01+4,loss:0.05,seed:23"
        a = simulate_coded(plan, spec)
        b = simulate_coded(plan, spec)
        assert a.completed_work == b.completed_work
        assert [s.deliveries for s in a.statuses] == \
               [s.deliveries for s in b.statuses]


class TestCollector:
    def test_collect_ignores_unassigned_workers(self):
        # A worker whose base share was clipped to zero has no quantum;
        # the collector must not blow up on its record.
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        result = simulate_coded(plan).result
        statuses = CodedCollector(plan).collect(result)
        assert len(statuses) == len(plan.quanta)


class TestObservability:
    def test_metrics_reach_ambient_registry(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            simulate_coded(plan)
        names = {m["name"] for m in registry.dump()["metrics"]}
        assert "sim_coded_quanta_total" in names
        assert "sim_coded_quanta_completed_total" in names
        assert "sim_coded_shares_delivered_total" in names
        assert "sim_coded_work_completed_total" in names

    def test_waste_counter_emitted_under_redundancy(self):
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            simulate_coded(plan)
        names = {m["name"] for m in registry.dump()["metrics"]}
        assert "sim_coded_waste_work_total" in names

    def test_span_records_scheme_attributes(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        tracer = Tracer()
        with observe(Observation(tracer=tracer)):
            simulate_coded(plan)
        spans = tracer.records_named("sim.coded")
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["scheme"] == "mds-2/3"
        assert attrs["completed_quanta"] == len(plan.quanta)
