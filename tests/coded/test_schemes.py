"""Tests for proactive-redundancy schemes (repro.coded.schemes)."""

import numpy as np
import pytest

from repro.coded.schemes import (DEFAULT_MARGIN, MDSScheme, ReplicationScheme,
                                 parse_scheme, scheme_from_spec)
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import CodedSchemeError
from repro.protocols.fifo import fifo_allocation

PARAMS = ModelParams(tau=0.01, pi=0.001, delta=1.0)
PROFILE = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0,
                   1.0 / 5.0, 1.0 / 6.0])
LIFESPAN = 60.0


class TestReplicationPlan:
    def test_groups_are_speed_sorted_and_disjoint(self):
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        rho = PROFILE.rho
        seen = set()
        for q in plan.quanta:
            assert len(q.members) == 2
            # members are contiguous in the speed order: the whole group
            # is at least as fast as every later group's members
            assert not seen & set(q.members)
            seen |= set(q.members)
        # fastest (lowest rho) workers land in the first quantum
        first = plan.quanta[0].members
        fastest = sorted(range(PROFILE.n), key=lambda c: rho[c])[:2]
        assert sorted(first) == sorted(fastest)

    def test_share_is_group_min_of_base_plan(self):
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        base = fifo_allocation(PROFILE, PARAMS, DEFAULT_MARGIN * LIFESPAN)
        for q in plan.quanta:
            assert q.share == pytest.approx(min(base.w[c] for c in q.members))

    def test_allocation_never_exceeds_base(self):
        # min-of-group clipping only shrinks quanta: feasibility holds.
        plan = ReplicationScheme(3).plan(PROFILE, PARAMS, LIFESPAN)
        base = fifo_allocation(PROFILE, PARAMS, DEFAULT_MARGIN * LIFESPAN)
        assert np.all(plan.allocation.w <= base.w + 1e-12)

    def test_waste_fraction_replication_r(self):
        # Full groups: waste is exactly (r-1)/r.
        for r in (2, 3):
            plan = ReplicationScheme(r).plan(PROFILE, PARAMS, LIFESPAN)
            assert plan.expected_waste_fraction == pytest.approx((r - 1) / r)

    def test_quantum_work_is_single_share(self):
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        for q in plan.quanta:
            assert q.k == 1
            assert q.work == pytest.approx(q.share)
            assert q.sent_work == pytest.approx(2 * q.share)

    def test_quantum_of_maps_members_back(self):
        plan = ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN)
        for q in plan.quanta:
            for c in q.members:
                assert plan.quantum_of[c] == q.index

    def test_replication_1_is_wasteless(self):
        plan = ReplicationScheme(1).plan(PROFILE, PARAMS, LIFESPAN)
        assert plan.expected_waste_fraction == pytest.approx(0.0)
        assert len(plan.quanta) == PROFILE.n


class TestMDSPlan:
    def test_waste_fraction_mds(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        assert plan.expected_waste_fraction == pytest.approx(1.0 / 3.0)

    def test_quantum_work_is_k_shares(self):
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        for q in plan.quanta:
            assert q.work == pytest.approx(q.k * q.share)

    def test_trailing_group_clips_quorum(self):
        # 6 workers in groups of 4: the trailing pair gets k_eff = 2.
        plan = MDSScheme(3, 4).plan(PROFILE, PARAMS, LIFESPAN)
        sizes = sorted(len(q.members) for q in plan.quanta)
        assert sizes == [2, 4]
        trailing = next(q for q in plan.quanta if len(q.members) == 2)
        assert trailing.k == 2

    def test_expected_latency_tracks_group_speed(self):
        # Groups of slower workers carry strictly later k-th order stats
        # per unit share; with shares also sized to speed the first
        # (fastest) group must never be estimated slower than the last.
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        assert len(plan.expected_latency) == len(plan.quanta)
        assert all(t > 0.0 for t in plan.expected_latency)

    def test_as_dict_is_json_shaped(self):
        import json
        plan = MDSScheme(2, 3).plan(PROFILE, PARAMS, LIFESPAN)
        d = plan.as_dict()
        json.dumps(d)  # must not raise
        assert d["kind"] == "mds"
        assert d["scheme"] == "mds-2/3"
        assert d["expected_waste_fraction"] == pytest.approx(1.0 / 3.0)
        assert len(d["quanta"]) == len(plan.quanta)


class TestPlanValidation:
    def test_margin_out_of_range_rejected(self):
        for margin in (0.0, -0.5, 1.5):
            with pytest.raises(CodedSchemeError):
                ReplicationScheme(2).plan(PROFILE, PARAMS, LIFESPAN,
                                          margin=margin)

    def test_too_few_workers_rejected(self):
        with pytest.raises(CodedSchemeError):
            MDSScheme(3, 8).plan(PROFILE, PARAMS, LIFESPAN)

    def test_bad_scheme_parameters_rejected(self):
        with pytest.raises(CodedSchemeError):
            ReplicationScheme(0)
        with pytest.raises(CodedSchemeError):
            MDSScheme(4, 3)  # k > n
        with pytest.raises(CodedSchemeError):
            MDSScheme(0, 3)


class TestParseScheme:
    def test_replication_grammar(self):
        scheme = parse_scheme("replication:3")
        assert isinstance(scheme, ReplicationScheme)
        assert scheme.r == 3

    def test_mds_grammar(self):
        scheme = parse_scheme(" MDS:2/4 ")
        assert isinstance(scheme, MDSScheme)
        assert (scheme.k, scheme.shares) == (2, 4)

    @pytest.mark.parametrize("bad", [
        "bogus", "replication:", "replication:x", "mds:2",
        "mds:a/b", "parity:1", "mds:4/3",
    ])
    def test_malformed_scheme_raises(self, bad):
        with pytest.raises(CodedSchemeError):
            parse_scheme(bad)

    def test_scheme_from_spec_tuples(self):
        assert scheme_from_spec(("replication", 2)) == ReplicationScheme(2)
        assert scheme_from_spec(("mds", 2, 3)) == MDSScheme(2, 3)
        assert scheme_from_spec("replication:2") == ReplicationScheme(2)
        scheme = MDSScheme(2, 3)
        assert scheme_from_spec(scheme) is scheme

    @pytest.mark.parametrize("bad", [42, ("mds", 2), ("replication", 1, 2),
                                     ("parity", 3)])
    def test_scheme_from_spec_rejects_junk(self, bad):
        with pytest.raises(CodedSchemeError):
            scheme_from_spec(bad)
