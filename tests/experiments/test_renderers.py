"""Unit tests for the table and bar-chart renderers."""

import numpy as np
import pytest

from repro.experiments.barchart import render_profile_bars, render_snapshot_strip
from repro.experiments.tables import format_cell, render_table


class TestFormatCell:
    def test_float_six_sig_figs(self):
        assert format_cell(0.123456789) == "0.123457"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_int(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["n", "value"], [(1, 0.5), (100, 0.25)])
        lines = text.split("\n")
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_title_underlined(self):
        text = render_table(["a"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_ragged_rows_padded(self):
        text = render_table(["a", "b"], [(1,), (2, 3)])
        assert "2" in text and "3" in text


class TestRenderProfileBars:
    def test_full_height_for_max(self):
        text = render_profile_bars([1.0, 0.5], height=4)
        first_row = text.split("\n")[0]
        assert first_row[0] == "█"       # rho=1 bar reaches the top
        assert first_row[2] == " "       # rho=0.5 bar is one level short

    def test_halving_drops_one_level(self):
        text = render_profile_bars([1.0, 0.5, 0.25], height=4)
        rows = text.split("\n")[:4]
        heights = [sum(1 for row in rows if row[2 * i] == "█") for i in range(3)]
        assert heights == [4, 3, 2]

    def test_labels_appended(self):
        text = render_profile_bars([1.0], label="round 3")
        assert text.strip().endswith("round 3")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_profile_bars([0.0, 1.0])


class TestRenderSnapshotStrip:
    def test_wraps_rows(self):
        profiles = np.tile([1.0, 0.5], (7, 1))
        text = render_snapshot_strip(profiles, per_row=3)
        # 7 snapshots at 3 per row => 3 groups.
        assert text.count("round 0") == 1
        assert "round 6" in text

    def test_common_scale_across_snapshots(self):
        profiles = np.array([[1.0, 1.0], [0.5, 0.5]])
        text = render_snapshot_strip(profiles, height=4, per_row=2)
        top_row = text.split("\n")[0]
        # Only the first (rho=1) snapshot reaches the top row.
        assert "█" in top_row[:4]
        assert "█" not in top_row[4:]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_snapshot_strip(np.ones(4))
