"""Tests for the stream-replay experiment (the ISSUE acceptance gate)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import run_stream_replay
from repro.batch import run_batch

_SMALL = dict(drift_factors=(1.0, 2.0), windows=6, drift_window=2,
              forget=0.25, seed=11)


class TestAcceptance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_stream_replay()

    def test_calibrated_mape_beats_baseline_under_drift(self, result):
        for factor, mape, baseline, *_ in result.rows:
            if factor > 1.0:
                assert mape < baseline

    def test_refit_allocation_within_10pct_of_oracle(self, result):
        for row in result.rows:
            calibrated_pct = row[3]
            assert calibrated_pct >= 90.0

    def test_declared_plan_collapses_under_drift(self, result):
        by_factor = {row[0]: row for row in result.rows}
        assert by_factor[3.0][4] < by_factor[3.0][3]

    def test_digest_column_present(self, result):
        for row in result.rows:
            digest = row[5]
            assert len(digest) == 12
            assert int(digest, 16) >= 0


class TestShardedDeterminism:
    def test_jobs2_rows_bit_identical_to_jobs1(self):
        kwargs = {"stream-replay": dict(_SMALL)}
        seq = run_batch(["stream-replay"], kwargs_by_id=kwargs, jobs=1)
        par = run_batch(["stream-replay"], kwargs_by_id=kwargs, jobs=2)
        assert seq.results[0].rows == par.results[0].rows

    def test_runs_as_one_shard_per_factor(self):
        kwargs = {"stream-replay": dict(_SMALL)}
        report = run_batch(["stream-replay"], kwargs_by_id=kwargs, jobs=2)
        item, = report.items
        assert item.error is None
        assert item.shards == len(_SMALL["drift_factors"])

    def test_same_seed_same_rows(self):
        assert run_stream_replay(**_SMALL).rows == \
            run_stream_replay(**_SMALL).rows


class TestValidation:
    def test_too_few_windows_rejected(self):
        with pytest.raises(ExperimentError, match="windows"):
            run_stream_replay(windows=3, drift_window=2)

    def test_bad_factor_rejected(self):
        with pytest.raises(ExperimentError, match="drift factor"):
            run_stream_replay(drift_factors=(0.0,))

    def test_bad_drift_worker_rejected(self):
        with pytest.raises(ExperimentError, match="drift worker"):
            run_stream_replay(drift_worker=17)
