"""Reproduction tests: the Theorem-1 protocol-optimality ablation."""

import pytest

from repro.experiments import run_protocol_optimality


class TestProtocolOptimality:
    @pytest.fixture(scope="class")
    def result(self):
        return run_protocol_optimality(taus=(1e-6, 1e-2, 5e-2), seed=4)

    def test_no_protocol_beats_fifo(self, result):
        assert result.metadata["max_violation"] <= 1e-9
        for row in result.rows:
            assert row[-1] == "no"

    def test_fifo_matches_analytic(self, result):
        for row in result.rows:
            assert row[1] == pytest.approx(row[2], rel=1e-6)

    def test_fifo_premium_grows_with_tau(self, result):
        premiums = [row[4] for row in result.rows]
        assert premiums == sorted(premiums)
        assert premiums[-1] > 1.0

    def test_order_spread_negligible(self, result):
        for row in result.rows:
            assert float(row[5]) < 1e-9
