"""Reproduction tests: Tables 1–4 experiments against the paper."""

import pytest

from repro.experiments import (
    PAPER_TABLE3_VALUES,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)


class TestTable1:
    def test_parameter_rows(self):
        result = run_table1()
        assert len(result.rows) == 3
        values = {row[1]: row[2] for row in result.rows}
        assert values["τ"] == 1e-6
        assert values["π"] == 1e-5
        assert values["δ"] == 1.0


class TestTable2:
    def test_A_matches_paper(self):
        result = run_table2()
        assert result.metadata["A"] == pytest.approx(1.1e-5)

    def test_B_follows_definition_not_typo(self):
        # B = 1 + (1+δ)π = 1.00002, not the paper's printed 1.000011.
        result = run_table2()
        assert result.metadata["B"] == pytest.approx(1.00002)

    def test_discrepancies_flagged(self):
        result = run_table2()
        assert any("discrepanc" in n or "appears to" in n for n in result.notes)


class TestTable3:
    def test_measured_matches_paper_within_rounding(self):
        result = run_table3()
        for (cluster, n), paper_value in PAPER_TABLE3_VALUES.items():
            measured = result.metadata["measured"][(cluster, n)]
            assert measured == pytest.approx(paper_value, abs=7e-3), (cluster, n)

    def test_ratio_trend(self):
        result = run_table3()
        ratios = result.metadata["ratios"]
        assert ratios[8] < ratios[16] < ratios[32]
        assert ratios[32] > 4.0

    def test_rows_cover_all_sizes(self):
        result = run_table3(sizes=(4, 8))
        assert [row[0] for row in result.rows] == [4, 8]


class TestTable4:
    def test_shape_matches_theorem3(self):
        result = run_table4()
        ratios = result.metadata["ratios"]
        assert all(r > 1.0 for r in ratios)
        assert list(ratios) == sorted(ratios)

    def test_best_upgrade_is_fastest(self):
        assert run_table4().metadata["best_index"] == 3

    def test_paper_values_shown_side_by_side(self):
        result = run_table4()
        assert result.rows[3][3] == 1.159  # the paper's printed number

    def test_measured_values(self):
        result = run_table4()
        assert result.metadata["ratios"] == pytest.approx(
            (1.0067, 1.0286, 1.0692, 1.1333), abs=2e-4)
