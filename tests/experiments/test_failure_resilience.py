"""Tests for the failure-resilience ablation experiment."""

import pytest

from repro.experiments import run_failure_resilience


class TestFailureResilience:
    @pytest.fixture(scope="class")
    def result(self):
        return run_failure_resilience()

    def test_first_finisher_crash_forfeits_round(self, result):
        assert result.metadata["strict_salvage_pct"][0] == 0.0

    def test_strict_salvage_grows_with_finishing_position(self, result):
        salvages = result.metadata["strict_salvage_pct"]
        assert salvages == sorted(salvages)

    def test_skip_always_at_least_strict(self, result):
        for row in result.rows:
            assert row[4] >= row[3]

    def test_last_finisher_strict_equals_skip(self, result):
        # Nothing is queued behind the last finisher: the contract costs 0.
        last = result.rows[-1]
        assert last[3] == pytest.approx(last[4])

    def test_skip_salvage_is_total_minus_quantum(self, result):
        # Every skip row must equal 100% minus the dead computer's share.
        skip_pcts = [row[4] for row in result.rows]
        assert sum(100.0 - pct for pct in skip_pcts) == pytest.approx(100.0, abs=0.2)
