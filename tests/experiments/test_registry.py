"""Unit tests for the experiment registry and result objects."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.base import register


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = list_experiments()
        for required in ("table1", "table2", "table3", "table4", "fig3", "fig4",
                         "sec4-example", "variance-trials", "variance-threshold",
                         "protocol-optimality"):
            assert required in ids

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(ExperimentError, match="table3"):
            get_experiment("nonexistent")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError):
            @register("table3")
            def clash():  # pragma: no cover
                pass

    def test_run_experiment_dispatches(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "table1"


class TestExperimentResult:
    def test_render_contains_title_and_rows(self):
        result = ExperimentResult(
            experiment_id="demo", title="A demo", headers=("a", "b"),
            rows=[(1, 2.5)], notes=("something to know",))
        text = result.render()
        assert "demo: A demo" in text
        assert "2.5" in text
        assert "note: something to know" in text

    def test_render_includes_figure_text(self):
        result = ExperimentResult(
            experiment_id="demo", title="t", headers=("a",), rows=[(1,)],
            metadata={"figure_text": "ASCII-ART"})
        assert "ASCII-ART" in result.render()
