"""Unit tests for repro.experiments.export and the moment ablation."""

import json
from enum import Enum
from fractions import Fraction

import numpy as np
import pytest

from repro.core.profile import Profile
from repro.experiments import run_moment_ablation, run_table3, run_table4
from repro.experiments.base import ExperimentResult
from repro.experiments.export import jsonable, result_to_csv, result_to_json


class TestJsonable:
    def test_passthrough_scalars(self):
        assert jsonable(5) == 5
        assert jsonable("x") == "x"
        assert jsonable(True) is True
        assert jsonable(None) is None

    def test_nonfinite_floats_become_sentinels(self):
        # Strict-JSON-safe, and restored by repro.io.result_from_dict.
        assert jsonable(float("nan")) == {"__nonfinite__": "nan"}
        assert jsonable(float("inf")) == {"__nonfinite__": "inf"}
        assert jsonable(float("-inf")) == {"__nonfinite__": "-inf"}

    def test_numpy_types(self):
        assert jsonable(np.float64(0.5)) == 0.5
        assert jsonable(np.int32(7)) == 7
        assert jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_fraction(self):
        assert jsonable(Fraction(1, 4)) == 0.25

    def test_enum(self):
        class Color(Enum):
            RED = "red"
        assert jsonable(Color.RED) == "red"

    def test_profile(self):
        assert jsonable(Profile([1.0, 0.5])) == [1.0, 0.5]

    def test_nested_structures(self):
        data = {"a": (1, np.float64(2.0)), "b": {Fraction(1, 2)}}
        out = jsonable(data)
        assert out["a"] == [1, 2.0]
        assert out["b"] == [0.5]

    def test_fallback_to_str(self):
        class Weird:
            def __str__(self):
                return "weird"
        assert jsonable(Weird()) == "weird"


class TestResultToJson:
    def test_roundtrips_through_json(self):
        result = run_table3()
        payload = json.loads(result_to_json(result))
        assert payload["experiment_id"] == "table3"
        assert payload["rows"][0][0] == 8
        assert "metadata" in payload

    def test_handles_rich_metadata(self):
        # variance-trials metadata holds dataclasses with ndarrays.
        from repro.experiments import run_variance_trials
        result = run_variance_trials(sizes=(4,), trials_per_size=20, seed=1)
        payload = json.loads(result_to_json(result))
        assert isinstance(payload["metadata"]["batches"], list)


class TestResultToCsv:
    def test_header_and_rows(self):
        result = run_table4()
        text = result_to_csv(result)
        lines = text.strip().split("\n")
        assert lines[0].startswith("i,")
        assert len(lines) == 5  # header + 4 rows

    def test_quotes_cells_with_commas(self):
        result = ExperimentResult(
            experiment_id="demo", title="t", headers=("a",),
            rows=[("x, y",)])
        assert '"x, y"' in result_to_csv(result)


class TestMomentAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_moment_ablation(sizes=(4, 16), trials_per_size=150, seed=5)

    def test_harmonic_mean_is_best(self, result):
        assert result.metadata["best"] == "harmonic-mean"
        assert result.metadata["mean_scores"]["harmonic-mean"] > 0.97

    def test_ordering_of_predictors(self, result):
        scores = result.metadata["mean_scores"]
        assert scores["harmonic-mean"] > scores["geometric-mean"] > scores["variance"]

    def test_rows_have_all_predictors(self, result):
        assert len(result.rows[0]) == 1 + len(result.metadata["mean_scores"])
