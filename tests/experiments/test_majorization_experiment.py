"""Tests for the majorization extension experiment."""

import pytest

from repro.experiments import run_experiment


class TestMajorizationStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("majorization", sizes=(2, 4, 8),
                              trials_per_size=200, seed=7)

    def test_never_wrong_when_comparable(self, result):
        assert result.metadata["comparable_wrong"] == 0

    def test_all_variance_errors_are_incomparable(self, result):
        assert result.metadata["bad_but_comparable"] == 0

    def test_n2_always_comparable(self, result):
        # Two-element equal-sum vectors are always majorization-comparable.
        row_n2 = result.rows[0]
        assert row_n2[0] == 2
        assert row_n2[2] == 100.0

    def test_coverage_decreases_with_n(self, result):
        coverages = [row[2] for row in result.rows]
        assert coverages[0] >= coverages[-1]
