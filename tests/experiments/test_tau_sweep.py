"""Tests for the tau-sweep extension experiment and the series renderer."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.barchart import render_series


class TestTauSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("tau-sweep", points=8)

    def test_work_rate_monotone_decreasing(self, result):
        rates = [row[2] for row in result.rows]
        assert rates == sorted(rates, reverse=True)

    def test_premium_nondecreasing(self, result):
        premiums = [row[4] for row in result.rows if row[4] != "saturated"]
        assert premiums == sorted(premiums)

    def test_chart_embedded(self, result):
        assert "log10(tau)" in result.metadata["figure_text"]
        assert "●" in result.metadata["figure_text"]


class TestRenderSeries:
    def test_axes_annotated(self):
        text = render_series([0, 1, 2], [10.0, 5.0, 0.0],
                             x_label="t", y_label="v")
        assert "10" in text and "0" in text
        assert "t  (y = v)" in text

    def test_monotone_series_descends_visually(self):
        text = render_series([0, 1], [1.0, 0.0], height=4, width=10)
        lines = text.split("\n")
        assert "●" in lines[0]        # max at top-left
        assert "●" in lines[3]        # min at bottom-right

    def test_constant_series_handled(self):
        text = render_series([0, 1, 2], [5.0, 5.0, 5.0])
        assert "●" in text

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            render_series([1], [1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [1, 2, 3])
