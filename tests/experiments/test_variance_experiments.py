"""Reproduction tests: the §4.3 variance-predictor experiments."""

import numpy as np
import pytest

from repro.core.params import PAPER_TABLE1
from repro.experiments import collect_trials, run_threshold, run_variance_trials
from repro.experiments.threshold import PAPER_THETA


class TestCollectTrials:
    def test_batch_shapes(self, rng):
        batch = collect_trials(rng, 8, 50, PAPER_TABLE1)
        assert batch.n == 8
        assert batch.n_trials == 50
        assert batch.variance_gaps.shape == (50,)
        assert batch.good.dtype == bool

    def test_predictor_scores_between_0_and_1(self, rng):
        batch = collect_trials(rng, 8, 50, PAPER_TABLE1)
        for name, score in batch.predictor_scores.items():
            assert 0.0 <= score <= 1.0, name

    def test_deterministic_given_seed(self):
        a = collect_trials(np.random.default_rng(5), 8, 30, PAPER_TABLE1)
        b = collect_trials(np.random.default_rng(5), 8, 30, PAPER_TABLE1)
        assert (a.good == b.good).all()
        assert a.variance_gaps == pytest.approx(b.variance_gaps)


class TestVarianceTrialsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_variance_trials(sizes=(4, 16, 64, 256), trials_per_size=200,
                                   seed=11)

    def test_bad_pairs_exist_at_larger_sizes(self, result):
        # Theorem 5(2) does not generalise: bad pairs appear beyond n=2.
        batches = result.metadata["batches"]
        assert any(b.fraction_good < 1.0 for b in batches if b.n >= 16)

    def test_accuracy_in_paper_ballpark(self, result):
        # Paper: ≈76–77% correct overall with plateau ≈23% bad.
        overall = result.metadata["overall_good"]
        assert 0.70 <= overall <= 0.95

    def test_plateau_not_a_coin_flip(self, result):
        batches = result.metadata["batches"]
        large = [b for b in batches if b.n >= 64]
        for b in large:
            assert b.fraction_good > 0.6

    def test_bad_pairs_have_smaller_hecr_gaps(self, result):
        # The paper's observation 2.
        batches = result.metadata["batches"]
        for b in batches:
            if np.isnan(b.mean_bad_hecr_gap):
                continue
            assert b.mean_bad_hecr_gap < b.mean_good_hecr_gap

    def test_two_computer_clusters_always_good(self):
        # Theorem 5(2) is a theorem for n = 2: zero bad pairs.
        result = run_variance_trials(sizes=(2,), trials_per_size=300, seed=3)
        batch = result.metadata["batches"][0]
        assert batch.fraction_good == 1.0


class TestThresholdExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_threshold(sizes=(4, 16, 64), trials_per_size=150, seed=9)

    def test_empirical_theta_same_order_as_paper(self, result):
        theta = result.metadata["empirical_theta"]
        assert 0.0 < theta < 3 * PAPER_THETA

    def test_accuracy_increases_with_gap(self, result):
        accuracies = [row[2] for row in result.rows if row[2] != "—"]
        assert accuracies[-1] >= accuracies[0]

    def test_perfect_above_empirical_theta(self, result):
        # In-sample by construction, but worth asserting end to end.
        assert result.metadata["n_bad"] >= 0
        last_row = result.rows[-1]
        if last_row[1] > 0:  # pairs exist above the largest grid gap
            assert last_row[2] == 100.0
