"""Tests for the extension experiments (saturation, heterogeneity-gain)."""

import numpy as np
import pytest

from repro.experiments import run_heterogeneity_gain, run_saturation


class TestSaturation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_saturation(sizes=(1, 16, 256, 4096, 65536))

    def test_curve_increasing(self, result):
        curve = result.metadata["curve"]
        assert (np.diff(curve) > 0.0).all()

    def test_curve_below_ceiling(self, result):
        assert (result.metadata["curve"] < result.metadata["ceiling"]).all()

    def test_large_cluster_meaningfully_saturated(self, result):
        # At n = 65536 the share of the ceiling is substantial (>30%).
        assert result.metadata["curve"][-1] > 0.3 * result.metadata["ceiling"]

    def test_notes_mention_knees(self, result):
        text = "\n".join(result.notes)
        assert "50%" in text and "99%" in text


class TestHeterogeneityGain:
    @pytest.fixture(scope="class")
    def result(self):
        return run_heterogeneity_gain(trials=100, n_large=16, seed=2)

    def test_grid_all_above_one(self, result):
        assert (result.metadata["grid"].gain > 1.0).all()

    def test_large_n_overwhelmingly_wins(self, result):
        assert result.metadata["large_n_win_rate"] > 0.9

    def test_gains_array_shape(self, result):
        assert result.metadata["large_n_gains"].shape == (100,)

    def test_render_mentions_corollary(self, result):
        assert "Corollary 1" in result.render()
