"""Tests for the coded-resilience extension experiment."""

import pytest

from repro.batch import run_batch
from repro.errors import CodedSchemeError, ExperimentError, FaultSpecError
from repro.experiments import run_coded_resilience
from repro.experiments.coded_resilience import coded_shards

_SMALL = dict(n=6, rates=(0.0, 0.01), trials=2, lifespan=40.0, seed=5)


class TestCodedResilience:
    @pytest.fixture(scope="class")
    def result(self):
        return run_coded_resilience(**_SMALL)

    def test_grid_shape(self, result):
        policies = result.metadata["policies"]
        assert policies == ["recovery", "replication-2", "mds-3/4"]
        assert len(result.rows) == len(_SMALL["rates"]) * len(policies)
        rates = sorted({row[0] for row in result.rows})
        assert rates == [0.0, 0.01]

    def test_fault_free_coded_completes_everything(self, result):
        for row in result.rows:
            rate, policy, completed_pct = row[0], row[1], row[2]
            if rate == 0.0:
                assert completed_pct == pytest.approx(100.0, abs=0.1)

    def test_coded_waste_matches_scheme_structure(self, result):
        # The realized waste of a fault-free coded run is the scheme's
        # structural redundancy; recovery at rate 0 wastes ~nothing.
        at_zero = {row[1]: row[5] for row in result.rows if row[0] == 0.0}
        assert at_zero["recovery"] == pytest.approx(0.0, abs=0.5)
        assert at_zero["replication-2"] == pytest.approx(50.0, abs=1.0)
        # 6 workers under mds-3/4: one full group (25% waste) plus a
        # clipped pair (0% waste) — strictly between.
        assert 0.0 < at_zero["mds-3/4"] < 50.0

    def test_p99_censored_at_lifespan(self, result):
        for row in result.rows:
            assert 0.0 < row[4] <= _SMALL["lifespan"] + 1e-9

    def test_scheme_kwarg_restricts_the_coded_side(self):
        result = run_coded_resilience(scheme="replication:3", n=6,
                                      rates=(0.0,), trials=1, seed=5)
        assert result.metadata["policies"] == ["recovery", "replication-3"]

    def test_faults_kwarg_replaces_base_scenario(self):
        result = run_coded_resilience(faults="loss:0.0,seed:9", n=4,
                                      rates=(0.0,), trials=1, seed=5)
        # lossless base at rate 0: everything completes for all policies
        for row in result.rows:
            assert row[2] == pytest.approx(100.0, abs=0.1)


class TestValidation:
    def test_rejects_bad_trials_and_n(self):
        with pytest.raises(ExperimentError):
            coded_shards(tau=0.01, pi=0.001, delta=1.0, lifespan=60.0, n=8,
                         rates=(0.0,), trials=0, margin=0.8, faults=None,
                         scheme=None, seed=1)
        with pytest.raises(ExperimentError):
            coded_shards(tau=0.01, pi=0.001, delta=1.0, lifespan=60.0, n=1,
                         rates=(0.0,), trials=2, margin=0.8, faults=None,
                         scheme=None, seed=1)
        with pytest.raises(ExperimentError):
            coded_shards(tau=0.01, pi=0.001, delta=1.0, lifespan=60.0, n=8,
                         rates=(), trials=2, margin=0.8, faults=None,
                         scheme=None, seed=1)

    def test_rejects_malformed_faults_and_scheme_up_front(self):
        with pytest.raises(FaultSpecError):
            run_coded_resilience(faults="bogus:1", rates=(0.0,), trials=1)
        with pytest.raises(CodedSchemeError):
            run_coded_resilience(scheme="parity:1", rates=(0.0,), trials=1)


class TestShardedDeterminism:
    def test_jobs2_rows_bit_identical_to_jobs1(self):
        kwargs = {"coded-resilience": dict(_SMALL)}
        seq = run_batch(["coded-resilience"], kwargs_by_id=kwargs, jobs=1)
        par = run_batch(["coded-resilience"], kwargs_by_id=kwargs, jobs=2)
        assert seq.results[0].rows == par.results[0].rows

    def test_runs_as_one_shard_per_rate(self):
        kwargs = {"coded-resilience": dict(_SMALL)}
        report = run_batch(["coded-resilience"], kwargs_by_id=kwargs, jobs=2)
        item, = report.items
        assert item.error is None
        assert item.shards == len(_SMALL["rates"])

    def test_seed_replays_and_changes_the_grid(self):
        a = run_coded_resilience(**_SMALL)
        b = run_coded_resilience(**_SMALL)
        c = run_coded_resilience(**{**_SMALL, "seed": 6, "rates": (0.01,)})
        assert a.rows == b.rows
        assert [r for r in a.rows if r[0] == 0.01] != c.rows
