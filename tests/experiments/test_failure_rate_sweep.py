"""Tests for the failure-rate-sweep extension experiment."""

import pytest

from repro.experiments import run_failure_rate_sweep


class TestFailureRateSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_failure_rate_sweep(rates=(0.0, 0.005, 0.02), n_samples=60,
                                      seed=3)

    def test_zero_rate_full_work(self, result):
        row0 = result.rows[0]
        assert row0[1] == 100.0 and row0[3] == 100.0
        assert row0[2] == 0.0 and row0[4] == 0.0

    def test_means_decrease_with_rate(self, result):
        strict = [row[1] for row in result.rows]
        skip = [row[3] for row in result.rows]
        assert strict == sorted(strict, reverse=True)
        assert skip == sorted(skip, reverse=True)

    def test_skip_dominates_strict_everywhere(self, result):
        for row in result.rows:
            assert row[3] >= row[1]

    def test_strict_total_loss_grows(self, result):
        losses = [row[2] for row in result.rows]
        assert losses == sorted(losses)
        assert losses[-1] > 0.0

    def test_chart_present(self, result):
        assert "failure rate" in result.metadata["figure_text"]
