"""Reproduction tests: Figures 3–4 and the §4 example."""

import pytest

from repro.experiments import run_fig3, run_fig4, run_minorization_demo


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3()

    def test_sixteen_rounds(self, result):
        assert len(result.rows) == 16

    def test_chosen_sequence(self, result):
        assert result.metadata["chosen_sequence"] == (
            3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0)

    def test_ends_at_one_sixteenth(self, result):
        assert result.metadata["final_profile"] == pytest.approx([1 / 16] * 4)

    def test_round1_is_tie_break(self, result):
        assert "tie-break" in result.rows[0][2]

    def test_rounds_2_to_4_condition1(self, result):
        for row in result.rows[1:4]:
            assert "condition-1" in row[2]

    def test_figure_text_present(self, result):
        assert "█" in result.metadata["figure_text"]


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4()

    def test_phase2_rounds(self, result):
        assert len(result.rows) == 8

    def test_slowest_first_cycling(self, result):
        # After ⟨1/16,…⟩: rounds 17-20 re-walk C4..C1, 21-24 again.
        assert result.metadata["chosen_sequence"] == (3, 2, 1, 0, 3, 2, 1, 0)

    def test_all_rounds_condition2_or_tiebreak(self, result):
        for row in result.rows:
            assert ("condition-2" in row[2]) or ("tie-break" in row[2])

    def test_final_profile_after_two_more_sweeps(self, result):
        # Eight phase-2 rounds = two full slowest-first sweeps: 1/16 → 1/64.
        assert result.metadata["final_profile"] == pytest.approx([1 / 64] * 4)


class TestSec4Example:
    def test_p1_wins_on_x(self):
        result = run_minorization_demo()
        assert result.metadata["x1"] > result.metadata["x2"]

    def test_x_values_match_paper_magnitudes(self):
        # X(⟨0.99, 0.02⟩) ≈ 51, X(⟨0.5, 0.5⟩) ≈ 4.
        result = run_minorization_demo()
        assert result.metadata["x1"] == pytest.approx(51.0, abs=0.5)
        assert result.metadata["x2"] == pytest.approx(4.0, abs=0.05)

    def test_report_mentions_mean_misprediction(self):
        text = run_minorization_demo().render()
        assert "mispredict" in text
