"""End-to-end determinism of fault-mode experiments under parallelism.

ISSUE acceptance: a seeded stochastic fault scenario must replay
bit-identically whether the batch runs with ``--jobs 1`` or
``--jobs 2``, and the sharded failure-rate sweep must merge to the
same rows regardless of how its shards land on workers.
"""

from repro.batch import run_batch

_FAULT_SPEC = "crash~0.02,outage~0.01+4,slow~0.01+10x2,loss:0.05,seed:7"
_SWEEP_KWARGS = {"n_samples": 60, "seed": 11,
                 "rates": (0.0, 0.01, 0.05)}


def _rows(report, experiment_id):
    for result in report.results:
        if result.experiment_id == experiment_id:
            return result.rows
    raise AssertionError(
        f"{experiment_id} missing; failures={[(i.experiment_id, i.error) for i in report.failures]}")


class TestFailureResilienceFaultMode:
    def test_jobs2_rows_bit_identical_to_jobs1(self):
        kwargs = {"failure-resilience": {"faults": _FAULT_SPEC}}
        seq = run_batch(["failure-resilience"], kwargs_by_id=kwargs, jobs=1)
        par = run_batch(["failure-resilience"], kwargs_by_id=kwargs, jobs=2)
        assert _rows(seq, "failure-resilience") == \
            _rows(par, "failure-resilience")

    def test_recovery_telemetry_is_replayed_identically(self):
        kwargs = {"failure-resilience": {"faults": _FAULT_SPEC}}
        a = run_batch(["failure-resilience"], kwargs_by_id=kwargs, jobs=1)
        b = run_batch(["failure-resilience"], kwargs_by_id=kwargs, jobs=2)
        meta_a = a.results[0].metadata
        meta_b = b.results[0].metadata
        assert meta_a["recovery"] == meta_b["recovery"]
        assert meta_a["faults_injected"] == meta_b["faults_injected"]

    def test_distinct_seeds_draw_distinct_scenarios(self):
        base = "crash~0.05,outage~0.03+4,loss:0.1"
        runs = {}
        for seed in (1, 2):
            kwargs = {"failure-resilience": {
                "faults": f"{base},seed:{seed}"}}
            report = run_batch(["failure-resilience"],
                               kwargs_by_id=kwargs, jobs=1)
            runs[seed] = report.results[0].metadata["faults_injected"]
        # Both materialize *something* (rates are generous); the count
        # need not differ, but determinism per seed must hold.
        assert all(count >= 1 for count in runs.values())


class TestShardedSweepDeterminism:
    def test_jobs2_rows_bit_identical_to_jobs1(self):
        kwargs = {"failure-rate-sweep": dict(_SWEEP_KWARGS)}
        seq = run_batch(["failure-rate-sweep"], kwargs_by_id=kwargs, jobs=1)
        par = run_batch(["failure-rate-sweep"], kwargs_by_id=kwargs, jobs=2)
        assert _rows(seq, "failure-rate-sweep") == \
            _rows(par, "failure-rate-sweep")

    def test_sweep_is_sharded_under_the_pool(self):
        kwargs = {"failure-rate-sweep": dict(_SWEEP_KWARGS)}
        report = run_batch(["failure-rate-sweep"], kwargs_by_id=kwargs,
                           jobs=2)
        item, = report.items
        assert item.error is None
        assert item.shards >= 2

    def test_seed_changes_the_sweep(self):
        a = run_batch(["failure-rate-sweep"],
                      kwargs_by_id={"failure-rate-sweep":
                                    {**_SWEEP_KWARGS, "seed": 1}}, jobs=1)
        b = run_batch(["failure-rate-sweep"],
                      kwargs_by_id={"failure-rate-sweep":
                                    {**_SWEEP_KWARGS, "seed": 2}}, jobs=1)
        assert _rows(a, "failure-rate-sweep") != \
            _rows(b, "failure-rate-sweep")
