"""SpeedPhase and the promoted ``speeds:`` grammar clause."""

import pytest

from repro.errors import FaultInjectionError, FaultSpecError
from repro.faults import FaultTimeline, SpeedPhase, parse_faults


class TestSpeedPhaseModel:
    def test_speedup_factors_below_one_allowed(self):
        phase = SpeedPhase(computer=0, start=5.0, duration=10.0, factor=0.5)
        assert phase.end == 15.0

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("inf"),
                                        float("nan")])
    def test_nonpositive_factor_rejected(self, factor):
        with pytest.raises(FaultInjectionError, match="speed factor"):
            SpeedPhase(computer=0, start=0.0, duration=1.0, factor=factor)

    def test_timeline_applies_phase_speed(self):
        timeline = FaultTimeline.compile(
            [SpeedPhase(computer=0, start=10.0, duration=10.0, factor=2.0)])
        assert timeline._speed(5.0) == 1.0
        assert timeline._speed(15.0) == 0.5
        assert timeline._speed(25.0) == 1.0

    def test_unit_factor_compiles_benign(self):
        timeline = FaultTimeline.compile(
            [SpeedPhase(computer=0, start=0.0, duration=5.0, factor=1.0)])
        assert timeline.is_benign


class TestSpeedsClause:
    def test_round_trip_through_the_grammar(self):
        scenario = parse_faults("speeds:2@30+15x0.8")
        fault, = scenario.faults
        assert fault == SpeedPhase(computer=2, start=30.0, duration=15.0,
                                   factor=0.8)

    def test_speedup_clause_accepted_where_slow_rejects(self):
        # ``slow:`` is a fault (factor >= 1); ``speeds:`` is a declared
        # trajectory and welcomes factors < 1.
        assert parse_faults("speeds:0@0+10x0.25").faults
        with pytest.raises(FaultInjectionError, match=">= 1"):
            parse_faults("slow:0@0+10x0.25")

    def test_no_stochastic_form(self):
        with pytest.raises(FaultSpecError, match="no stochastic"):
            parse_faults("speeds~0.1@0+10x2")

    @pytest.mark.parametrize("clause", [
        "speeds:1",               # no window
        "speeds:1@5",             # no duration
        "speeds:1@5+10",          # no factor
        "speeds:1@5+10x0",        # factor must be positive
    ])
    def test_malformed_clauses_rejected(self, clause):
        with pytest.raises((FaultSpecError, FaultInjectionError)):
            parse_faults(clause)

    def test_mixes_with_the_rest_of_the_grammar(self):
        scenario = parse_faults("crash:0@50,speeds:1@10+20x2,seed:9")
        assert len(scenario.faults) == 2
        assert scenario.seed == 9
