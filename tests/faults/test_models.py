"""Unit tests for the fault primitives (repro.faults.models)."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults.models import (ChannelLoss, DegradedSpeed, FaultTimeline,
                                 PermanentCrash, RetransmitPolicy,
                                 TransientOutage)


class TestFaultValidation:
    def test_crash_rejects_negative_time(self):
        with pytest.raises(FaultInjectionError):
            PermanentCrash(0, -1.0)

    def test_outage_rejects_nonpositive_duration(self):
        with pytest.raises(FaultInjectionError):
            TransientOutage(0, 1.0, 0.0)

    def test_slowdown_rejects_factor_below_one(self):
        with pytest.raises(FaultInjectionError):
            DegradedSpeed(0, 1.0, 5.0, 0.5)

    def test_channel_loss_rejects_bad_probability(self):
        with pytest.raises(FaultInjectionError):
            ChannelLoss(p_loss=1.5)


class TestFaultTimeline:
    def test_compile_takes_earliest_crash(self):
        tl = FaultTimeline.compile([PermanentCrash(0, 9.0),
                                    PermanentCrash(0, 4.0)])
        assert tl.crash_at == 4.0
        assert tl.crashes_by(4.0)
        assert not tl.crashes_by(3.999)

    def test_benign_timeline(self):
        assert FaultTimeline.compile([]).is_benign
        assert not FaultTimeline.compile([PermanentCrash(0, 1.0)]).is_benign

    def test_outage_pauses_progress(self):
        # 10 units of compute starting at 0, with the worker down over
        # [2, 5): completion slips by exactly the outage length.
        tl = FaultTimeline.compile([TransientOutage(0, 2.0, 3.0)])
        assert tl.completion_time(0.0, 10.0) == pytest.approx(13.0)

    def test_outage_before_start_is_free(self):
        tl = FaultTimeline.compile([TransientOutage(0, 2.0, 3.0)])
        assert tl.completion_time(6.0, 10.0) == pytest.approx(16.0)

    def test_slowdown_dilates_the_window(self):
        # 10 units starting at 0; 2x slower over [0, 4): the first 4
        # wall-clock units produce 2 units of progress, the remaining 8
        # run at full speed.
        tl = FaultTimeline.compile([DegradedSpeed(0, 0.0, 4.0, 2.0)])
        assert tl.completion_time(0.0, 10.0) == pytest.approx(12.0)

    def test_zero_work_completes_immediately(self):
        tl = FaultTimeline.compile([TransientOutage(0, 0.0, 5.0)])
        assert tl.completion_time(3.0, 0.0) == 3.0

    def test_shifted_clips_and_drops_expired(self):
        tl = FaultTimeline.compile([
            PermanentCrash(0, 10.0),
            TransientOutage(0, 2.0, 3.0),     # over by t=5
            DegradedSpeed(0, 6.0, 4.0, 3.0),  # active until t=10
        ])
        shifted = tl.shifted(7.0)
        assert shifted.crash_at == pytest.approx(3.0)
        assert shifted.outages == ()          # expired
        assert len(shifted.slowdowns) == 1    # clipped to [0, 3)
        start, end, factor = shifted.slowdowns[0]
        assert (start, end, factor) == pytest.approx((0.0, 3.0, 3.0))


class TestChannelLoss:
    def test_draws_are_deterministic_and_key_addressed(self):
        loss = ChannelLoss(p_loss=0.5, seed=3)
        draws = [loss.lost("work", c, a) for c in range(4) for a in range(4)]
        again = [loss.lost("work", c, a) for c in range(4) for a in range(4)]
        assert draws == again
        assert any(draws) and not all(draws)

    def test_draws_independent_of_call_order(self):
        loss = ChannelLoss(p_loss=0.3, seed=9)
        forward = [loss.lost("result", c, 0) for c in range(8)]
        backward = [loss.lost("result", c, 0) for c in reversed(range(8))]
        assert forward == backward[::-1]

    def test_deterministic_drops(self):
        loss = ChannelLoss(drops=frozenset({("work", 2, 0)}))
        assert loss.lost("work", 2, 0)
        assert not loss.lost("work", 2, 1)
        assert not loss.lost("result", 2, 0)

    def test_salt_changes_the_process(self):
        loss = ChannelLoss(p_loss=0.5, seed=3)
        salted = loss.with_salt(1)
        draws = [loss.lost("work", c, 0) for c in range(32)]
        salted_draws = [salted.lost("work", c, 0) for c in range(32)]
        assert draws != salted_draws


class TestRetransmitPolicy:
    def test_backoff_is_exponential(self):
        policy = RetransmitPolicy(max_retransmits=3, backoff=0.1,
                                  backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_rejects_negative_budget(self):
        with pytest.raises(FaultInjectionError):
            RetransmitPolicy(max_retransmits=-1)
