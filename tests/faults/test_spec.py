"""Unit tests for fault scenarios and the --faults grammar."""

import pytest

from repro.errors import FaultInjectionError, FaultSpecError
from repro.faults.models import (DegradedSpeed, PermanentCrash,
                                 TransientOutage)
from repro.faults.spec import FaultScenario, parse_faults


class TestParseFaults:
    def test_explicit_clauses(self):
        scenario = parse_faults("crash:2@5,outage:1@10+5,slow:0@2+20x3")
        assert scenario.faults == (PermanentCrash(2, 5.0),
                                   TransientOutage(1, 10.0, 5.0),
                                   DegradedSpeed(0, 2.0, 20.0, 3.0))
        assert scenario.channel is None

    def test_computer_indices_accept_c_prefix(self):
        scenario = parse_faults("crash:C2@5")
        assert scenario.faults == (PermanentCrash(2, 5.0),)

    def test_channel_clauses(self):
        scenario = parse_faults(
            "loss:0.05,drop:work:1:0,retransmits:5,backoff:0.2,seed:7")
        assert scenario.channel.p_loss == 0.05
        assert ("work", 1, 0) in scenario.channel.drops
        assert scenario.retransmit.max_retransmits == 5
        assert scenario.retransmit.backoff == 0.2
        assert scenario.seed == 7

    def test_stochastic_clauses(self):
        scenario = parse_faults("crash~0.01,outage~0.02+4,slow~0.03+10x2")
        assert scenario.crash_rate == 0.01
        assert (scenario.outage_rate, scenario.outage_duration) == (0.02, 4.0)
        assert (scenario.slow_rate, scenario.slow_duration,
                scenario.slow_factor) == (0.03, 10.0, 2.0)
        assert scenario.is_stochastic

    def test_semicolons_and_whitespace(self):
        scenario = parse_faults(" crash:0@1 ; loss:0.1 ")
        assert scenario.faults == (PermanentCrash(0, 1.0),)
        assert scenario.channel.p_loss == 0.1

    @pytest.mark.parametrize("bad", [
        "", "   ", "bogus:1", "crash:0", "crash:x@5", "crash:0@x",
        "outage:0@5", "slow:0@5+2", "loss:2.0", "drop:work:1",
        "drop:smoke:1:0", "retransmits:x", "maxbackoff:0", "maxbackoff:x",
    ])
    def test_malformed_specs_raise_fault_spec_error(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)

    def test_maxbackoff_clause_caps_retransmit_delays(self):
        scenario = parse_faults(
            "loss:0.1,retransmits:5,backoff:0.2,maxbackoff:1.5")
        policy = scenario.retransmit
        assert policy.max_backoff == 1.5
        delays = [policy.delay(i) for i in range(1, 7)]
        assert delays == pytest.approx([0.2, 0.4, 0.8, 1.5, 1.5, 1.5])

    def test_error_names_offending_clause_and_position(self):
        # Regression: a bad clause mid-spec must be identified by its
        # own text, ordinal, and character offset — not just "bad spec".
        with pytest.raises(FaultSpecError) as err:
            parse_faults("crash:0@5,slow:1@2+3")
        message = str(err.value)
        assert "'slow:1@2+3'" in message
        assert "clause 2 of 2" in message
        assert "at char 10" in message

    def test_error_position_counts_all_clauses(self):
        # Regression: ordinal/offset bookkeeping holds past two clauses
        # and across the channel-clause family too.
        with pytest.raises(FaultSpecError) as err:
            parse_faults("loss:0.05,crash:0@5,bogus:xyz")
        message = str(err.value)
        assert "'bogus:xyz'" in message
        assert "clause 3 of 3" in message
        assert "at char 20" in message
        assert "unknown fault kind 'bogus'" in message


class TestFaultScenario:
    def test_unknown_computer_rejected_at_materialize(self):
        scenario = FaultScenario(faults=(PermanentCrash(7, 1.0),))
        with pytest.raises(FaultInjectionError):
            scenario.materialize(4, 100.0)

    def test_materialize_is_deterministic(self):
        scenario = parse_faults("crash~0.02,outage~0.01+4,seed:11")
        a = scenario.materialize(6, 100.0)
        b = scenario.materialize(6, 100.0)
        assert a.faults_injected == b.faults_injected
        assert set(a.timelines) == set(b.timelines)
        for c in a.timelines:
            assert a.timelines[c].crash_at == b.timelines[c].crash_at
            assert a.timelines[c].outages == b.timelines[c].outages

    def test_seed_changes_the_draws(self):
        base = "crash~0.05"
        a = parse_faults(base + ",seed:1").materialize(16, 100.0)
        b = parse_faults(base + ",seed:2").materialize(16, 100.0)
        crashes_a = {c: tl.crash_at for c, tl in a.timelines.items()}
        crashes_b = {c: tl.crash_at for c, tl in b.timelines.items()}
        assert crashes_a != crashes_b

    def test_channel_inherits_scenario_seed(self):
        scenario = parse_faults("loss:0.1,seed:13")
        materialized = scenario.materialize(2, 10.0)
        assert materialized.channel.seed == 13

    def test_counts_injected_faults(self):
        scenario = parse_faults("crash:0@5,outage:1@2+3,loss:0.1")
        materialized = scenario.materialize(4, 100.0)
        # two worker faults + the channel process
        assert materialized.faults_injected == 3

    def test_arrivals_past_lifespan_are_discarded(self):
        # An astronomically slow rate essentially never fires within L.
        scenario = FaultScenario(crash_rate=1e-9, seed=0)
        materialized = scenario.materialize(8, 10.0)
        assert materialized.timelines == {}


class TestMaterializedShift:
    def test_shift_remaps_survivors_to_compact_indices(self):
        scenario = parse_faults("crash:2@50,outage:3@40+10")
        materialized = scenario.materialize(4, 100.0)
        # computers 0 and 2 died; survivors [1, 3] become positions 0, 1
        shifted = materialized.shifted(30.0, survivors=[1, 3])
        assert set(shifted.timelines) == {1}
        assert shifted.timelines[1].outages == ((10.0, 20.0),)

    def test_shift_resalts_the_channel(self):
        materialized = parse_faults("loss:0.2,seed:5").materialize(2, 10.0)
        shifted = materialized.shifted(1.0, salt=3)
        assert shifted.channel.salt == 3
        assert materialized.channel.salt == 0
