"""Tests for the multi-round recovery rescheduler (repro.faults.recovery)."""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import RecoveryError
from repro.faults.recovery import (RecoveryPolicy, RecoveryTelemetry,
                                   simulate_with_recovery)
from repro.obs import MetricsRegistry, Observation, observe
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation

PARAMS = ModelParams(tau=0.02, pi=0.002, delta=1.0)
PROFILE = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])


def _margin_allocation(lifespan: float = 60.0,
                       margin: float = 0.8) -> WorkAllocation:
    """An allocation with slack: sized for margin*L, judged against L."""
    plan = fifo_allocation(PROFILE, PARAMS, margin * lifespan)
    return WorkAllocation(profile=PROFILE, params=PARAMS, lifespan=lifespan,
                          w=plan.w, startup_order=plan.startup_order,
                          finishing_order=plan.finishing_order,
                          protocol_name="fifo-margin")


class TestRecoveryPolicy:
    def test_rejects_negative_timeout(self):
        with pytest.raises(RecoveryError):
            RecoveryPolicy(detection_timeout=-1.0)

    def test_rejects_zero_rounds(self):
        with pytest.raises(RecoveryError):
            RecoveryPolicy(max_rounds=0)


class TestSimulateWithRecovery:
    def test_faultless_run_is_one_round(self):
        alloc = _margin_allocation()
        outcome = simulate_with_recovery(alloc, None)
        assert outcome.telemetry.rounds == 1
        assert outcome.telemetry.retries == 0
        assert outcome.telemetry.work_lost == 0.0
        assert outcome.completed_work == pytest.approx(alloc.total_work)

    def test_crash_recovers_lost_work_in_later_rounds(self):
        alloc = _margin_allocation()
        outcome = simulate_with_recovery(alloc, "crash:0@5",
                                         results_policy="greedy")
        telemetry = outcome.telemetry
        assert telemetry.rounds >= 2
        assert telemetry.retries == telemetry.rounds - 1
        assert telemetry.work_recovered > 0.0
        assert outcome.crashed_computers == (0,)
        # recovery beats the single-round skip heuristic
        assert outcome.completed_work > outcome.first_round.completed_work

    def test_max_rounds_one_disables_recovery(self):
        alloc = _margin_allocation()
        outcome = simulate_with_recovery(
            alloc, "crash:0@5", policy=RecoveryPolicy(max_rounds=1),
            results_policy="greedy")
        assert outcome.telemetry.rounds == 1
        assert outcome.telemetry.work_lost > 0.0

    def test_accepts_scenario_string_and_replays_identically(self):
        alloc = _margin_allocation()
        spec = "crash~0.03,outage~0.01+4,loss:0.05,seed:23"
        a = simulate_with_recovery(alloc, spec, results_policy="greedy")
        b = simulate_with_recovery(alloc, spec, results_policy="greedy")
        assert a.completed_work == b.completed_work
        assert a.telemetry == b.telemetry
        assert a.crashed_computers == b.crashed_computers

    def test_work_is_never_double_counted(self):
        alloc = _margin_allocation()
        outcome = simulate_with_recovery(alloc, "crash:0@5,crash:2@10",
                                         results_policy="greedy")
        assert outcome.completed_work <= alloc.total_work + 1e-9

    def test_all_dead_cluster_stops_cleanly(self):
        alloc = _margin_allocation()
        spec = "crash:0@1,crash:1@1,crash:2@1,crash:3@1"
        outcome = simulate_with_recovery(alloc, spec, results_policy="greedy")
        assert outcome.completed_work == 0.0
        assert outcome.telemetry.work_lost == pytest.approx(alloc.total_work)
        assert outcome.crashed_computers == (0, 1, 2, 3)

    def test_telemetry_reaches_ambient_metrics(self):
        alloc = _margin_allocation()
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            simulate_with_recovery(alloc, "crash:0@5",
                                   results_policy="greedy")
        names = {m["name"] for m in registry.dump()["metrics"]}
        assert "sim_recovery_rounds_total" in names
        assert "sim_recovery_retries_total" in names
        assert "sim_work_recovered_total" in names

    def test_telemetry_as_dict_round_trips(self):
        telemetry = RecoveryTelemetry(rounds=2, retries=1, work_recovered=3.5)
        d = telemetry.as_dict()
        assert d["rounds"] == 2 and d["work_recovered"] == 3.5
