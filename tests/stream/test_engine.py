"""StreamProcessor tests: records, shadow mode, store lifecycle, replay."""

import json

import pytest

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import StreamError
from repro.obs import MetricsRegistry, RunStore
from repro.stream import (StreamProcessor, parse_event_line, record_to_line,
                          store_source, synthetic_trace)

PROFILE = Profile([1.0, 0.5, 0.25])


def _run(processor, events):
    records = list(processor.process(events))
    records.extend(processor.finish())
    return records


def _trace(**kwargs):
    kwargs.setdefault("profile", PROFILE)
    kwargs.setdefault("params", PAPER_TABLE1)
    kwargs.setdefault("windows", 3)
    return list(synthetic_trace(**kwargs))


class TestRecords:
    def test_window_records_then_summary(self):
        records = _run(StreamProcessor(10.0), _trace())
        kinds = [r["kind"] for r in records]
        assert kinds[-1] == "summary"
        assert set(kinds[:-1]) == {"window"}
        window = records[0]
        assert window["evaluation"]["n"] == len(PROFILE.rho)
        fractions = window["evaluation"]["allocation"].values()
        assert sum(fractions) == pytest.approx(1.0)
        assert window["calibration"] is not None

    def test_records_are_strict_sorted_json(self):
        for record in _run(StreamProcessor(10.0), _trace()):
            line = record_to_line(record)
            # Strict JSON (no NaN/Infinity) with byte-stable key order.
            parsed = json.loads(line, parse_constant=pytest.fail)
            assert record_to_line(parsed) == line

    def test_calibrate_off_uses_declared_model(self):
        processor = StreamProcessor(10.0, calibrate=False)
        records = _run(processor, _trace())
        window = records[0]
        assert window["calibration"] is None
        assert window["params"]["tau"] == PAPER_TABLE1.tau
        assert window["workers"] == window["declared"]

    def test_empty_stream_summary_only(self):
        records = _run(StreamProcessor(10.0), [])
        assert [r["kind"] for r in records] == ["summary"]
        assert records[0]["windows"] == 0

    def test_summary_surfaces_drift_clauses(self):
        processor = StreamProcessor(10.0, forget=0.25)
        records = _run(processor, _trace(windows=8, drift_worker=1,
                                         drift_factor=2.0, drift_window=2))
        drift = records[-1]["drift"]
        assert drift["workers"] == ["1"]
        assert all(c.startswith("speeds:1@") for c in drift["clauses"])


class TestShadowMode:
    def test_shadow_evaluated_with_deltas(self):
        processor = StreamProcessor(10.0, what_if=[1.0, 1.0, 1.0, 1.0])
        window = _run(processor, _trace())[0]
        shadow = window["shadow"]
        assert shadow["n"] == 4
        real_rate = window["evaluation"]["work_rate"]
        assert shadow["work_rate_delta"] == pytest.approx(
            shadow["work_rate"] - real_rate)
        assert shadow["work_rate_delta_pct"] == pytest.approx(
            100.0 * shadow["work_rate_delta"] / real_rate)

    def test_shadow_does_not_perturb_real_evaluation(self):
        plain = _run(StreamProcessor(10.0), _trace())
        shadowed = _run(StreamProcessor(10.0, what_if=[2.0]), _trace())
        for a, b in zip(plain, shadowed):
            if a["kind"] == "window":
                assert a["evaluation"] == b["evaluation"]

    @pytest.mark.parametrize("bad", [[], [0.0], [-1.0], [float("nan")]])
    def test_bad_shadow_profile_rejected(self, bad):
        with pytest.raises(StreamError, match="what-if"):
            StreamProcessor(10.0, what_if=bad)


class TestMetrics:
    def test_stream_series_published(self):
        registry = MetricsRegistry()
        _run(StreamProcessor(10.0, registry=registry), _trace())
        snapshot = registry.snapshot()
        assert snapshot["stream_windows_total"]["series"]
        assert any(name == "stream_calibration_mape" for name in snapshot)
        rho = snapshot["stream_rho"]["series"]
        assert len(rho) == len(PROFILE.rho)


class TestStoreLifecycle:
    def test_run_row_running_then_ok(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            processor = StreamProcessor(10.0, store=store, label="twin")
            events = _trace()
            for event in events[:2]:
                processor.feed(event)
            live = store.get_run(processor.run_id)
            assert live["status"] == "running"
            _run(processor, events[2:])
            done = store.get_run(processor.run_id)
            assert done["status"] == "ok"
            assert done["kind"] == "stream"
            assert done["extra"]["events_truncated"] is False
            spans = store.spans(processor.run_id)
            assert spans
            assert all(s["name"] == "stream:window" for s in spans)

    def test_replay_from_store_is_bit_identical(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite3") as store:
            original = StreamProcessor(10.0, store=store)
            first = [record_to_line(r)
                     for r in _run(original, _trace(windows=4))]
            replayed = StreamProcessor(10.0)
            second = [record_to_line(r)
                      for r in _run(replayed,
                                    store_source(store, original.run_id))]
            assert second == first

    def test_event_log_truncation_disables_replay(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr("repro.stream.engine.EVENT_LOG_LIMIT", 3)
        with RunStore(tmp_path / "runs.sqlite3") as store:
            processor = StreamProcessor(10.0, store=store)
            _run(processor, _trace())
            row = store.get_run(processor.run_id)
            assert row["extra"]["events_truncated"] is True
            assert row["extra"]["events"] is None
            with pytest.raises(StreamError, match="truncated"):
                list(store_source(store, processor.run_id))


class TestStateView:
    def test_state_tracks_progress_and_survives_finish(self):
        processor = StreamProcessor(10.0, params=ModelParams(
            tau=1e-4, pi=1e-3, delta=0.5))
        view = processor.state_view()
        assert view["current_window"] is None
        assert view["last_window"] is None
        records = _run(processor, _trace())
        view = processor.state_view()
        assert view["windows_closed"] == records[-1]["windows"]
        assert view["last_window"] is None  # summary record has no window
        assert view["calibrating"] is True
        assert set(view["workers"]) == {"0", "1", "2"}

    def test_feed_accepts_parsed_lines(self):
        processor = StreamProcessor(10.0)
        line = ('{"type": "worker_joined", "time": 0.0, "worker": 0, '
                '"rho": 1.0}')
        assert processor.feed(parse_event_line(line)) == []
        assert processor.state_view()["buffered_events"] == 1
