"""Calibrator tests: exact recovery, drift convergence, clause emission."""

import pytest

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import StreamError
from repro.faults.spec import parse_faults
from repro.stream import Calibrator, WindowManager, synthetic_trace

TRUE = ModelParams(tau=1e-4, pi=1e-3, delta=0.6)
PROFILE = Profile([1.0, 0.5, 0.25])


def _windows(events, size=10.0):
    manager = WindowManager(size)
    out = []
    for event in events:
        out.extend(manager.add(event))
    tail = manager.flush()
    if tail is not None:
        out.append(tail)
    return out


def _declared(profile=PROFILE):
    return dict(enumerate(float(r) for r in profile.rho))


class TestExactRecovery:
    def test_noise_free_trace_recovers_parameters(self):
        # Start the fit from a *wrong* initial model; the closed-form
        # solve should land on the trace's true (tau, pi, delta, rho).
        calibrator = Calibrator(PAPER_TABLE1, forget=0.5)
        events = synthetic_trace(profile=PROFILE, params=TRUE, windows=4)
        snapshot = None
        for window in _windows(events):
            snapshot = calibrator.observe_window(window, _declared())
        assert snapshot.tau == pytest.approx(TRUE.tau, rel=1e-6)
        assert snapshot.pi == pytest.approx(TRUE.pi, rel=1e-6)
        assert snapshot.delta == pytest.approx(TRUE.delta, rel=1e-6)
        for worker, rho in _declared().items():
            assert snapshot.rho[worker] == pytest.approx(rho, rel=1e-9)

    def test_one_step_ahead_mape_scores_before_update(self):
        calibrator = Calibrator(PAPER_TABLE1, forget=0.5)
        events = synthetic_trace(profile=PROFILE, params=TRUE, windows=2)
        first, second = _windows(events)[:2]
        snap1 = calibrator.observe_window(first, _declared())
        # Window 1 is scored by window 0's (already converged) fit, so
        # its honest one-step MAPE beats the wrong initial model's.
        snap2 = calibrator.observe_window(second, _declared())
        assert snap2.mape < snap2.baseline_mape

    def test_no_observations_gives_none_mape(self):
        calibrator = Calibrator(PAPER_TABLE1)
        events = [e for e in synthetic_trace(profile=PROFILE, windows=1)
                  if e.type == "topology"]
        window = _windows(events)[0]
        snapshot = calibrator.observe_window(window, _declared())
        assert snapshot.mape is None
        assert snapshot.baseline_mape is None
        assert snapshot.tau == pytest.approx(PAPER_TABLE1.tau, rel=1e-9)


class TestDriftConvergence:
    def test_drift_recovered_to_2pct_mape(self):
        # Acceptance criterion: a worker silently slowing 2x mid-stream
        # is recovered to <= 2% one-step-ahead MAPE, while the
        # uncalibrated baseline stays wrong.
        calibrator = Calibrator(PAPER_TABLE1, forget=0.25)
        events = synthetic_trace(profile=PROFILE, params=PAPER_TABLE1,
                                 windows=10, drift_worker=1,
                                 drift_factor=2.0, drift_window=2)
        last = None
        for window in _windows(events):
            last = calibrator.observe_window(window, _declared())
        assert last.mape is not None and last.mape <= 0.02
        assert last.baseline_mape > 0.03
        assert last.rho[1] == pytest.approx(1.0, rel=0.02)

    def test_undrifted_workers_stay_anchored(self):
        calibrator = Calibrator(PAPER_TABLE1, forget=0.25)
        events = synthetic_trace(profile=PROFILE, params=PAPER_TABLE1,
                                 windows=8, drift_worker=1,
                                 drift_factor=2.0, drift_window=2)
        for window in _windows(events):
            last = calibrator.observe_window(window, _declared())
        assert last.rho[0] == pytest.approx(1.0, rel=1e-3)
        assert last.rho[2] == pytest.approx(0.25, rel=1e-3)


class TestDriftSurfacing:
    @pytest.fixture()
    def drifted(self):
        calibrator = Calibrator(PAPER_TABLE1, forget=0.25)
        events = synthetic_trace(profile=PROFILE, params=PAPER_TABLE1,
                                 windows=8, drift_worker=1,
                                 drift_factor=2.0, drift_window=2)
        for window in _windows(events):
            calibrator.observe_window(window, _declared())
        return calibrator

    def test_drift_factors_name_only_the_drifter(self, drifted):
        factors = drifted.drift_factors(threshold=0.1)
        assert set(factors) == {1}
        assert all(f > 1.0 for _, _, f in factors[1])

    def test_speed_clauses_parse_back_into_the_grammar(self, drifted):
        clauses = drifted.speed_clauses(threshold=0.1)
        assert clauses
        assert all(c.startswith("speeds:1@") for c in clauses)
        scenario = parse_faults(",".join(clauses))
        assert len(scenario.faults) == len(clauses)

    def test_agreeing_adjacent_windows_merge(self, drifted):
        timelines = drifted.speed_timelines(threshold=0.1)
        spans = timelines[1].slowdowns
        # Converged windows collapse into fewer phases than drifted
        # windows observed.
        assert len(spans) < len(drifted.drift_factors(threshold=0.1)[1])


class TestValidation:
    @pytest.mark.parametrize("forget", [0.0, -0.5, 1.5])
    def test_bad_forget_rejected(self, forget):
        with pytest.raises(StreamError, match="forget"):
            Calibrator(PAPER_TABLE1, forget=forget)
