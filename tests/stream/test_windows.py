"""WindowManager lifecycle and ClusterState membership tests."""

import pytest

from repro.errors import StreamError
from repro.stream import ClusterState, StreamEvent, WindowManager


def _tick(time, worker=0):
    return StreamEvent(time=time, type="task_completed", worker=worker,
                       work=1.0)


class TestWindowLifecycle:
    def test_first_event_opens_its_window(self):
        manager = WindowManager(10.0)
        assert manager.current_index is None
        assert manager.add(_tick(34.0)) == []
        assert manager.current_index == 3
        assert manager.buffered == 1

    def test_later_window_event_closes_current(self):
        manager = WindowManager(10.0)
        manager.add(_tick(1.0))
        manager.add(_tick(2.0))
        closed = manager.add(_tick(12.0))
        assert len(closed) == 1
        window = closed[0]
        assert (window.index, window.start, window.end) == (0, 0.0, 10.0)
        assert [e.time for e in window.events] == [1.0, 2.0]
        assert manager.current_index == 1

    def test_gap_jump_creates_no_empty_windows(self):
        manager = WindowManager(10.0)
        manager.add(_tick(5.0))
        closed = manager.add(_tick(95.0))
        assert [w.index for w in closed] == [0]
        assert manager.current_index == 9
        assert manager.windows_closed == 1

    def test_late_event_is_counted_never_admitted(self):
        manager = WindowManager(10.0)
        manager.add(_tick(5.0))
        manager.add(_tick(15.0))          # closes window 0
        assert manager.add(_tick(3.0)) == []   # late: window 0 is closed
        assert manager.late_total == 1
        window = manager.flush()
        assert window.index == 1
        assert window.late == 1
        assert all(e.time >= 10.0 for e in window.events)

    def test_flush_closes_trailing_partial_window(self):
        manager = WindowManager(10.0)
        manager.add(_tick(5.0))
        window = manager.flush()
        assert window.index == 0
        assert manager.flush() is None
        # Post-flush, events inside the flushed window are late.
        assert manager.add(_tick(7.0)) == []
        assert manager.late_total == 1

    def test_events_sorted_canonically_at_close(self):
        manager = WindowManager(10.0)
        manager.add(_tick(4.0, worker=2))
        manager.add(StreamEvent(time=4.0, type="worker_joined", worker=7,
                                rho=1.0))
        manager.add(_tick(4.0, worker=1))
        manager.add(_tick(1.0, worker=9))
        window = manager.flush()
        labels = [(e.time, e.type, e.worker) for e in window.events]
        assert labels == [(1.0, "task_completed", 9),
                          (4.0, "worker_joined", 7),
                          (4.0, "task_completed", 1),
                          (4.0, "task_completed", 2)]

    def test_cumulative_history(self):
        manager = WindowManager(5.0)
        for t in (1.0, 6.0, 0.5, 11.0, 12.0):
            manager.add(_tick(t))
        manager.flush()
        assert manager.events_total == 5
        assert manager.windows_closed == 3
        assert manager.late_total == 1

    def test_origin_shifts_the_grid(self):
        manager = WindowManager(10.0, origin=5.0)
        assert manager.index_of(4.9) == -1
        assert manager.index_of(5.0) == 0
        assert manager.bounds(0) == (5.0, 15.0)

    @pytest.mark.parametrize("size", [0.0, -1.0, float("nan"),
                                      float("inf")])
    def test_bad_size_rejected(self, size):
        with pytest.raises(StreamError, match="window size"):
            WindowManager(size)


class TestClusterState:
    def test_topology_replaces_wholesale(self):
        state = ClusterState()
        state.apply(StreamEvent(time=0.0, type="worker_joined", worker=9,
                                rho=2.0))
        state.apply(StreamEvent(time=1.0, type="topology",
                                workers=((0, 1.0), (1, 0.5))))
        assert state.workers == {0: 1.0, 1: 0.5}

    def test_join_leave_speed(self):
        state = ClusterState()
        state.apply(StreamEvent(time=0.0, type="worker_joined", worker=1,
                                rho=0.5))
        state.apply(StreamEvent(time=1.0, type="worker_joined", worker=0,
                                rho=1.0))
        state.apply(StreamEvent(time=2.0, type="speed_observed", worker=1,
                                rho=0.75))
        state.apply(StreamEvent(time=3.0, type="worker_left", worker=0))
        assert state.workers == {1: 0.75}
        assert state.n == 1

    def test_completions_do_not_touch_membership(self):
        state = ClusterState()
        state.apply(_tick(1.0, worker=4))
        assert state.workers == {}
