"""Event schema, parser, and positional-error-contract tests."""

import io
import json

import pytest

from repro.errors import StreamError, StreamEventError
from repro.stream import (EVENT_TYPES, StreamEvent, canonical_key,
                          event_from_dict, event_to_dict, event_to_line,
                          parse_event_line, read_events, store_source)


class TestEventFromDict:
    def test_task_completed_full_milestones(self):
        event = event_from_dict({
            "type": "task_completed", "time": 9.0, "worker": 2, "work": 4.0,
            "sent": 0.0, "arrived": 0.5, "completed": 8.0,
            "result_started": 8.5})
        assert event.worker == 2
        assert event.work == 4.0
        assert event.arrived == 0.5

    def test_topology_sorted_pairs(self):
        event = event_from_dict({
            "type": "topology", "time": 0.0,
            "workers": {"3": 0.25, "1": 0.5, "0": 1.0}})
        assert event.workers == ((0, 1.0), (1, 0.5), (3, 0.25))

    def test_worker_joined_default_rho(self):
        event = event_from_dict(
            {"type": "worker_joined", "time": 1.0, "worker": 5})
        assert event.rho == 1.0

    @pytest.mark.parametrize("obj, field", [
        ({"type": "nope", "time": 0.0}, "type"),
        ({"type": "task_completed", "worker": 0, "work": 1.0}, "type"),
        ({"type": "task_completed", "time": 1.0, "worker": 0}, "work"),
        ({"type": "task_completed", "time": 1.0, "worker": 0,
          "work": -1.0}, "work"),
        ({"type": "task_completed", "time": 1.0, "worker": 0,
          "work": float("nan")}, "work"),
        ({"type": "speed_observed", "time": 1.0, "worker": 0}, "rho"),
        ({"type": "speed_observed", "time": 1.0, "worker": 0,
          "rho": 0.0}, "rho"),
        ({"type": "worker_left", "time": 1.0, "worker": -3}, "worker"),
        ({"type": "worker_left", "time": 1.0, "worker": True}, "worker"),
        ({"type": "topology", "time": 0.0}, "workers"),
        ({"type": "topology", "time": 0.0, "workers": {"x": 1.0}},
         "workers"),
    ])
    def test_defects_name_their_field(self, obj, field):
        with pytest.raises(StreamEventError) as excinfo:
            event_from_dict(obj)
        assert excinfo.value.field == field

    def test_reversed_milestones_rejected(self):
        with pytest.raises(StreamEventError, match="precedes"):
            event_from_dict({"type": "task_completed", "time": 9.0,
                             "worker": 0, "work": 1.0, "sent": 5.0,
                             "arrived": 2.0})

    def test_completion_before_result_start_rejected(self):
        # The event time itself is the final milestone.
        with pytest.raises(StreamEventError, match="'time'"):
            event_from_dict({"type": "task_completed", "time": 1.0,
                             "worker": 0, "work": 1.0,
                             "result_started": 2.0})


class TestParseEventLine:
    def test_invalid_json_reports_line_and_char(self):
        with pytest.raises(StreamEventError, match=r"line 7, at char 0"):
            parse_event_line("not json", line_number=7)

    def test_json_error_offset_points_at_defect(self):
        line = '{"type": "topology", "time": }'
        with pytest.raises(StreamEventError) as excinfo:
            parse_event_line(line, line_number=1)
        assert f"at char {line.index('}')}" in str(excinfo.value)

    def test_field_error_offset_points_at_field(self):
        line = '{"type": "task_completed", "time": 1.0, "worker": 0, "work": -2}'
        with pytest.raises(StreamEventError) as excinfo:
            parse_event_line(line, line_number=3)
        message = str(excinfo.value)
        assert "line 3" in message
        assert f"at char {line.index(chr(34) + 'work' + chr(34))}" in message

    def test_valid_line_round_trips(self):
        event = StreamEvent(time=2.0, type="speed_observed", worker=1,
                            rho=0.5)
        assert parse_event_line(event_to_line(event)) == event


class TestReadEvents:
    def test_blank_lines_skipped_but_counted(self):
        lines = ['{"type": "worker_joined", "time": 0.0, "worker": 0}',
                 "", "   ", "garbage"]
        events = read_events(lines)
        assert next(events).type == "worker_joined"
        with pytest.raises(StreamEventError, match="line 4"):
            next(events)

    def test_start_line_offsets_numbering(self):
        with pytest.raises(StreamEventError, match="line 11"):
            list(read_events(["{"], start_line=11))


class TestCanonicalKey:
    def test_type_rank_breaks_time_ties(self):
        completed = StreamEvent(time=5.0, type="task_completed", worker=0,
                                work=1.0)
        joined = StreamEvent(time=5.0, type="worker_joined", worker=9,
                             rho=1.0)
        assert canonical_key(joined) < canonical_key(completed)

    def test_order_matches_declared_event_types(self):
        assert EVENT_TYPES[0] == "topology"
        assert EVENT_TYPES[-1] == "task_completed"

    def test_round_trip_preserves_canonical_line(self):
        event = event_from_dict({"type": "task_completed", "time": 3.0,
                                 "worker": 1, "work": 2.0})
        again = event_from_dict(json.loads(event_to_line(event)))
        assert event_to_line(again) == event_to_line(event)
        assert event_to_dict(again) == event_to_dict(event)


class TestStoreSource:
    def test_missing_run_raises_stream_error(self, tmp_path):
        from repro.obs import RunStore
        store = RunStore(tmp_path / "runs.sqlite3")
        with pytest.raises(StreamError, match="no stream run"):
            list(store_source(store))
        with pytest.raises(StreamError, match="no stored stream run"):
            list(store_source(store, "deadbeef"))
        store.close()

    def test_truncated_log_refuses_replay(self, tmp_path):
        from repro.obs import RunStore
        store = RunStore(tmp_path / "runs.sqlite3")
        store.record_run(kind="stream", label="big", status="ok",
                         extra={"events": None, "events_truncated": True})
        with pytest.raises(StreamError, match="truncated"):
            list(store_source(store))
        store.close()
