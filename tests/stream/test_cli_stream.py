"""End-to-end tests for ``repro-hetero stream`` (determinism, errors)."""

import json

import pytest

from repro.cli import main
from repro.stream import event_to_line, synthetic_trace


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    lines = [event_to_line(e)
             for e in synthetic_trace(profile=[1.0, 0.5, 0.25, 0.125],
                                      windows=3)]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestDeterminism:
    def test_double_run_is_byte_identical(self, trace_file, capsys):
        outputs = []
        for _ in range(2):
            assert main(["stream", "--source", str(trace_file),
                         "--no-store"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        kinds = [json.loads(line)["kind"]
                 for line in outputs[0].splitlines()]
        assert kinds[-1] == "summary"

    def test_stdin_source_matches_file_source(self, trace_file, capsys,
                                              monkeypatch):
        assert main(["stream", "--source", str(trace_file),
                     "--no-store"]) == 0
        from_file = capsys.readouterr().out
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO(trace_file.read_text()))
        assert main(["stream", "--no-store"]) == 0
        assert capsys.readouterr().out == from_file


class TestReplay:
    def test_replay_reproduces_window_records(self, trace_file, tmp_path,
                                              capsys):
        store_dir = str(tmp_path / "state")
        assert main(["stream", "--source", str(trace_file),
                     "--store-dir", store_dir]) == 0
        captured = capsys.readouterr()
        original = captured.out
        line = next(ln for ln in captured.err.splitlines()
                    if "recorded stream run" in ln)
        run_id = line.split()[3]
        assert main(["stream", "--replay", run_id, "--no-store",
                     "--store-dir", store_dir]) == 0
        assert capsys.readouterr().out == original

    def test_replay_unknown_run_exits_2(self, tmp_path, capsys):
        assert main(["stream", "--replay", "feedbead", "--store-dir",
                     str(tmp_path / "state")]) == 2
        assert "no stored stream run" in capsys.readouterr().err


class TestErrors:
    def test_malformed_event_exits_2_with_position(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "worker_joined", "time": 0.0, "worker": 0}\n'
            '{"type": "task_completed", "time": 1.0}\n',
            encoding="utf-8")
        assert main(["stream", "--source", str(path), "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "at char" in err

    def test_missing_source_exits_1(self, tmp_path, capsys):
        assert main(["stream", "--source", str(tmp_path / "nope.jsonl"),
                     "--no-store"]) == 1
        assert "cannot open event source" in capsys.readouterr().err

    def test_bad_what_if_exits_2(self, trace_file, capsys):
        assert main(["stream", "--source", str(trace_file), "--no-store",
                     "--what-if", "1,zero"]) == 2
        assert "what-if" in capsys.readouterr().err

    def test_bad_window_exits_2(self, trace_file, capsys):
        assert main(["stream", "--source", str(trace_file), "--no-store",
                     "--window", "-5"]) == 2
        assert "window size" in capsys.readouterr().err


class TestSurfaces:
    def test_what_if_shadow_appears_in_records(self, trace_file, capsys):
        assert main(["stream", "--source", str(trace_file), "--no-store",
                     "--what-if", "1,1,1,1,1"]) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert first["shadow"]["n"] == 5
        assert "work_rate_delta_pct" in first["shadow"]

    def test_output_file_holds_the_records(self, trace_file, tmp_path,
                                           capsys):
        out_path = tmp_path / "records.jsonl"
        assert main(["stream", "--source", str(trace_file), "--no-store",
                     "--output", str(out_path)]) == 0
        assert capsys.readouterr().out == ""
        lines = out_path.read_text().splitlines()
        assert json.loads(lines[-1])["kind"] == "summary"

    def test_obs_tail_shows_stream_series(self, trace_file, tmp_path,
                                          capsys, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "state"))
        assert main(["stream", "--source", str(trace_file)]) == 0
        capsys.readouterr()
        assert main(["obs", "tail"]) == 0
        out = capsys.readouterr().out
        assert "stream:window" in out
        assert "stream series:" in out
        assert "stream_calibration_mape" in out
