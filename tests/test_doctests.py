"""Run the doctest examples embedded in public modules' docstrings.

Keeps every ``>>>`` snippet in the documentation honest: if an API or a
number drifts, this test fails before a reader does.
"""

import doctest
import importlib

import pytest

# Resolved via importlib: several package __init__ files re-export a
# function under the same name as its defining module (e.g.
# ``repro.core.hecr`` the function shadows ``repro.core.hecr`` the module
# as an attribute), so attribute access would hand doctest a function.
MODULE_NAMES = [
    "repro",
    "repro.core.params",
    "repro.core.profile",
    "repro.core.measure",
    "repro.core.hecr",
    "repro.predictors.symmetric",
    "repro.analysis.marginal",
    "repro.simulation.engine",
    "repro.experiments.tables",
    "repro.util.format",
]

MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    # Some modules carry no examples; that's fine — zero failures always.
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module.__name__}")
