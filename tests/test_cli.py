"""Unit tests for the CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig4" in out

    def test_list_json_is_machine_readable(self, capsys):
        import json

        from repro.experiments.base import list_experiments
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in payload] == list_experiments()
        for entry in payload:
            assert set(entry) == {"id", "description", "shardable"}
            assert isinstance(entry["shardable"], bool)
            assert "\n" not in entry["description"]
        by_id = {entry["id"]: entry for entry in payload}
        assert by_id["variance-trials"]["shardable"] is True
        assert by_id["table3"]["description"]


class TestRun:
    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "HECR" in out

    def test_run_with_overrides(self, capsys):
        assert main(["run", "variance-trials", "--trials", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "good %" in out

    def test_run_unknown_experiment_exit_code_2(self, capsys):
        assert main(["run", "bogus-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_failing_experiment_exit_code_1(self, capsys, monkeypatch):
        from repro.experiments import base

        def boom():
            raise RuntimeError("kaboom")
        monkeypatch.setitem(base._REGISTRY, "boom", boom)
        assert main(["run", "boom"]) == 1
        assert "kaboom" in capsys.readouterr().err

    def test_run_json_format(self, capsys):
        import json
        assert main(["run", "table3", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "table3"

    def test_run_csv_format(self, capsys):
        assert main(["run", "table4", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("i,")

    def test_run_output_file(self, capsys, tmp_path):
        target = tmp_path / "t3.json"
        assert main(["run", "table3", "--format", "json",
                     "--output", str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out


class TestRunObservability:
    def test_json_flag_is_format_shorthand(self, capsys):
        import json
        assert main(["run", "table3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "table3"
        assert payload["metadata"]["obs"]["wall_seconds"] >= 0.0

    def test_run_all_json_is_one_array(self, capsys, monkeypatch):
        import json
        from repro.experiments import base
        # Shrink the registry so 'all' stays fast.
        monkeypatch.setattr(base, "_REGISTRY", {
            k: base._REGISTRY[k] for k in ("table3", "table4")})
        assert main(["run", "all", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["experiment_id"] for p in payload] == ["table3", "table4"]

    def test_trace_metrics_json_in_one_run(self, capsys, tmp_path):
        import json
        trace = tmp_path / "t.jsonl"
        prom = tmp_path / "m.prom"
        assert main(["run", "table3", "--trace", str(trace),
                     "--metrics", str(prom), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "table3"
        records = [json.loads(line) for line in
                   trace.read_text().strip().splitlines()]
        assert any(r["name"] == "experiment:table3" for r in records)
        text = prom.read_text()
        assert "# TYPE experiment_runs_total counter" in text
        assert 'experiment_runs_total{experiment="table3"}' in text

    def test_trace_captures_simulation_events(self, tmp_path, capsys):
        import json
        trace = tmp_path / "sim.jsonl"
        assert main(["run", "failure-resilience", "--trace", str(trace)]) == 0
        capsys.readouterr()
        names = {json.loads(line)["name"]
                 for line in trace.read_text().strip().splitlines()}
        assert {"sim.run", "sim.event", "sim.transit"} <= names


class TestRunAllOutput:
    """Regression tests for the `run all --output` clobbering bug: the
    old loop reopened the file in "w" mode per experiment, so only the
    last report survived."""

    @pytest.fixture()
    def small_registry(self, monkeypatch):
        from repro.experiments import base
        monkeypatch.setattr(base, "_REGISTRY", {
            k: base._REGISTRY[k] for k in ("table3", "table4", "fig3")})

    def test_text_output_contains_every_report(self, capsys, tmp_path,
                                               small_registry):
        target = tmp_path / "all.txt"
        assert main(["run", "all", "--output", str(target),
                     "--no-cache"]) == 0
        text = target.read_text()
        for marker in ("Table 3", "Table 4", "Fig. 3"):
            assert marker in text, f"{marker!r} clobbered from {target}"

    def test_csv_output_writes_one_file_per_experiment(self, capsys, tmp_path,
                                                       small_registry):
        target = tmp_path / "out.csv"
        assert main(["run", "all", "--format", "csv",
                     "--output", str(target), "--no-cache"]) == 0
        names = sorted(p.name for p in tmp_path.glob("*.csv"))
        assert names == ["out.fig3.csv", "out.table3.csv", "out.table4.csv"]
        assert not target.exists()  # the unsuffixed name is never written

    def test_json_output_is_one_array_document(self, capsys, tmp_path,
                                               small_registry):
        import json
        target = tmp_path / "all.json"
        assert main(["run", "all", "--json", "--output", str(target),
                     "--no-cache"]) == 0
        payload = json.loads(target.read_text())
        assert [p["experiment_id"] for p in payload] == [
            "fig3", "table3", "table4"]

    def test_summary_line_on_stderr(self, capsys, small_registry):
        assert main(["run", "all", "--no-cache", "--jobs", "2"]) == 0
        err = capsys.readouterr().err
        assert "ran 3/3 experiments with --jobs 2" in err


class TestSamplingFlagWarning:
    """`--seed`/`--trials` are sampling-only knobs; passing them to a
    closed-form experiment must warn instead of silently ignoring."""

    def test_warns_and_result_is_unchanged(self, capsys):
        assert main(["run", "table3"]) == 0
        plain = capsys.readouterr().out
        assert main(["run", "table3", "--seed", "7", "--trials", "50"]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert captured.err.count("warning:") == 2
        assert "--seed ignored" in captured.err
        assert "--trials ignored" in captured.err
        assert "not a sampling experiment" in captured.err

    def test_no_warning_for_sampling_experiment(self, capsys):
        assert main(["run", "variance-trials", "--trials", "10",
                     "--seed", "1"]) == 0
        assert "warning" not in capsys.readouterr().err

    def test_no_warning_for_all(self, capsys, monkeypatch):
        from repro.experiments import base
        monkeypatch.setattr(base, "_REGISTRY", {
            "table3": base._REGISTRY["table3"]})
        assert main(["run", "all", "--seed", "7", "--no-cache"]) == 0
        assert "warning" not in capsys.readouterr().err


class TestReport:
    def test_writes_markdown(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["report", "--trials", "20", "--output", str(target),
                     "--no-cache"]) == 0
        text = target.read_text()
        assert text.startswith("# Reproduction report")
        assert "## table3" in text
        assert "## fig4" in text

    def test_parallel_report_matches_sequential(self, capsys, tmp_path,
                                                monkeypatch):
        from repro.experiments import base
        monkeypatch.setattr(base, "_REGISTRY", {
            k: base._REGISTRY[k] for k in ("table3", "majorization")})
        seq, par = tmp_path / "seq.md", tmp_path / "par.md"
        assert main(["report", "--trials", "30", "--output", str(seq),
                     "--no-cache", "--jobs", "1"]) == 0
        assert main(["report", "--trials", "30", "--output", str(par),
                     "--no-cache", "--jobs", "2"]) == 0
        assert par.read_text() == seq.read_text()

    def test_warmed_cache_round_trip(self, capsys, tmp_path, monkeypatch):
        from repro.experiments import base
        monkeypatch.setattr(base, "_REGISTRY", {
            "table3": base._REGISTRY["table3"]})
        target = tmp_path / "report.md"
        argv = ["report", "--output", str(target),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = target.read_text()
        assert main(argv) == 0
        assert target.read_text() == cold


class TestHecr:
    def test_computes(self, capsys):
        assert main(["hecr", "--profile", "1,0.5,0.25"]) == 0
        out = capsys.readouterr().out
        assert "HECR" in out
        assert "X(P)" in out

    def test_custom_params(self, capsys):
        assert main(["hecr", "--profile", "1,0.5", "--tau", "0.01",
                     "--pi", "0.001", "--delta", "0.5"]) == 0

    def test_bad_profile_returns_error_code(self, capsys):
        assert main(["hecr", "--profile", "1,abc"]) == 2
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run(self):
        args = build_parser().parse_args(["run", "table4"])
        assert args.command == "run"
        assert args.experiment == "table4"
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_parses_batch_flags(self):
        args = build_parser().parse_args(
            ["run", "all", "-j", "4", "--no-cache", "--cache-dir", "/tmp/c"])
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"

    def test_report_takes_batch_flags(self):
        args = build_parser().parse_args(["report", "--jobs", "2"])
        assert args.jobs == 2


class TestFaultFlags:
    def test_parses_fault_and_hardening_flags(self):
        args = build_parser().parse_args(
            ["run", "failure-resilience", "--faults", "crash:0@5",
             "--task-timeout", "2.5", "--retries", "3"])
        assert args.faults == "crash:0@5"
        assert args.task_timeout == 2.5
        assert args.retries == 3

    def test_run_with_faults_succeeds(self, capsys):
        assert main(["run", "failure-resilience",
                     "--faults", "crash:0@5,seed:3"]) == 0
        out = capsys.readouterr().out
        assert "recovery" in out

    def test_malformed_faults_spec_exit_code_3(self, capsys):
        assert main(["run", "failure-resilience",
                     "--faults", "bogus:xyz"]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error: FaultSpecError:")
        assert err.count("\n") == 1  # one-line diagnostic

    def test_faults_flag_on_faultless_experiment_warns(self, capsys):
        assert main(["run", "table3", "--faults", "crash:0@5"]) == 0
        assert "--faults" in capsys.readouterr().err

    def test_fault_family_batch_failure_exit_code_3(self, capsys, monkeypatch):
        from repro.errors import SimulationError
        from repro.experiments import base

        def sim_boom():
            raise SimulationError("channel wedged")
        monkeypatch.setitem(base._REGISTRY, "sim-boom", sim_boom)
        assert main(["run", "sim-boom"]) == 3
        assert "channel wedged" in capsys.readouterr().err

    def test_mixed_failures_keep_generic_exit_code_1(self, capsys, monkeypatch):
        from repro.experiments import base

        def boom():
            raise RuntimeError("plain failure")
        monkeypatch.setitem(base._REGISTRY, "boom2", boom)
        assert main(["run", "boom2"]) == 1
        capsys.readouterr()

    def test_jobs1_and_jobs2_fault_runs_match(self, capsys):
        spec = "crash~0.02,loss:0.05,seed:7"
        assert main(["run", "failure-resilience", "--faults", spec,
                     "--jobs", "1"]) == 0
        seq = capsys.readouterr().out
        assert main(["run", "failure-resilience", "--faults", spec,
                     "--jobs", "2"]) == 0
        par = capsys.readouterr().out
        assert seq == par


class TestEngineFlag:
    """`run --engine {auto,events,analytic}` selects the simulation
    engine process-wide (and, via REPRO_SIM_ENGINE, in batch workers)."""

    @pytest.fixture(autouse=True)
    def _restore_engine(self, monkeypatch):
        from repro.simulation.runner import default_engine, set_default_engine
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        previous = default_engine()
        yield
        set_default_engine(previous)

    def test_parses_engine(self):
        args = build_parser().parse_args(
            ["run", "table3", "--engine", "analytic"])
        assert args.engine == "analytic"
        assert build_parser().parse_args(["run", "table3"]).engine is None

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table3", "--engine", "warp"])

    def test_engine_sets_process_default_and_env(self, capsys):
        import os

        from repro.simulation.runner import default_engine
        assert main(["run", "table3", "--engine", "events"]) == 0
        assert default_engine() == "events"
        assert os.environ["REPRO_SIM_ENGINE"] == "events"
        capsys.readouterr()

    def test_analytic_with_faults_exit_code_3(self, capsys):
        from repro.simulation.runner import default_engine
        assert main(["run", "failure-resilience", "--faults", "crash:0@5",
                     "--engine", "analytic"]) == 3
        err = capsys.readouterr().err
        assert "--engine analytic" in err
        assert "--faults" in err
        # Refused before any state change.
        assert default_engine() == "auto"

    def _probe_output(self, capsys, engine):
        assert main(["run", "sim-probe", "--engine", engine,
                     "--format", "csv"]) == 0
        header, row = capsys.readouterr().out.strip().splitlines()
        assert header == "work,events"
        work, events = row.split(",")
        return float(work), int(events)

    def test_engine_governs_simulations(self, capsys, monkeypatch):
        from repro.core.params import ModelParams
        from repro.core.profile import Profile
        from repro.experiments import base
        from repro.experiments.base import ExperimentResult
        from repro.protocols.fifo import fifo_allocation
        from repro.simulation.runner import simulate_allocation

        def sim_probe():
            alloc = fifo_allocation(
                Profile([1.0, 0.5, 0.25]),
                ModelParams(tau=1e-3, pi=1e-4, delta=1.0), 20.0)
            result = simulate_allocation(alloc)  # engine=None -> default
            return ExperimentResult(
                experiment_id="sim-probe", title="engine probe",
                headers=("work", "events"),
                rows=[(repr(result.completed_work),
                       result.events_processed)])
        monkeypatch.setitem(base._REGISTRY, "sim-probe", sim_probe)

        analytic_work, analytic_events = self._probe_output(capsys, "analytic")
        events_work, events_events = self._probe_output(capsys, "events")
        auto_work, auto_events = self._probe_output(capsys, "auto")
        assert analytic_events == 0          # no event loop ran
        assert events_events > 0
        assert auto_events == 0              # auto takes the fast path
        tol = 1e-9 * max(1.0, events_work)
        assert abs(analytic_work - events_work) <= tol
        assert abs(auto_work - events_work) <= tol
