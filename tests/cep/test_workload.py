"""Unit tests for repro.cep.workload and the granularity rescaling."""

import pytest

from repro.cep.workload import Workload
from repro.core.params import PAPER_TABLE1
from repro.errors import InvalidParameterError


class TestGranularityRescale:
    def test_finer_tasks_scale_rates_up(self):
        finer = PAPER_TABLE1.with_task_granularity(0.1)
        assert finer.tau == pytest.approx(1e-5)
        assert finer.pi == pytest.approx(1e-4)
        assert finer.delta == PAPER_TABLE1.delta

    def test_identity_rescale(self):
        same = PAPER_TABLE1.with_task_granularity(1.0)
        assert same == PAPER_TABLE1

    def test_table2_fine_row(self):
        # B for 0.1 s tasks, re-expressed in seconds: 0.1·(1 + (1+δ)π').
        finer = PAPER_TABLE1.with_task_granularity(0.1)
        assert 0.1 * finer.B == pytest.approx(0.100020)

    def test_roundtrip(self):
        there = PAPER_TABLE1.with_task_granularity(0.25)
        back = there.with_task_granularity(1.0, reference_seconds_per_task=0.25)
        assert back.tau == pytest.approx(PAPER_TABLE1.tau)

    def test_rejects_bad_granularity(self):
        with pytest.raises(InvalidParameterError):
            PAPER_TABLE1.with_task_granularity(0.0)


class TestWorkload:
    def test_work_units_equal_tasks(self):
        assert Workload(n_tasks=500).work_units == 500.0

    def test_wall_clock_roundtrip(self):
        w = Workload(n_tasks=10, seconds_per_task=0.2)
        assert w.from_wall_clock(w.to_wall_clock(42.0)) == pytest.approx(42.0)

    def test_completion_seconds_consistency(self, paper_params, table4_profile):
        w = Workload(n_tasks=1000, seconds_per_task=1.0)
        seconds = w.completion_seconds(table4_profile, paper_params)
        crp = w.rental_problem(table4_profile, paper_params)
        assert seconds == pytest.approx(crp.optimal_lifespan)

    def test_finer_tasks_same_wall_clock_story(self, table4_profile):
        # 1000 coarse tasks at 1 s/task vs 10000 fine tasks at 0.1 s/task:
        # the same total computation; wall-clock completion must agree to
        # within the (tiny) change in communication overhead share.
        coarse = Workload(n_tasks=1000, seconds_per_task=1.0)
        fine = Workload(n_tasks=10_000, seconds_per_task=0.1)
        t_coarse = coarse.completion_seconds(table4_profile, PAPER_TABLE1)
        t_fine = fine.completion_seconds(
            table4_profile, PAPER_TABLE1.with_task_granularity(0.1))
        # Fine tasks pay 10x the per-compute communication, so they finish
        # slightly LATER — by about the overhead share (~0.1%), no more.
        assert t_fine > t_coarse
        assert t_fine == pytest.approx(t_coarse, rel=2e-3)

    def test_exploitation_problem_lifespan_units(self, paper_params, table4_profile):
        w = Workload(n_tasks=10, seconds_per_task=0.5)
        cep = w.exploitation_problem(table4_profile, paper_params, 30.0)
        assert cep.lifespan == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Workload(n_tasks=0)
        with pytest.raises(InvalidParameterError):
            Workload(n_tasks=5, seconds_per_task=-1.0)
        with pytest.raises(InvalidParameterError):
            Workload(n_tasks=5).from_wall_clock(0.0)
