"""Unit tests for repro.cep — CEP/CRP duality and rental solving."""

import pytest

from repro.cep.problem import ClusterExploitationProblem, ClusterRentalProblem
from repro.cep.rental import min_prefix_for_deadline, rent_cluster, scale_allocation
from repro.core.measure import work_production, work_rate
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.protocols.feasibility import check_allocation
from repro.protocols.fifo import fifo_allocation
from repro.simulation.runner import simulate_allocation


class TestProblems:
    def test_cep_optimal_work(self, paper_params, table4_profile):
        cep = ClusterExploitationProblem(table4_profile, paper_params, 100.0)
        assert cep.optimal_work == pytest.approx(
            work_production(table4_profile, paper_params, 100.0))

    def test_crp_optimal_lifespan(self, paper_params, table4_profile):
        crp = ClusterRentalProblem(table4_profile, paper_params, 500.0)
        assert crp.optimal_lifespan == pytest.approx(
            500.0 / work_rate(table4_profile, paper_params))

    def test_duality_roundtrip(self, paper_params, table4_profile):
        cep = ClusterExploitationProblem(table4_profile, paper_params, 100.0)
        assert cep.dual().dual().lifespan == pytest.approx(100.0, rel=1e-12)

    def test_crp_dual_roundtrip(self, paper_params, table4_profile):
        crp = ClusterRentalProblem(table4_profile, paper_params, 42.0)
        assert crp.dual().dual().workload == pytest.approx(42.0, rel=1e-12)

    def test_rejects_bad_inputs(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            ClusterExploitationProblem(table4_profile, paper_params, -1.0)
        with pytest.raises(InvalidParameterError):
            ClusterRentalProblem(table4_profile, paper_params, 0.0)


class TestRental:
    def test_rent_cluster_hits_workload_exactly(self, paper_params, table4_profile):
        crp = ClusterRentalProblem(table4_profile, paper_params, 123.0)
        alloc = rent_cluster(crp)
        assert alloc.total_work == pytest.approx(123.0, rel=1e-12)
        assert alloc.lifespan == pytest.approx(crp.optimal_lifespan, rel=1e-12)

    def test_rented_schedule_feasible_and_simulable(self, heavy_comm_params,
                                                    table4_profile):
        crp = ClusterRentalProblem(table4_profile, heavy_comm_params, 50.0)
        alloc = rent_cluster(crp)
        assert check_allocation(alloc).feasible
        result = simulate_allocation(alloc)
        assert result.completed_work == pytest.approx(50.0, rel=1e-9)

    def test_scale_allocation(self, paper_params, table4_profile):
        alloc = fifo_allocation(table4_profile, paper_params, 10.0)
        doubled = scale_allocation(alloc, 2.0)
        assert doubled.total_work == pytest.approx(2.0 * alloc.total_work)
        assert doubled.lifespan == pytest.approx(20.0)

    def test_scale_rejects_nonpositive(self, paper_params, table4_profile):
        alloc = fifo_allocation(table4_profile, paper_params, 10.0)
        with pytest.raises(InvalidParameterError):
            scale_allocation(alloc, 0.0)


class TestCapacityPlanning:
    def test_fastest_prefix_suffices(self, paper_params):
        profile = Profile([1.0, 0.5, 0.25, 0.125])
        # Workload small enough that the single fastest machine meets it.
        k = min_prefix_for_deadline(profile, paper_params, workload=1.0,
                                    deadline=10.0)
        assert k == 1

    def test_more_work_needs_more_machines(self, paper_params):
        profile = Profile([1.0, 0.5, 0.25, 0.125])
        k_small = min_prefix_for_deadline(profile, paper_params, 10.0, 2.0)
        k_large = min_prefix_for_deadline(profile, paper_params, 25.0, 2.0)
        assert k_large >= k_small

    def test_impossible_deadline(self, paper_params):
        profile = Profile([1.0, 0.5])
        assert min_prefix_for_deadline(profile, paper_params, 1000.0, 0.5) == -1

    def test_rejects_bad_inputs(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            min_prefix_for_deadline(table4_profile, paper_params, -1.0, 1.0)
