"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import FIG34_CALIBRATION, PAPER_TABLE1, ModelParams
from repro.core.profile import Profile


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    """Keep the batch result cache out of the user's real cache home.

    Tests that exercise the cache pass an explicit ``--cache-dir``; this
    guard catches everything else (e.g. ``run all`` defaults) so a test
    run never reads or pollutes ``~/.cache/repro-hetero``.
    """
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("result-cache")))


@pytest.fixture(autouse=True)
def _isolated_run_store(tmp_path_factory, monkeypatch):
    """Keep the run-history store out of the user's real state home.

    The service and the ``run``/``obs`` CLI persist telemetry rows by
    default; pointing ``$REPRO_OBS_DIR`` at a per-session temp directory
    keeps test runs from reading or polluting
    ``~/.local/state/repro-hetero``.
    """
    monkeypatch.setenv(
        "REPRO_OBS_DIR", str(tmp_path_factory.mktemp("run-store")))


@pytest.fixture
def paper_params() -> ModelParams:
    """The Table-1 environment (τ=1e-6, π=1e-5, δ=1)."""
    return PAPER_TABLE1


@pytest.fixture
def fig34_params() -> ModelParams:
    """The Figure-3/4 calibration (τ=0.2)."""
    return FIG34_CALIBRATION


@pytest.fixture
def heavy_comm_params() -> ModelParams:
    """A communication-heavy but still schedulable environment."""
    return ModelParams(tau=0.05, pi=0.01, delta=1.0)


@pytest.fixture
def table4_profile() -> Profile:
    """The paper's 4-computer cluster ⟨1, 1/2, 1/3, 1/4⟩."""
    return Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible sampling tests."""
    return np.random.default_rng(20100419)


#: A spread of environments used by parametrised tests: from the paper's
#: compute-dominant regime to strongly communication-flavoured ones.
PARAM_GRID = [
    PAPER_TABLE1,
    ModelParams(tau=1e-3, pi=1e-4, delta=1.0),
    ModelParams(tau=1e-2, pi=1e-3, delta=0.5),
    ModelParams(tau=0.05, pi=0.01, delta=1.0),
    ModelParams(tau=1e-4, pi=0.0, delta=0.0),
    FIG34_CALIBRATION,
]

#: A spread of cluster shapes used by parametrised tests.
PROFILE_GRID = [
    Profile([1.0]),
    Profile([1.0, 1.0]),
    Profile([1.0, 0.5]),
    Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0]),
    Profile.linear(8),
    Profile.harmonic(8),
    Profile.geometric(6, 0.5),
    Profile.two_point(3, 2, 1.0, 0.1),
]
