"""Determinism guarantees of the batch engine, end to end through the CLI.

The contract under test (see docs/BATCH.md): ``run all --jobs N --seed S``
is row-for-row identical to ``--jobs 1 --seed S``, and a warmed cache
serves bit-identical JSON exports.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import base

#: Registry subset exercised end to end: two sharded sampling
#: experiments plus two deterministic closed-form ones.
_SUBSET = ("variance-trials", "majorization", "table3", "table4")


@pytest.fixture()
def small_registry(monkeypatch):
    monkeypatch.setattr(base, "_REGISTRY", {
        k: base._REGISTRY[k] for k in _SUBSET})


def _run_all_json(capsys, *extra) -> list[dict]:
    assert main(["run", "all", "--json", "--trials", "60", "--seed", "9",
                 "--no-cache", *extra]) == 0
    return json.loads(capsys.readouterr().out)


class TestJobsInvariance:
    def test_jobs4_rows_identical_to_jobs1(self, capsys, small_registry):
        sequential = _run_all_json(capsys, "--jobs", "1")
        parallel = _run_all_json(capsys, "--jobs", "4")
        assert [p["experiment_id"] for p in parallel] == sorted(_SUBSET)
        for seq, par in zip(sequential, parallel):
            assert seq["experiment_id"] == par["experiment_id"]
            assert seq["rows"] == par["rows"], (
                f"{seq['experiment_id']}: --jobs 4 drifted from --jobs 1")
            assert seq["notes"] == par["notes"]

    def test_same_seed_same_rows_across_invocations(self, capsys,
                                                    small_registry):
        first = _run_all_json(capsys, "--jobs", "2")
        second = _run_all_json(capsys, "--jobs", "2")
        assert [p["rows"] for p in first] == [p["rows"] for p in second]


class TestWarmedCache:
    def test_warmed_cache_exports_are_bit_identical(self, tmp_path, capsys,
                                                    small_registry):
        out = tmp_path / "all.json"
        argv = ["run", "all", "--json", "--trials", "60", "--seed", "9",
                "--cache-dir", str(tmp_path / "cache"), "--output", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        cold = out.read_bytes()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert f"{len(_SUBSET)} cached" in err
        assert out.read_bytes() == cold

    def test_no_cache_flag_forces_recompute(self, tmp_path, capsys,
                                            small_registry):
        argv = ["run", "all", "--json", "--trials", "60", "--seed", "9",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--no-cache"]) == 0
        assert "cached" not in capsys.readouterr().err
