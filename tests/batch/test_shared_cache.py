"""Unit tests for the process-shared cache tier (repro.batch.shared_cache)."""

import json
import os
import threading
import time

import pytest

from repro.batch.shared_cache import SharedCache
from repro.errors import InvalidParameterError


class TestPublishedTier:
    def test_miss_then_hit(self, tmp_path):
        cache = SharedCache(tmp_path)
        assert cache.get("k") is None
        assert cache.put("k", {"answer": 42}) is True
        assert cache.get("k") == {"answer": 42}

    def test_ttl_expiry(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.put("k", "v", ttl=0.05)
        assert cache.get("k") == "v"
        time.sleep(0.08)
        assert cache.get("k") is None
        # expired entries are evicted, not left to rot
        assert not cache._entry_path("k").exists()

    def test_no_ttl_means_no_expiry(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.put("k", "v")
        got = cache.get_with_expiry("k")
        assert got == ("v", None)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.put("k", "v")
        cache._entry_path("k").write_text("{not json")
        assert cache.get("k") is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.put("k", "v")
        # Simulate a renamed/collided file: key inside != key asked for.
        doc = json.loads(cache._entry_path("k").read_text())
        cache._entry_path("other").write_text(json.dumps(doc))
        assert cache.get("other") is None

    def test_unjsonable_value_is_not_published(self, tmp_path):
        cache = SharedCache(tmp_path)
        assert cache.put("k", float("inf")) is False
        assert cache.get("k") is None

    def test_exotic_keys_become_safe_filenames(self, tmp_path):
        cache = SharedCache(tmp_path)
        key = "a/b:c d\x00e"
        cache.put(key, "v")
        assert cache.get(key) == "v"
        assert all(p.parent == tmp_path for p in tmp_path.iterdir())

    def test_validation(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            SharedCache(tmp_path, stale_claim=0)
        with pytest.raises(InvalidParameterError):
            SharedCache(tmp_path, poll_interval=-1)


class TestClaims:
    def test_first_claimant_wins(self, tmp_path):
        a, b = SharedCache(tmp_path), SharedCache(tmp_path)
        token = a.try_claim("k")
        assert token is not None
        assert b.try_claim("k") is None
        a.release_claim("k", token)
        assert b.try_claim("k") is not None

    def test_release_requires_matching_token(self, tmp_path):
        cache = SharedCache(tmp_path)
        token = cache.try_claim("k")
        cache.release_claim("k", "not-the-token")
        assert cache.try_claim("k") is None  # still held
        cache.release_claim("k", token)
        assert cache.try_claim("k") is not None

    def test_dead_pid_claim_is_stale(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache._claim_path("k").write_text(json.dumps(
            {"pid": 2 ** 22 + 1, "token": "x", "time": time.time()}))
        assert cache._claim_is_stale("k") is True

    def test_live_claim_is_not_stale(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.try_claim("k")  # our own pid, fresh
        assert cache._claim_is_stale("k") is False

    def test_old_claim_is_stale_even_if_unparseable(self, tmp_path):
        cache = SharedCache(tmp_path, stale_claim=0.05)
        path = cache._claim_path("k")
        path.write_text("garbage")
        old = time.time() - 1.0
        os.utime(path, (old, old))
        assert cache._claim_is_stale("k") is True


class TestGetOrCompute:
    def test_leader_computes_and_publishes(self, tmp_path):
        cache = SharedCache(tmp_path)
        value, outcome = cache.get_or_compute("k", lambda: {"n": 1})
        assert (value, outcome) == ({"n": 1}, "leader")
        assert cache.get("k") == {"n": 1}
        assert not cache._claim_path("k").exists()  # claim released

    def test_second_call_is_a_hit(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.get_or_compute("k", lambda: "v")
        calls = []
        value, outcome = cache.get_or_compute(
            "k", lambda: calls.append(1) or "recomputed")
        assert (value, outcome) == ("v", "hit")
        assert calls == []

    def test_follower_awaits_the_leader(self, tmp_path):
        leader_cache = SharedCache(tmp_path)
        follower_cache = SharedCache(tmp_path, poll_interval=0.002)
        gate = threading.Event()
        computes = []

        def slow_compute():
            computes.append(1)
            gate.wait(5.0)
            return "computed-once"

        results = {}

        def leader():
            results["leader"] = leader_cache.get_or_compute("k", slow_compute)

        def follower():
            results["follower"] = follower_cache.get_or_compute(
                "k", slow_compute)

        t_leader = threading.Thread(target=leader)
        t_leader.start()
        while not computes:  # leader holds the claim now
            time.sleep(0.001)
        t_follower = threading.Thread(target=follower)
        t_follower.start()
        time.sleep(0.05)  # follower is polling against the claim
        gate.set()
        t_leader.join(10)
        t_follower.join(10)
        assert computes == [1]
        assert results["leader"] == ("computed-once", "leader")
        assert results["follower"] == ("computed-once", "follower")

    def test_leader_exception_releases_the_claim(self, tmp_path):
        cache = SharedCache(tmp_path)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(
                RuntimeError("compute failed")))
        # The claim must not wedge the key forever.
        value, outcome = cache.get_or_compute("k", lambda: "second-try")
        assert (value, outcome) == ("second-try", "leader")

    def test_unpublishable_value_tombstones(self, tmp_path):
        cache = SharedCache(tmp_path)
        value, outcome = cache.get_or_compute(
            "k", lambda: {"error": "boom"},
            publishable=lambda v: v.get("error") is None)
        assert outcome == "local"
        assert value == {"error": "boom"}
        # Followers see the tombstone and compute locally too.
        value2, outcome2 = cache.get_or_compute(
            "k", lambda: {"error": "again"},
            publishable=lambda v: v.get("error") is None)
        assert (value2["error"], outcome2) == ("again", "local")

    def test_crashed_claimant_is_taken_over(self, tmp_path):
        cache = SharedCache(tmp_path)
        # A claim from a process that no longer exists (pid beyond
        # pid_max) with a fresh timestamp: dead-pid takeover, not age.
        cache._claim_path("k").write_text(json.dumps(
            {"pid": 2 ** 22 + 1, "token": "x", "time": time.time()}))
        value, outcome = cache.get_or_compute("k", lambda: "rescued")
        assert (value, outcome) == ("rescued", "leader")
        assert cache.stats.takeovers == 1

    def test_wait_timeout_degrades_to_local_compute(self, tmp_path):
        holder = SharedCache(tmp_path)
        waiter = SharedCache(tmp_path, poll_interval=0.002)
        holder.try_claim("k")  # a live claim that never publishes
        value, outcome = waiter.get_or_compute("k", lambda: "gave-up",
                                               wait_timeout=0.05)
        assert (value, outcome) == ("gave-up", "local")

    def test_stats_accumulate(self, tmp_path):
        cache = SharedCache(tmp_path)
        cache.get_or_compute("k", lambda: "v")
        cache.get_or_compute("k", lambda: "v")
        stats = cache.stats.as_dict()
        assert stats["leads"] == 1
        assert stats["hits"] == 1
