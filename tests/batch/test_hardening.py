"""Fault tolerance of the batch engine: crashes, hangs, retries, fallback.

The injected faults fire only inside pool worker processes (guarded on
the process name), so the sequential in-process fallback — and the
``--jobs 1`` path — always see a healthy function.  That is exactly the
failure mode the hardening targets: the *pool* is unreliable, the work
itself is fine.
"""

import multiprocessing
import os
import time

import pytest

from repro.batch import run_batch
from repro.errors import InvalidParameterError
from repro.experiments import base
from repro.experiments.base import ExperimentResult
from repro.obs import MetricsRegistry, Observation, observe


def _in_pool_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def _ok(experiment_id: str) -> ExperimentResult:
    return ExperimentResult(experiment_id=experiment_id, title="stub",
                            headers=("x",), rows=((1,),))


def crashy():
    """Hard-kills any pool worker that runs it; fine in the main process."""
    if _in_pool_worker():
        os._exit(3)
    return _ok("crashy")


def hangs():
    """Never returns inside a pool worker; instant in the main process."""
    if _in_pool_worker():
        time.sleep(60.0)
    return _ok("hangs")


def napper():
    time.sleep(0.2 if _in_pool_worker() else 0.0)
    return _ok("napper")


def _metric_names(registry: MetricsRegistry) -> set[str]:
    return {m["name"] for m in registry.dump()["metrics"]}


class TestValidation:
    def test_rejects_negative_retries(self):
        with pytest.raises(InvalidParameterError):
            run_batch(["table3"], retries=-1)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(InvalidParameterError):
            run_batch(["table3"], task_timeout=0.0)

    def test_rejects_negative_respawns(self):
        with pytest.raises(InvalidParameterError):
            run_batch(["table3"], max_pool_respawns=-1)


class TestCrashRecovery:
    def test_persistent_crash_falls_back_to_sequential(self, monkeypatch):
        monkeypatch.setitem(base._REGISTRY, "crashy", crashy)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            with pytest.warns(RuntimeWarning, match="sequential"):
                report = run_batch(["crashy"], jobs=2, retries=3,
                                   retry_backoff=0.0, max_pool_respawns=1)
        assert not report.failures
        assert report.results[0].rows == ((1,),)
        names = _metric_names(registry)
        assert "batch_pool_respawns_total" in names
        assert "batch_sequential_fallback_total" in names
        assert "batch_task_retries_total" in names

    def test_crash_with_no_retries_is_a_clean_failure(self, monkeypatch):
        monkeypatch.setitem(base._REGISTRY, "crashy", crashy)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            report = run_batch(["crashy"], jobs=2, retries=0,
                               retry_backoff=0.0, max_pool_respawns=2)
        failure, = report.failures
        assert failure.experiment_id == "crashy"
        assert "BrokenProcessPool" in failure.error
        assert "batch_pool_respawns_total" in _metric_names(registry)

    def test_innocent_experiments_survive_a_crashing_neighbour(
            self, monkeypatch):
        monkeypatch.setitem(base._REGISTRY, "crashy", crashy)
        with pytest.warns(RuntimeWarning):
            report = run_batch(["table3", "crashy", "table4"], jobs=2,
                               retries=2, retry_backoff=0.0,
                               max_pool_respawns=1)
        assert not report.failures
        assert {r.experiment_id for r in report.results} == {
            "table3", "crashy", "table4"}


class TestTransientRetry:
    def test_transient_failure_succeeds_on_retry(self, monkeypatch, tmp_path):
        marker = tmp_path / "first-attempt"

        def flaky():
            if not marker.exists():
                marker.write_text("seen")
                raise RuntimeError("transient glitch")
            return _ok("flaky")

        monkeypatch.setitem(base._REGISTRY, "flaky", flaky)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            report = run_batch(["flaky"], jobs=2, retries=1,
                               retry_backoff=0.0)
        assert not report.failures
        assert "batch_task_retries_total" in _metric_names(registry)

    def test_exhausted_retries_report_the_last_error(self, monkeypatch):
        def doomed():
            raise RuntimeError("always broken")

        monkeypatch.setitem(base._REGISTRY, "doomed", doomed)
        report = run_batch(["doomed"], jobs=2, retries=1, retry_backoff=0.0)
        failure, = report.failures
        assert "always broken" in failure.error


class TestHangDetection:
    def test_hung_task_times_out_and_fails(self, monkeypatch):
        monkeypatch.setitem(base._REGISTRY, "hangs", hangs)
        registry = MetricsRegistry()
        start = time.monotonic()
        with observe(Observation(registry=registry)):
            report = run_batch(["hangs"], jobs=2, retries=0,
                               task_timeout=0.5, max_pool_respawns=2)
        elapsed = time.monotonic() - start
        failure, = report.failures
        assert "TimeoutError" in failure.error
        assert elapsed < 30.0  # the 60 s sleep was reaped, not awaited
        assert "batch_task_timeouts_total" in _metric_names(registry)

    def test_innocents_requeue_without_burning_retries(self, monkeypatch):
        # retries=0: any attempt penalty turns into a failure, so the
        # nappers finishing proves they were requeued penalty-free when
        # the hung pool was torn down around them.
        monkeypatch.setitem(base._REGISTRY, "hangs", hangs)
        for i in range(3):
            monkeypatch.setitem(base._REGISTRY, f"nap{i}", napper)
        report = run_batch(["hangs", "nap0", "nap1", "nap2"], jobs=2,
                           retries=0, task_timeout=0.6, retry_backoff=0.0,
                           max_pool_respawns=3)
        assert [i.experiment_id for i in report.failures] == ["hangs"]
        succeeded = {i.experiment_id for i in report.items
                     if i.result is not None}
        assert succeeded == {"nap0", "nap1", "nap2"}
