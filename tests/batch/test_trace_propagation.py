"""Cross-process trace propagation through the batch engine.

One ``run_batch --jobs N`` must yield a *single* coherent span tree:
every record — coordinator-side batch span, worker-side experiment and
shard spans — carries the same trace id, and every worker root parents
onto the coordinator's ``batch:run`` span.
"""

import pickle

from repro.batch import run_batch
from repro.obs import Observation, TraceContext, Tracer, observe
from repro.obs.tracing import new_span_id

_FAST_IDS = ["table3", "majorization"]
_FAST_KWARGS = {"majorization": {"trials_per_size": 30, "seed": 5}}


def _traced_batch(jobs: int, **kwargs) -> Tracer:
    tracer = Tracer(keep_records=True)
    with observe(Observation(tracer=tracer)):
        report = run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS,
                           jobs=jobs, **kwargs)
    assert not report.failures
    return tracer


class TestTraceContext:
    def test_pickle_round_trip(self):
        ctx = TraceContext(trace_id="t" * 32, span_id="s" * 16, epoch=12.5)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.trace_id == ctx.trace_id
        assert clone.span_id == ctx.span_id
        assert clone.epoch == ctx.epoch

    def test_tracer_context_captures_active_span(self):
        tracer = Tracer(keep_records=True)
        with tracer.span("outer"):
            ctx = tracer.context()
        assert ctx.trace_id == tracer.trace_id
        assert ctx.span_id is not None

    def test_from_context_links_child_tracer(self):
        parent = Tracer(keep_records=True)
        with parent.span("root"):
            ctx = parent.context()
        child = Tracer.from_context(ctx, keep_records=True)
        with child.span("remote"):
            pass
        record, = child.records
        assert record["trace_id"] == parent.trace_id
        assert record["parent_id"] == ctx.span_id


class TestSingleTree:
    def _assert_one_tree(self, tracer: Tracer) -> None:
        records = tracer.records
        assert records, "traced batch produced no records"
        trace_ids = {r["trace_id"] for r in records}
        assert trace_ids == {tracer.trace_id}
        span_ids = {r["span_id"] for r in records if "span_id" in r}
        batch_span, = tracer.records_named("batch:run")
        for record in records:
            parent = record.get("parent_id")
            if record is batch_span:
                continue
            assert parent is None or parent in span_ids, (
                f"{record['name']} dangles from unknown parent {parent}")

    def test_sequential_batch_is_one_tree(self):
        self._assert_one_tree(_traced_batch(jobs=1))

    def test_pool_batch_is_one_tree(self):
        tracer = _traced_batch(jobs=2)
        self._assert_one_tree(tracer)
        # worker-side records were ingested with provenance
        worker_records = [r for r in tracer.records
                          if r["attrs"].get("worker_pid")]
        assert worker_records, "pool run produced no worker records"
        # every worker-side root hangs off the coordinator's batch span
        batch_span, = tracer.records_named("batch:run")
        roots = [r for r in worker_records if r.get("depth") == 0]
        assert roots
        assert {r["parent_id"] for r in roots} == {batch_span["span_id"]}

    def test_trace_parent_reparents_batch_span(self):
        request_span = new_span_id()
        tracer = Tracer(keep_records=True)
        with observe(Observation(tracer=tracer)):
            report = run_batch(["table3"], jobs=1,
                               trace_parent=request_span)
        assert not report.failures
        batch_span, = tracer.records_named("batch:run")
        assert batch_span["parent_id"] == request_span

    def test_untraced_batch_emits_nothing(self):
        report = run_batch(["table3"], jobs=1)
        assert not report.failures  # no ambient tracer, no spans, no crash
