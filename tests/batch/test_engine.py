"""Unit tests for the batch execution engine (repro.batch.engine)."""

import pytest

from repro.batch import ResultCache, run_batch
from repro.errors import InvalidParameterError
from repro.experiments import base
from repro.obs import MetricsRegistry, Observation, Tracer, observe

#: A fast subset covering both execution shapes: unshardable (table3,
#: table4) and sharded (majorization).
_FAST_IDS = ["table3", "table4", "majorization"]
_FAST_KWARGS = {"majorization": {"trials_per_size": 30, "seed": 5}}


class TestSequential:
    def test_runs_in_input_order(self):
        report = run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS, jobs=1)
        assert not report.failures
        assert [r.experiment_id for r in report.results] == _FAST_IDS
        assert report.jobs == 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(InvalidParameterError):
            run_batch(["table3"], jobs=0)

    def test_unknown_experiment_is_an_item_error(self):
        report = run_batch(["no-such-experiment"], jobs=1)
        assert [i.experiment_id for i in report.failures] == ["no-such-experiment"]
        assert report.results == []


class TestPool:
    def test_parallel_matches_sequential(self):
        seq = run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS, jobs=1)
        par = run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS, jobs=2)
        assert not par.failures
        for a, b in zip(seq.results, par.results):
            assert a.experiment_id == b.experiment_id
            assert a.rows == b.rows

    def test_sharded_item_reports_shard_count_and_obs(self):
        report = run_batch(["majorization"], kwargs_by_id=_FAST_KWARGS, jobs=2)
        item, = report.items
        assert item.shards > 1
        obs = item.result.metadata["obs"]
        assert obs["shards"] == item.shards
        assert obs["wall_seconds"] >= 0.0

    def test_worker_failure_is_isolated(self, monkeypatch):
        def boom():
            raise RuntimeError("kaboom")
        monkeypatch.setitem(base._REGISTRY, "boom", boom)
        report = run_batch(["table3", "boom", "table4"], jobs=2)
        assert [i.experiment_id for i in report.failures] == ["boom"]
        assert "kaboom" in report.failures[0].error
        assert [r.experiment_id for r in report.results] == ["table3", "table4"]

    def test_worker_metrics_merge_into_ambient_registry(self):
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS, jobs=2)
        from repro.obs.export import prometheus_text
        text = prometheus_text(registry)
        assert 'experiment_runs_total{experiment="table3"}' in text
        assert 'experiment_runs_total{experiment="majorization"}' in text
        assert "experiment_shards_total" in text

    def test_worker_traces_ingest_into_ambient_tracer(self):
        tracer = Tracer(keep_records=True)
        with observe(Observation(tracer=tracer, registry=MetricsRegistry())):
            run_batch(["table3", "majorization"],
                      kwargs_by_id=_FAST_KWARGS, jobs=2)
        names = {r["name"] for r in tracer.records}
        assert "experiment:table3" in names
        assert any(n.startswith("shard:majorization[") for n in names)
        pids = {r["attrs"]["worker_pid"] for r in tracer.records
                if "worker_pid" in r.get("attrs", {})}
        assert pids  # worker records are attributed to their process


class TestCacheIntegration:
    def test_second_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS, jobs=1,
                          cache=cache)
        assert first.cache_hits == 0
        assert first.cache_misses == len(_FAST_IDS)
        second = run_batch(_FAST_IDS, kwargs_by_id=_FAST_KWARGS, jobs=1,
                           cache=cache)
        assert second.cache_hits == len(_FAST_IDS)
        assert all(item.cached for item in second.items)
        for a, b in zip(first.results, second.results):
            # Cached rows come back as tuples (JSON fidelity); values match.
            assert [tuple(r) for r in a.rows] == [tuple(r) for r in b.rows]

    def test_cached_failures_are_not_stored(self, tmp_path, monkeypatch):
        def boom():
            raise RuntimeError("kaboom")
        monkeypatch.setitem(base._REGISTRY, "boom", boom)
        cache = ResultCache(tmp_path)
        run_batch(["boom"], jobs=1, cache=cache)
        assert list(tmp_path.glob("*.json")) == []

    def test_cache_respects_kwargs(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs_a = {"majorization": {"trials_per_size": 30, "seed": 5}}
        kwargs_b = {"majorization": {"trials_per_size": 30, "seed": 6}}
        run_batch(["majorization"], kwargs_by_id=kwargs_a, jobs=1, cache=cache)
        report = run_batch(["majorization"], kwargs_by_id=kwargs_b, jobs=1,
                           cache=cache)
        assert report.cache_hits == 0  # different seed, different key


class TestObsMetadata:
    def test_sharded_result_rss_is_a_delta_not_inherited(self):
        """A later sharded run must not inherit the session's RSS peak."""
        report = run_batch(["majorization"], kwargs_by_id=_FAST_KWARGS, jobs=2)
        rss = report.items[0].result.metadata["obs"]["peak_rss_bytes"]
        if rss is not None:  # platforms without resource report None
            # A 30-trial study cannot plausibly allocate half the footprint
            # of a warmed-up test session; inherited ru_maxrss would.
            import resource
            session_peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
            assert rss <= session_peak
