"""Unit tests for the content-addressed result cache (repro.batch.cache)."""

import json

from repro.batch.cache import ResultCache, default_cache_dir
from repro.experiments.base import ExperimentResult


def _result(**overrides) -> ExperimentResult:
    fields = dict(experiment_id="table3", title="t",
                  headers=("a", "b"), rows=((1, 2.5), (3, None)),
                  notes=("a note",), metadata={"k": "v"})
    fields.update(overrides)
    return ExperimentResult(**fields)


class TestKey:
    def test_stable_across_calls(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert (cache.key("table3", {"seed": 1})
                == cache.key("table3", {"seed": 1}))

    def test_sensitive_to_id_kwargs_and_order_insensitive(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("table3", {"seed": 1, "trials_per_size": 10})
        assert cache.key("table4", {"seed": 1, "trials_per_size": 10}) != base
        assert cache.key("table3", {"seed": 2, "trials_per_size": 10}) != base
        # Canonical JSON: kwarg insertion order must not matter.
        assert cache.key("table3", {"trials_per_size": 10, "seed": 1}) == base

    def test_folds_in_package_version(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        before = cache.key("table3", {})
        monkeypatch.setattr("repro.batch.cache.__version__", "999.0.0")
        assert cache.key("table3", {}) != before


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("table3", {"seed": 1}) is None
        assert cache.put("table3", {"seed": 1}, _result()) is True
        got = cache.get("table3", {"seed": 1})
        assert got is not None
        assert got.rows == ((1, 2.5), (3, None))
        assert got.metadata == {"k": "v"}

    def test_different_kwargs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("table3", {"seed": 1}, _result(title="one"))
        cache.put("table3", {"seed": 2}, _result(title="two"))
        assert cache.get("table3", {"seed": 1}).title == "one"
        assert cache.get("table3", {"seed": 2}).title == "two"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("table3", {}, _result())
        entry, = tmp_path.glob("table3-*.json")
        entry.write_text("{not json")
        assert cache.get("table3", {}) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("table3", {}, _result())
        entry, = tmp_path.glob("table3-*.json")
        payload = json.loads(entry.read_text())
        payload["schema_version"] = 0
        entry.write_text(json.dumps(payload))
        assert cache.get("table3", {}) is None

    def test_nonfinite_metadata_round_trips(self, tmp_path):
        # Non-finite floats serialise as {"__nonfinite__": ...} sentinels
        # and come back as the floats they were — caching them is safe.
        cache = ResultCache(tmp_path)
        result = _result(metadata={"inf": float("inf"), "nan": float("nan")},
                         rows=((1, float("-inf")),))
        assert cache.put("table3", {}, result) is True
        got = cache.get("table3", {})
        assert got.metadata["inf"] == float("inf")
        assert got.metadata["nan"] != got.metadata["nan"]  # NaN
        assert got.rows == ((1, float("-inf")),)

    def test_unserialisable_result_is_skipped_not_fatal(self, tmp_path):
        class Unprintable:
            def __str__(self):
                raise ValueError("no string form")

        cache = ResultCache(tmp_path)
        bad = _result(metadata={"bad": Unprintable()})
        assert cache.put("table3", {}, bad) is False
        assert list(tmp_path.glob("*.json")) == []

    def test_unwritable_root_degrades_to_no_store(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should go")
        cache = ResultCache(target)
        assert cache.put("table3", {}, _result()) is False
        assert cache.get("table3", {}) is None


class TestAtomicWrites:
    """The shared tier may be off; single-process writes stay atomic."""

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put("table3", {}, _result()) is True
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]

    def test_failed_replace_leaves_no_partial_entry(self, tmp_path,
                                                    monkeypatch):
        cache = ResultCache(tmp_path)

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.util.fsio.os.replace", explode)
        assert cache.put("table3", {}, _result()) is False
        # Neither a destination entry nor an orphaned temp file: the
        # failure degrades to "not cached", never to a torn document.
        assert list(tmp_path.iterdir()) == []
        assert cache.get("table3", {}) is None

    def test_concurrent_writers_never_tear_an_entry(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        titles = ("alpha", "beta")
        stop = threading.Event()

        def writer(title: str) -> None:
            while not stop.is_set():
                cache.put("table3", {}, _result(title=title))

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in titles]
        for t in threads:
            t.start()
        try:
            reads = 0
            while reads < 200:
                entries = list(tmp_path.glob("table3-*.json"))
                if not entries:
                    continue
                # Raw read + parse: a torn write would fail json.loads,
                # which cache.get would silently mask as a miss.
                try:
                    text = entries[0].read_text()
                except OSError:
                    continue  # entry replaced mid-stat; retry
                document = json.loads(text)
                assert document["result"]["title"] in titles
                reads += 1
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)


class TestDefaultDir:
    def test_env_override_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "mine"))
        assert default_cache_dir() == tmp_path / "mine"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-hetero"


class TestBitReproducibility:
    def test_warmed_hit_reserialises_byte_identically(self, tmp_path):
        from repro.experiments import run_table3
        from repro.io import result_to_dict
        cache = ResultCache(tmp_path)
        fresh = run_table3()
        cache.put("table3", {}, fresh)
        warmed = cache.get("table3", {})
        assert (json.dumps(result_to_dict(warmed), sort_keys=True)
                == json.dumps(result_to_dict(fresh), sort_keys=True))
