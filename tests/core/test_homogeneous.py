"""Unit tests for repro.core.homogeneous (eq. (2))."""

import pytest

from repro.core.homogeneous import (
    homogeneous_size_for_x,
    homogeneous_work_rate,
    homogeneous_x,
)
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from tests.conftest import PARAM_GRID


class TestHomogeneousX:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("n", [1, 2, 7, 32])
    @pytest.mark.parametrize("rho", [1.0, 0.5, 0.01])
    def test_matches_general_formula(self, n, rho, params):
        closed = homogeneous_x(n, rho, params)
        general = x_measure(Profile.homogeneous(n, rho), params)
        assert closed == pytest.approx(general, rel=1e-12)

    def test_degenerate_limit(self):
        # π = 0, δ = 1 gives A = τδ: the telescoped form n/(Bρ + A).
        params = ModelParams(tau=0.25, pi=0.0, delta=1.0)
        assert params.is_degenerate
        x = homogeneous_x(4, 0.5, params)
        assert x == pytest.approx(4.0 / (0.5 + 0.25), rel=1e-14)
        assert x == pytest.approx(
            x_measure(Profile.homogeneous(4, 0.5), params), rel=1e-13)

    def test_monotone_decreasing_in_rho(self, paper_params):
        xs = [homogeneous_x(8, rho, paper_params) for rho in (0.1, 0.2, 0.5, 1.0)]
        assert xs == sorted(xs, reverse=True)

    def test_monotone_increasing_in_n(self, paper_params):
        xs = [homogeneous_x(n, 0.5, paper_params) for n in (1, 2, 4, 8)]
        assert xs == sorted(xs)

    def test_saturates_at_bound(self, paper_params):
        # Strictly below mathematically; equal to the bound within
        # float rounding at extreme n.
        bound = 1.0 / paper_params.A_minus_tau_delta
        assert homogeneous_x(10 ** 6, 1e-3, paper_params) <= bound * (1.0 + 1e-12)
        assert homogeneous_x(10, 1e-3, paper_params) < bound

    def test_rejects_bad_inputs(self, paper_params):
        with pytest.raises(InvalidParameterError):
            homogeneous_x(0, 1.0, paper_params)
        with pytest.raises(InvalidParameterError):
            homogeneous_x(4, 0.0, paper_params)

    def test_work_rate_consistent(self, paper_params):
        n, rho = 8, 0.5
        x = homogeneous_x(n, rho, paper_params)
        expected = 1.0 / (paper_params.tau_delta + 1.0 / x)
        assert homogeneous_work_rate(n, rho, paper_params) == pytest.approx(expected)


class TestSizeInversion:
    @pytest.mark.parametrize("n", [1, 3, 10, 100])
    def test_roundtrip(self, n, paper_params):
        rho = 0.4
        x = homogeneous_x(n, rho, paper_params)
        recovered = homogeneous_size_for_x(rho, x, paper_params)
        assert recovered == pytest.approx(n, rel=1e-9)

    def test_degenerate_roundtrip(self):
        params = ModelParams(tau=0.25, pi=0.0, delta=1.0)
        x = homogeneous_x(6, 0.5, params)
        assert homogeneous_size_for_x(0.5, x, params) == pytest.approx(6.0)

    def test_unattainable_target_rejected(self, paper_params):
        bound = 1.0 / paper_params.A_minus_tau_delta
        with pytest.raises(InvalidParameterError):
            homogeneous_size_for_x(0.5, bound * 1.01, paper_params)

    def test_how_many_commodity_machines(self, paper_params):
        # A practical reading: how many rho=1 machines match the paper's
        # 4-computer cluster ⟨1, 1/2, 1/3, 1/4⟩?  X ≈ 10 ⇒ about 10.
        x = x_measure(Profile([1, 0.5, 1 / 3, 0.25]), paper_params)
        n = homogeneous_size_for_x(1.0, x, paper_params)
        assert 9.9 < n < 10.1
