"""The columnar ProfileBatch kernels: contracts, parity, edit previews.

Parity with the scalar layer is the module's whole contract, so most of
these tests compare a kernel row-for-row against its scalar counterpart
with ``==`` (bitwise; HECR alone is allowed ≤1e-12 relative, because
NumPy's SIMD ``log1p``/``expm1`` over arrays may differ from libm by
1 ulp).  The broader randomised sweep lives in
``tests/properties/test_batch_parity_properties.py``; this file pins
construction/validation semantics, the empty-batch contract and the
edit-preview algebra on deterministic cases.
"""

import math

import numpy as np
import pytest

from repro.core.batch_kernels import (
    MOMENT_STATISTICS,
    BatchXEvaluator,
    ProfileBatch,
    hecr_from_x_many,
    majorization_predictions,
    minorization_predictions,
    moment_predictions,
    variance_predictions,
)
from repro.core.hecr import hecr, hecr_from_x
from repro.core.measure import XEvaluator, work_production, work_rate, x_measure
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError, InvalidProfileError
from repro.predictors.dominance import DominanceVerdict, minorization_predicts
from repro.predictors.majorization import majorization_prediction
from repro.predictors.variance import MOMENT_PREDICTORS, variance_prediction

_VERDICT_CODES = {DominanceVerdict.FIRST_DOMINATES: 0,
                  DominanceVerdict.SECOND_DOMINATES: 1,
                  DominanceVerdict.INDETERMINATE: -1}


class TestConstruction:
    def test_validates_once_and_exposes_shape(self, rng):
        rows = rng.uniform(0.1, 1.0, size=(6, 4))
        batch = ProfileBatch(rows)
        assert batch.shape == (6, 4)
        assert batch.m == 6 and batch.n == 4 and len(batch) == 6
        np.testing.assert_array_equal(batch.rho, rows)

    def test_copy_isolates_caller_mutation(self, rng):
        rows = rng.uniform(0.1, 1.0, size=(3, 3))
        batch = ProfileBatch(rows)  # copy=True default
        before = batch.x(PAPER_TABLE1).copy()
        rows[0, 0] = 99.0
        np.testing.assert_array_equal(batch.x(PAPER_TABLE1), before)

    def test_rho_view_is_read_only(self, rng):
        batch = ProfileBatch(rng.uniform(0.1, 1.0, size=(2, 3)))
        with pytest.raises(ValueError):
            batch.rho[0, 0] = 1.0

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError, match="2-D"):
            ProfileBatch(np.ones(4))

    def test_rejects_nonpositive_and_nonfinite(self):
        with pytest.raises(InvalidParameterError):
            ProfileBatch(np.array([[1.0, 0.0]]))
        with pytest.raises(InvalidParameterError):
            ProfileBatch(np.array([[1.0, np.inf]]))

    def test_zero_computer_rows_rejected_by_shape(self):
        with pytest.raises(InvalidParameterError,
                           match="at least one computer"):
            ProfileBatch(np.empty((5, 0)))

    def test_from_profiles(self):
        batch = ProfileBatch.from_profiles(
            [Profile.linear(3), Profile.homogeneous(3, 0.5)])
        assert batch.shape == (2, 3)
        with pytest.raises(InvalidParameterError):
            ProfileBatch.from_profiles([])
        with pytest.raises(InvalidProfileError):
            ProfileBatch.from_profiles([Profile.linear(3), Profile.linear(4)])


class TestEmptyBatchContract:
    """Every kernel maps an (0, n) batch to a shape-(0,) result."""

    def test_all_kernels_return_empty(self):
        batch = ProfileBatch(np.empty((0, 4)))
        params = PAPER_TABLE1
        assert batch.x(params).shape == (0,)
        assert batch.work_rates(params).shape == (0,)
        assert batch.work_production(params, 10.0).shape == (0,)
        assert batch.hecr(params).shape == (0,)
        for method in ("means", "variances", "stds", "geometric_means",
                       "harmonic_means", "min_rho", "max_rho", "totals"):
            assert getattr(batch, method)().shape == (0,)

    def test_pairwise_kernels_return_empty(self):
        a = ProfileBatch(np.empty((0, 4)))
        b = ProfileBatch(np.empty((0, 4)))
        assert moment_predictions(a, b).shape == (0,)
        assert variance_predictions(a, b).shape == (0,)
        assert minorization_predictions(a, b).shape == (0,)
        assert majorization_predictions(a, b).shape == (0,)

    def test_evaluator_handles_empty(self):
        ev = BatchXEvaluator(np.empty((0, 4)), PAPER_TABLE1)
        assert ev.x.shape == (0,)
        assert ev.x_with_rho(np.empty(0, dtype=int), np.empty(0)).shape == (0,)


class TestScalarParity:
    def test_x_bitwise(self, paper_params, rng):
        rows = rng.uniform(1e-3, 1.0, size=(25, 7))
        xs = ProfileBatch(rows).x(paper_params)
        for row, x in zip(rows, xs):
            assert x == x_measure(row, paper_params)

    def test_work_kernels_bitwise(self, paper_params, rng):
        rows = rng.uniform(0.05, 1.0, size=(10, 5))
        batch = ProfileBatch(rows)
        xs = batch.x(paper_params)
        rates = batch.work_rates(paper_params)
        work = batch.work_production(paper_params, 3600.0)
        for row, x, rate, w in zip(rows, xs, rates, work):
            assert rate == work_rate(row, paper_params, x=float(x))
            assert w == work_production(row, paper_params, 3600.0, x=float(x))

    def test_statistics_bitwise(self, rng):
        rows = rng.uniform(0.05, 1.0, size=(12, 6))
        batch = ProfileBatch(rows)
        for i, row in enumerate(rows):
            p = Profile(row)
            assert batch.means()[i] == p.mean
            assert batch.variances()[i] == p.variance
            assert batch.stds()[i] == p.std
            assert batch.geometric_means()[i] == p.geometric_mean
            assert batch.harmonic_means()[i] == p.n / float(np.sum(1.0 / p.rho))
            assert batch.min_rho()[i] == p.fastest_rho
            assert batch.max_rho()[i] == p.slowest_rho
            assert batch.totals()[i] == float(np.sum(p.rho))

    def test_hecr_close_to_scalar(self, paper_params, rng):
        rows = rng.uniform(0.1, 1.0, size=(15, 6))
        batch = ProfileBatch(rows)
        xs = batch.x(paper_params)
        hs = batch.hecr(paper_params, x=xs)
        for row, x, h in zip(rows, xs, hs):
            scalar = hecr(Profile(row), paper_params, x=float(x))
            assert math.isclose(h, scalar, rel_tol=1e-12)

    def test_moment_statistics_cover_all_predictors(self):
        assert set(MOMENT_STATISTICS) == set(MOMENT_PREDICTORS)


class TestHecrFromXMany:
    def test_validation(self, paper_params):
        with pytest.raises(InvalidParameterError, match="n must be >= 1"):
            hecr_from_x_many(np.array([1.0]), 0, paper_params)
        with pytest.raises(InvalidParameterError):
            hecr_from_x_many(np.array([1.0, -2.0]), 3, paper_params)
        with pytest.raises(InvalidParameterError):
            hecr_from_x_many(np.array([np.inf]), 3, paper_params)

    def test_finite_rows_match_scalar(self, paper_params):
        xs = np.array([0.5, 10.0, 400.0])
        out = hecr_from_x_many(xs, 6, paper_params)
        for x, h in zip(xs, out):
            assert math.isclose(h, hecr_from_x(float(x), 6, paper_params),
                                rel_tol=1e-12)

    def test_degenerate_gap_branch(self):
        # A = τδ needs π = τ(δ − 1) ≥ 0, so δ = 1 and π = 0 is the only
        # admissible corner: gap = A − τδ = 0 exactly.
        params = ModelParams(tau=0.1, pi=0.0, delta=1.0)
        assert params.A_minus_tau_delta == 0.0
        out = hecr_from_x_many(np.array([10.0, 1e9]), 2, params)
        assert math.isclose(out[0], hecr_from_x(10.0, 2, params),
                            rel_tol=1e-12)
        assert np.isnan(out[1])  # n/x − A ≤ 0: scalar path raises


class TestBatchXEvaluator:
    def test_preview_matches_scalar_evaluator(self, paper_params, rng):
        rows = rng.uniform(0.05, 2.0, size=(15, 8))
        batch_ev = BatchXEvaluator(rows, paper_params)
        ks = rng.integers(0, 8, size=15)
        vals = rng.uniform(0.01, 3.0, size=15)
        previews = batch_ev.x_with_rho(ks, vals)
        for i, (row, k, v) in enumerate(zip(rows, ks, vals)):
            assert previews[i] == XEvaluator(row, paper_params).x_with_rho(
                int(k), float(v))

    def test_scalar_edit_broadcasts(self, paper_params, rng):
        rows = rng.uniform(0.05, 2.0, size=(4, 5))
        batch_ev = BatchXEvaluator(rows, paper_params)
        previews = batch_ev.x_with_rho(2, 0.123)
        for row, p in zip(rows, previews):
            assert p == XEvaluator(row, paper_params).x_with_rho(2, 0.123)

    def test_commit_is_fresh_x_measure(self, paper_params, rng):
        rows = rng.uniform(0.05, 2.0, size=(6, 5))
        batch_ev = BatchXEvaluator(rows, paper_params)
        ks = rng.integers(0, 5, size=6)
        vals = rng.uniform(0.01, 3.0, size=6)
        committed = batch_ev.set_rho(ks, vals)
        for row, k, v, x in zip(rows, ks, vals, committed):
            edited = row.copy()
            edited[k] = v
            assert x == x_measure(edited, paper_params)

    def test_edit_validation(self, paper_params, rng):
        batch_ev = BatchXEvaluator(rng.uniform(0.1, 1.0, size=(3, 4)),
                                   paper_params)
        with pytest.raises(InvalidParameterError):
            batch_ev.x_with_rho(4, 0.5)             # index out of range
        with pytest.raises(InvalidParameterError):
            batch_ev.x_with_rho(0, -1.0)            # non-positive rate
        with pytest.raises(InvalidParameterError):
            batch_ev.x_with_rho(np.array([0, 1]), np.array([0.5, 0.5, 0.5]))

    def test_profilebatch_evaluator_shares_rows(self, paper_params, rng):
        rows = rng.uniform(0.1, 1.0, size=(5, 4))
        batch = ProfileBatch(rows)
        ev = batch.evaluator(paper_params)
        np.testing.assert_array_equal(ev.x, batch.x(paper_params))


class TestXEvaluatorManyPreviews:
    def test_x_with_rho_many_matches_loop(self, paper_params, rng):
        row = rng.uniform(0.05, 1.0, size=9)
        ev = XEvaluator(row, paper_params)
        indices = np.arange(9)
        values = rng.uniform(0.01, 2.0, size=9)
        many = ev.x_with_rho_many(indices, values)
        for k, v, x in zip(indices, values, many):
            assert x == ev.x_with_rho(int(k), float(v))

    def test_validation(self, paper_params):
        ev = XEvaluator([1.0, 0.5], paper_params)
        with pytest.raises(InvalidParameterError):
            ev.x_with_rho_many(np.array([0, 5]), np.array([0.5, 0.5]))
        with pytest.raises(InvalidParameterError):
            ev.x_with_rho_many(np.array([0]), np.array([-1.0]))
        with pytest.raises(InvalidParameterError):
            ev.x_with_rho_many(np.array([[0]]), np.array([[0.5]]))


class TestPairwisePredictors:
    def test_moment_predictions_match_scalar(self, rng):
        a = rng.uniform(0.1, 1.0, size=(30, 6))
        b = rng.uniform(0.1, 1.0, size=(30, 6))
        ba, bb = ProfileBatch(a), ProfileBatch(b)
        for name, predictor in MOMENT_PREDICTORS.items():
            calls = moment_predictions(ba, bb, name)
            for i in range(30):
                assert calls[i] == predictor(Profile(a[i]), Profile(b[i]))

    def test_moment_tie_is_indeterminate(self):
        rows = np.array([[1.0, 0.5, 0.25]])
        batch = ProfileBatch(rows)
        assert moment_predictions(batch, ProfileBatch(rows.copy()),
                                  "variance")[0] == -1

    def test_unknown_statistic_rejected(self):
        batch = ProfileBatch(np.ones((1, 2)))
        with pytest.raises(InvalidParameterError):
            moment_predictions(batch, batch, "median")

    def test_variance_predictions_match_scalar(self, rng):
        a = rng.uniform(0.1, 1.0, size=(20, 5))
        b = np.sort(a, axis=1)[:, ::-1]  # permutation: means equal exactly
        calls = variance_predictions(ProfileBatch(a), ProfileBatch(b))
        for i in range(20):
            assert calls[i] == variance_prediction(Profile(a[i]),
                                                   Profile(b[i]))

    def test_variance_predictions_reject_unequal_means(self, rng):
        a = ProfileBatch(rng.uniform(0.1, 1.0, size=(4, 5)))
        b = ProfileBatch(rng.uniform(2.0, 3.0, size=(4, 5)))
        with pytest.raises(InvalidProfileError, match="equal mean"):
            variance_predictions(a, b)

    def test_minorization_predictions_match_scalar(self, rng):
        a = rng.uniform(0.1, 1.0, size=(30, 5))
        b = rng.uniform(0.1, 1.0, size=(30, 5))
        calls = minorization_predictions(ProfileBatch(a), ProfileBatch(b))
        for i in range(30):
            verdict = minorization_predicts(Profile(a[i]), Profile(b[i]))
            assert calls[i] == _VERDICT_CODES[verdict]

    def test_majorization_predictions_match_scalar(self, rng):
        a = rng.uniform(0.1, 1.0, size=(30, 5))
        b = np.sort(a, axis=1)  # same multiset per row ⇒ equal totals
        perm = rng.permutation(30)
        b = b[perm][np.argsort(perm)]  # keep alignment, shuffle nothing
        calls = majorization_predictions(ProfileBatch(a), ProfileBatch(b))
        for i in range(30):
            assert calls[i] == majorization_prediction(Profile(a[i]),
                                                       Profile(b[i]))

    def test_majorization_rejects_unequal_totals(self):
        a = ProfileBatch(np.array([[1.0, 1.0]]))
        b = ProfileBatch(np.array([[3.0, 3.0]]))
        with pytest.raises(InvalidProfileError):
            majorization_predictions(a, b)

    def test_shape_mismatch_rejected(self, rng):
        a = ProfileBatch(rng.uniform(0.1, 1.0, size=(3, 4)))
        b = ProfileBatch(rng.uniform(0.1, 1.0, size=(2, 4)))
        with pytest.raises(InvalidProfileError):
            moment_predictions(a, b)


class TestColumnCache:
    def test_columns_cached_per_params(self, rng):
        batch = ProfileBatch(rng.uniform(0.1, 1.0, size=(4, 3)))
        c1 = batch.columns(PAPER_TABLE1)
        assert batch.columns(PAPER_TABLE1) is c1
        other = ModelParams(tau=0.01, pi=0.001, delta=1.0)
        c2 = batch.columns(other)
        assert c2 is not c1
        assert batch.columns(PAPER_TABLE1) is c1

    def test_b_rho_column_is_bit_identical_product(self, rng):
        rows = rng.uniform(0.1, 1.0, size=(3, 4))
        batch = ProfileBatch(rows)
        np.testing.assert_array_equal(
            batch.columns(PAPER_TABLE1).b_rho, PAPER_TABLE1.B * rows)
