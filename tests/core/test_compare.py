"""Unit tests for repro.core.compare."""

import pytest

from repro.core.compare import compare_clusters
from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.dominance import DominanceVerdict


class TestCompareClusters:
    def test_paper_example(self, paper_params):
        comparison = compare_clusters(Profile([0.99, 0.02]), Profile([0.5, 0.5]),
                                      paper_params)
        assert comparison.winner == 0
        assert comparison.x1 > comparison.x2
        assert comparison.hecr1 < comparison.hecr2
        assert comparison.work_ratio_1_over_2 > 1.0
        assert comparison.minorization is DominanceVerdict.INDETERMINATE
        # Means differ: equal-mean predictors abstain.
        assert not comparison.equal_means
        assert comparison.variance_call == -1
        assert comparison.majorization_call == -1

    def test_equal_mean_pair_gets_all_predictors(self, paper_params):
        comparison = compare_clusters(Profile([0.9, 0.1]), Profile([0.6, 0.4]),
                                      paper_params)
        assert comparison.equal_means
        assert comparison.variance_call == 0
        assert comparison.majorization_call == 0
        assert comparison.winner == 0

    def test_minorizing_pair(self, paper_params):
        comparison = compare_clusters(Profile([0.9, 0.4]), Profile([1.0, 0.5]),
                                      paper_params)
        assert comparison.minorization is DominanceVerdict.FIRST_DOMINATES
        assert comparison.cross_product is DominanceVerdict.FIRST_DOMINATES
        assert comparison.winner == 0

    def test_identical_clusters_tie(self, paper_params):
        p = Profile([1.0, 0.5])
        comparison = compare_clusters(p, Profile([1.0, 0.5]), paper_params)
        assert comparison.winner == -1

    def test_verdict_rows_shape(self, paper_params):
        comparison = compare_clusters(Profile([0.9, 0.1]), Profile([0.6, 0.4]),
                                      paper_params)
        rows = comparison.verdict_rows()
        assert len(rows) == 5  # truth + 2 dominance + 2 equal-mean lenses
        lenses = [row[0] for row in rows]
        assert any("majorization" in lens for lens in lenses)

    def test_size_mismatch_rejected(self, paper_params):
        with pytest.raises(InvalidProfileError):
            compare_clusters(Profile([1.0]), Profile([1.0, 0.5]), paper_params)


class TestCliCompare:
    def test_compare_command(self, capsys):
        from repro.cli import main
        assert main(["compare", "--first", "0.9,0.1", "--second", "0.6,0.4"]) == 0
        out = capsys.readouterr().out
        assert "majorization" in out
        assert "HECR" in out

    def test_compare_bad_profile(self, capsys):
        from repro.cli import main
        assert main(["compare", "--first", "x", "--second", "0.5,0.5"]) == 2
