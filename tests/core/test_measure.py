"""Unit tests for repro.core.measure (eq. (1), Theorem 2, eq. (3))."""

import numpy as np
import pytest

from repro.core.measure import (
    work_production,
    work_rate,
    work_ratio,
    x_decomposition,
    x_measure,
    x_measure_many,
)
from repro.core.params import NEGLIGIBLE_OVERHEADS
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestXMeasure:
    def test_single_computer_closed_form(self, paper_params):
        # n = 1: X = 1/(Bρ + A).
        x = x_measure([0.5], paper_params)
        expected = 1.0 / (paper_params.B * 0.5 + paper_params.A)
        assert x == pytest.approx(expected, rel=1e-14)

    def test_two_computer_hand_expansion(self, paper_params):
        A, B, td = paper_params.A, paper_params.B, paper_params.tau_delta
        rho = [1.0, 0.5]
        expected = 1.0 / (B * 1.0 + A) + (B * 1.0 + td) / ((B * 1.0 + A) * (B * 0.5 + A))
        assert x_measure(rho, paper_params) == pytest.approx(expected, rel=1e-14)

    def test_negligible_overheads_approach_total_speed(self):
        p = Profile([1.0, 0.5, 0.25])
        x = x_measure(p, NEGLIGIBLE_OVERHEADS)
        assert x == pytest.approx(p.total_speed, rel=1e-6)

    def test_accepts_profile_and_iterable(self, paper_params):
        p = Profile([1.0, 0.5])
        assert x_measure(p, paper_params) == x_measure([1.0, 0.5], paper_params)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_positive_everywhere(self, profile, params):
        assert x_measure(profile, params) > 0.0

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_order_invariance(self, params, rng):
        # Theorem 1(2): X is a symmetric function of the profile.
        profile = Profile([1.0, 0.5, 1 / 3, 0.25, 0.125])
        base = x_measure(profile, params)
        for _ in range(5):
            order = rng.permutation(profile.n)
            assert x_measure(profile.permuted(order), params) == pytest.approx(
                base, rel=1e-12)

    def test_saturation_bound(self, paper_params):
        # X < 1/(A − τδ) mathematically; float rounding may graze the
        # bound at extreme saturation, so allow a few ulps.
        bound = 1.0 / paper_params.A_minus_tau_delta
        x = x_measure(Profile.homogeneous(10_000, 1e-4), paper_params)
        assert x <= bound * (1.0 + 1e-12)

    def test_adding_a_computer_increases_x(self, paper_params):
        p = Profile([1.0, 0.5])
        assert x_measure(p.extended(0.7), paper_params) > x_measure(p, paper_params)


class TestProposition2:
    """Faster clusters complete more work."""

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_speeding_any_computer_increases_x(self, params):
        p = Profile([1.0, 0.5, 1 / 3, 0.25])
        base = x_measure(p, params)
        for i in range(p.n):
            sped = p.with_rho_at(i, p[i] * 0.9)
            assert x_measure(sped, params) > base

    def test_minorization_implies_larger_x(self, paper_params):
        slower = Profile([1.0, 0.6, 0.5])
        faster = Profile([0.9, 0.6, 0.4])
        assert faster.minorizes(slower)
        assert x_measure(faster, paper_params) > x_measure(slower, paper_params)


class TestWorkProduction:
    def test_linear_in_lifespan(self, paper_params, table4_profile):
        w1 = work_production(table4_profile, paper_params, 10.0)
        w2 = work_production(table4_profile, paper_params, 20.0)
        assert w2 == pytest.approx(2.0 * w1, rel=1e-14)

    def test_matches_theorem2_formula(self, paper_params, table4_profile):
        X = x_measure(table4_profile, paper_params)
        expected = 100.0 / (paper_params.tau_delta + 1.0 / X)
        assert work_production(table4_profile, paper_params, 100.0) == pytest.approx(
            expected, rel=1e-14)

    def test_rejects_bad_lifespan(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            work_production(table4_profile, paper_params, 0.0)
        with pytest.raises(InvalidParameterError):
            work_production(table4_profile, paper_params, -1.0)

    def test_work_rate_tracks_x(self, paper_params):
        # X(P1) >= X(P2) iff W(L;P1) >= W(L;P2).
        p1, p2 = Profile([0.99, 0.02]), Profile([0.5, 0.5])
        assert x_measure(p1, paper_params) > x_measure(p2, paper_params)
        assert work_rate(p1, paper_params) > work_rate(p2, paper_params)

    def test_work_ratio_reciprocal(self, paper_params):
        p1, p2 = Profile([1.0, 0.5]), Profile([1.0, 0.4])
        r = work_ratio(p1, p2, paper_params)
        assert work_ratio(p2, p1, paper_params) == pytest.approx(1.0 / r, rel=1e-14)


class TestXMeasureMany:
    def test_matches_scalar(self, paper_params, rng):
        profiles = rng.uniform(0.05, 1.0, size=(20, 6))
        batch = x_measure_many(profiles, paper_params)
        for row, x in zip(profiles, batch):
            assert x == pytest.approx(x_measure(row, paper_params), rel=1e-13)

    def test_rejects_1d(self, paper_params):
        with pytest.raises(InvalidParameterError):
            x_measure_many(np.ones(4), paper_params)

    def test_rejects_nonpositive(self, paper_params):
        with pytest.raises(InvalidParameterError):
            x_measure_many(np.array([[1.0, 0.0]]), paper_params)

    def test_empty_batch_returns_empty(self, paper_params):
        # Regression: (0, n) used to be rejected as "must be non-empty,
        # positive and finite", breaking empty-shard pipelines.  A batch
        # of zero profiles is valid and evaluates to zero X values.
        out = x_measure_many(np.empty((0, 4)), paper_params)
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_zero_computer_rows_rejected(self, paper_params):
        # (m, 0) stays a hard error, with a message naming the shape.
        with pytest.raises(InvalidParameterError,
                           match="at least one computer"):
            x_measure_many(np.empty((3, 0)), paper_params)


class TestXDecomposition:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_reassembles_x(self, params):
        p = Profile([1.0, 0.5, 1 / 3, 0.25])
        for i, j in [(0, 1), (2, 3), (0, 3), (3, 1)]:
            dec = x_decomposition(p, params, i, j)
            assert dec.x_value == pytest.approx(x_measure(p, params), rel=1e-11)

    def test_two_computers_have_zero_z(self, paper_params):
        dec = x_decomposition(Profile([1.0, 0.5]), paper_params, 0, 1)
        assert dec.Z == 0.0
        assert dec.Y == 1.0

    def test_symmetric_in_ij(self, paper_params, table4_profile):
        a = x_decomposition(table4_profile, paper_params, 1, 2)
        b = x_decomposition(table4_profile, paper_params, 2, 1)
        assert a.lead == pytest.approx(b.lead, rel=1e-14)

    def test_y_and_z_positive(self, paper_params, table4_profile):
        dec = x_decomposition(table4_profile, paper_params, 0, 3)
        assert dec.Y > 0.0
        assert dec.Z > 0.0

    def test_rejects_single_computer(self, paper_params):
        with pytest.raises(InvalidParameterError):
            x_decomposition(Profile([1.0]), paper_params, 0, 0)

    def test_rejects_equal_indices(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            x_decomposition(table4_profile, paper_params, 2, 2)
