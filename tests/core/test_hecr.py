"""Unit tests for repro.core.hecr (Proposition 1)."""

import numpy as np
import pytest

from repro.core.hecr import hecr, hecr_bisect, hecr_from_x, hecr_many
from repro.core.homogeneous import homogeneous_x
from repro.core.measure import x_measure, x_measure_many
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestClosedForm:
    def test_homogeneous_cluster_is_its_own_equivalent(self, paper_params):
        for rho in (1.0, 0.5, 0.125):
            p = Profile.homogeneous(6, rho)
            assert hecr(p, paper_params) == pytest.approx(rho, rel=1e-10)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_defining_property(self, profile, params):
        # X(P^(HECR)) == X(P): the homogeneous cluster at the HECR matches.
        rho_c = hecr(profile, params)
        assert homogeneous_x(profile.n, rho_c, params) == pytest.approx(
            x_measure(profile, params), rel=1e-9)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_bisect_agrees_with_closed_form(self, profile, params):
        assert hecr_bisect(profile, params) == pytest.approx(
            hecr(profile, params), rel=1e-10)

    def test_bracketed_by_extremes(self, paper_params):
        p = Profile([1.0, 0.5, 0.25])
        rho_c = hecr(p, paper_params)
        assert p.fastest_rho < rho_c < p.slowest_rho

    def test_degenerate_params(self):
        params = ModelParams(tau=0.2, pi=0.0, delta=1.0)
        assert params.is_degenerate
        p = Profile([1.0, 0.5])
        rho_c = hecr(p, params)
        assert homogeneous_x(2, rho_c, params) == pytest.approx(
            x_measure(p, params), rel=1e-12)

    def test_accepts_iterable(self, paper_params):
        assert hecr([1.0, 0.5], paper_params) == hecr(Profile([1.0, 0.5]), paper_params)


class TestTable3Values:
    """The paper's Table 3, reproduced to its printed precision ±0.006."""

    @pytest.mark.parametrize("n,expected", [(8, 0.366), (16, 0.298), (32, 0.251)])
    def test_linear_cluster(self, n, expected, paper_params):
        assert hecr(Profile.linear(n), paper_params) == pytest.approx(expected, abs=6e-3)

    @pytest.mark.parametrize("n,expected", [(8, 0.216), (16, 0.116), (32, 0.060)])
    def test_harmonic_cluster(self, n, expected, paper_params):
        assert hecr(Profile.harmonic(n), paper_params) == pytest.approx(expected, abs=7e-3)

    def test_harmonic_more_powerful_at_every_size(self, paper_params):
        for n in (8, 16, 32):
            assert hecr(Profile.harmonic(n), paper_params) < hecr(
                Profile.linear(n), paper_params)

    def test_ratio_grows_with_n(self, paper_params):
        ratios = [
            hecr(Profile.linear(n), paper_params) / hecr(Profile.harmonic(n), paper_params)
            for n in (8, 16, 32)
        ]
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 4.0  # "more than 4 for 32 computers"


class TestHecrFromX:
    def test_monotone_decreasing_in_x(self, paper_params):
        # More powerful (larger X) ⇒ smaller equivalent rate.
        xs = [5.0, 10.0, 20.0]
        hecrs = [hecr_from_x(x, 4, paper_params) for x in xs]
        assert hecrs == sorted(hecrs, reverse=True)

    def test_rejects_nonpositive_x(self, paper_params):
        with pytest.raises(InvalidParameterError):
            hecr_from_x(0.0, 4, paper_params)

    def test_rejects_saturated_x(self, paper_params):
        bound = 1.0 / paper_params.A_minus_tau_delta
        with pytest.raises(InvalidParameterError):
            hecr_from_x(bound, 4, paper_params)

    def test_rejects_bad_n(self, paper_params):
        with pytest.raises(InvalidParameterError):
            hecr_from_x(1.0, 0, paper_params)


class TestHecrMany:
    def test_matches_scalar(self, paper_params, rng):
        profiles = rng.uniform(0.1, 1.0, size=(12, 5))
        xs = x_measure_many(profiles, paper_params)
        batch = hecr_many(profiles, xs, paper_params)
        for row, h in zip(profiles, batch):
            assert h == pytest.approx(hecr(Profile(row), paper_params), rel=1e-11)

    def test_saturated_rows_become_nan(self, paper_params):
        # Force eps to round to 1: report NaN, not garbage.
        n = 4
        profiles = np.full((1, n), 0.5)
        bound = 1.0 / paper_params.A_minus_tau_delta
        batch = hecr_many(profiles, np.array([bound * (1 - 1e-16)]), paper_params)
        assert np.isnan(batch[0])

    def test_shape_mismatch_rejected(self, paper_params):
        with pytest.raises(InvalidParameterError):
            hecr_many(np.ones((3, 2)), np.ones(2), paper_params)

    def test_near_saturated_rate_is_nan_not_negative(self, paper_params):
        # Regression: just below the eps >= 1 - 1e-14 cutoff the closed
        # form's cancellation yields a small *negative* rate (-9.95e-07
        # at this x), which hecr_many used to return where the scalar
        # path raises.  The whole non-positive family must be NaN.
        n = 4
        x = (1.0 - 5e-14) / paper_params.A_minus_tau_delta
        batch = hecr_many(np.full((1, n), 0.5), np.array([x]), paper_params)
        assert np.isnan(batch[0])          # not -9.95e-07
        with pytest.raises(InvalidParameterError):
            hecr_from_x(x, n, paper_params)

    def test_near_bound_large_gap_rate_stays_finite(self):
        # Regression (converse direction): the NaN family must match the
        # scalar refusal set *exactly*.  A padded ``eps >= 1 - 1e-14``
        # cutoff NaN-ed this large-gap row (eps = 1 - 1.8e-15) even
        # though the scalar closed form happily returns a positive rate.
        params = ModelParams(tau=0.5, pi=0.0, delta=0.0)
        profiles = np.array([[7.81300120e-03, 2.50704307e-02, 5.71952579e-03,
                              1.68593371e-03, 1.99446808e-02, 1.29856016e-02,
                              1.77344792e-02, 1.01874701e-03]])
        xs = x_measure_many(profiles, params)
        eps = (params.A - params.tau_delta) * xs[0]
        assert 1.0 - 1e-14 < eps < 1.0  # inside the old padded band
        scalar = hecr_from_x(float(xs[0]), profiles.shape[1], params)
        batch = hecr_many(profiles, xs, params)
        assert scalar > 0.0
        assert batch[0] == pytest.approx(scalar, rel=1e-12)

    def test_empty_batch_returns_empty(self, paper_params):
        out = hecr_many(np.empty((0, 5)), np.empty(0), paper_params)
        assert out.shape == (0,)

    def test_zero_computer_rows_rejected(self, paper_params):
        with pytest.raises(InvalidParameterError, match="at least one computer"):
            hecr_many(np.empty((2, 0)), np.empty(2), paper_params)


class TestHecrBisectBracket:
    # A wide-dynamic-range profile whose eq.-(1) X rounds past the float
    # image of eq. (2): no homogeneous rate reaches the target, however
    # far the lo bracket widens.
    _PARAMS = ModelParams(tau=1.5472e-08, pi=7.6138e-05, delta=0.504094)
    _N = 48

    def _saturated_profile(self) -> Profile:
        return Profile(10 ** np.random.default_rng(7).uniform(-6, 0, self._N))

    def test_unbracketable_target_raises_like_closed_form(self):
        # Regression: the one-shot `lo *= 0.5` widening left a
        # non-bracketing interval here and bisection silently converged
        # onto the bound fastest_rho/2.  All three paths must now agree
        # this cluster has no homogeneous equivalent: bisect raises,
        # the closed form raises, the batch path is NaN.
        profile = self._saturated_profile()
        with pytest.raises(InvalidParameterError, match="no.*homogeneous"):
            hecr_bisect(profile, self._PARAMS)
        with pytest.raises(InvalidParameterError):
            hecr(profile, self._PARAMS)
        x = x_measure(profile, self._PARAMS)
        batch = hecr_many(profile.rho[None, :], np.array([x]), self._PARAMS)
        assert np.isnan(batch[0])

    def test_bracketing_profiles_still_match_closed_form(self):
        # Same extreme regime, one decade less spread: bracketing holds
        # and the two independent inversions must keep agreeing.
        profile = Profile(10 ** np.random.default_rng(7).uniform(-5, 0, self._N))
        assert hecr_bisect(profile, self._PARAMS) == pytest.approx(
            hecr(profile, self._PARAMS), rel=1e-11)
