"""Unit tests for repro.core.hecr (Proposition 1)."""

import numpy as np
import pytest

from repro.core.hecr import hecr, hecr_bisect, hecr_from_x, hecr_many
from repro.core.homogeneous import homogeneous_x
from repro.core.measure import x_measure, x_measure_many
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestClosedForm:
    def test_homogeneous_cluster_is_its_own_equivalent(self, paper_params):
        for rho in (1.0, 0.5, 0.125):
            p = Profile.homogeneous(6, rho)
            assert hecr(p, paper_params) == pytest.approx(rho, rel=1e-10)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_defining_property(self, profile, params):
        # X(P^(HECR)) == X(P): the homogeneous cluster at the HECR matches.
        rho_c = hecr(profile, params)
        assert homogeneous_x(profile.n, rho_c, params) == pytest.approx(
            x_measure(profile, params), rel=1e-9)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_bisect_agrees_with_closed_form(self, profile, params):
        assert hecr_bisect(profile, params) == pytest.approx(
            hecr(profile, params), rel=1e-10)

    def test_bracketed_by_extremes(self, paper_params):
        p = Profile([1.0, 0.5, 0.25])
        rho_c = hecr(p, paper_params)
        assert p.fastest_rho < rho_c < p.slowest_rho

    def test_degenerate_params(self):
        params = ModelParams(tau=0.2, pi=0.0, delta=1.0)
        assert params.is_degenerate
        p = Profile([1.0, 0.5])
        rho_c = hecr(p, params)
        assert homogeneous_x(2, rho_c, params) == pytest.approx(
            x_measure(p, params), rel=1e-12)

    def test_accepts_iterable(self, paper_params):
        assert hecr([1.0, 0.5], paper_params) == hecr(Profile([1.0, 0.5]), paper_params)


class TestTable3Values:
    """The paper's Table 3, reproduced to its printed precision ±0.006."""

    @pytest.mark.parametrize("n,expected", [(8, 0.366), (16, 0.298), (32, 0.251)])
    def test_linear_cluster(self, n, expected, paper_params):
        assert hecr(Profile.linear(n), paper_params) == pytest.approx(expected, abs=6e-3)

    @pytest.mark.parametrize("n,expected", [(8, 0.216), (16, 0.116), (32, 0.060)])
    def test_harmonic_cluster(self, n, expected, paper_params):
        assert hecr(Profile.harmonic(n), paper_params) == pytest.approx(expected, abs=7e-3)

    def test_harmonic_more_powerful_at_every_size(self, paper_params):
        for n in (8, 16, 32):
            assert hecr(Profile.harmonic(n), paper_params) < hecr(
                Profile.linear(n), paper_params)

    def test_ratio_grows_with_n(self, paper_params):
        ratios = [
            hecr(Profile.linear(n), paper_params) / hecr(Profile.harmonic(n), paper_params)
            for n in (8, 16, 32)
        ]
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] > 4.0  # "more than 4 for 32 computers"


class TestHecrFromX:
    def test_monotone_decreasing_in_x(self, paper_params):
        # More powerful (larger X) ⇒ smaller equivalent rate.
        xs = [5.0, 10.0, 20.0]
        hecrs = [hecr_from_x(x, 4, paper_params) for x in xs]
        assert hecrs == sorted(hecrs, reverse=True)

    def test_rejects_nonpositive_x(self, paper_params):
        with pytest.raises(InvalidParameterError):
            hecr_from_x(0.0, 4, paper_params)

    def test_rejects_saturated_x(self, paper_params):
        bound = 1.0 / paper_params.A_minus_tau_delta
        with pytest.raises(InvalidParameterError):
            hecr_from_x(bound, 4, paper_params)

    def test_rejects_bad_n(self, paper_params):
        with pytest.raises(InvalidParameterError):
            hecr_from_x(1.0, 0, paper_params)


class TestHecrMany:
    def test_matches_scalar(self, paper_params, rng):
        profiles = rng.uniform(0.1, 1.0, size=(12, 5))
        xs = x_measure_many(profiles, paper_params)
        batch = hecr_many(profiles, xs, paper_params)
        for row, h in zip(profiles, batch):
            assert h == pytest.approx(hecr(Profile(row), paper_params), rel=1e-11)

    def test_saturated_rows_become_nan(self, paper_params):
        # Force eps to round to 1: report NaN, not garbage.
        n = 4
        profiles = np.full((1, n), 0.5)
        bound = 1.0 / paper_params.A_minus_tau_delta
        batch = hecr_many(profiles, np.array([bound * (1 - 1e-16)]), paper_params)
        assert np.isnan(batch[0])

    def test_shape_mismatch_rejected(self, paper_params):
        with pytest.raises(InvalidParameterError):
            hecr_many(np.ones((3, 2)), np.ones(2), paper_params)
