"""Unit tests for repro.core.profile."""

import numpy as np
import pytest

from repro.core.profile import Profile
from repro.errors import InvalidProfileError


class TestConstruction:
    def test_basic(self):
        p = Profile([1.0, 0.5])
        assert p.n == 2
        assert list(p) == [1.0, 0.5]

    def test_rejects_empty(self):
        with pytest.raises(InvalidProfileError):
            Profile([])

    def test_rejects_zero(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0, -0.5])

    def test_rejects_nan(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(InvalidProfileError):
            Profile(np.ones((2, 2)))

    def test_rho_read_only(self):
        p = Profile([1.0, 0.5])
        with pytest.raises(ValueError):
            p.rho[0] = 2.0

    def test_input_not_aliased(self):
        src = np.array([1.0, 0.5])
        p = Profile(src)
        src[0] = 99.0
        assert p[0] == 1.0

    def test_require_power_order(self):
        with pytest.raises(InvalidProfileError):
            Profile([0.5, 1.0], require_power_order=True)
        Profile([1.0, 0.5], require_power_order=True)

    def test_require_normalized(self):
        with pytest.raises(InvalidProfileError):
            Profile([0.5, 0.25], require_normalized=True)
        Profile([1.0, 0.25], require_normalized=True)


class TestFactories:
    def test_homogeneous(self):
        p = Profile.homogeneous(5, 0.3)
        assert p.is_homogeneous
        assert p.n == 5
        assert p[0] == 0.3

    def test_linear_matches_paper(self):
        # n = 8: ⟨1, 7/8, …, 1/8⟩
        p = Profile.linear(8)
        assert p.rho == pytest.approx([1, 7 / 8, 6 / 8, 5 / 8, 4 / 8, 3 / 8, 2 / 8, 1 / 8])

    def test_harmonic_matches_paper(self):
        p = Profile.harmonic(8)
        assert p.rho == pytest.approx([1 / i for i in range(1, 9)])

    def test_linear_and_harmonic_are_power_ordered_and_normalized(self):
        for p in (Profile.linear(16), Profile.harmonic(16)):
            assert p.is_power_ordered
            assert p.is_normalized

    def test_geometric(self):
        p = Profile.geometric(4, 0.5)
        assert p.rho == pytest.approx([1.0, 0.5, 0.25, 0.125])

    def test_geometric_bad_ratio(self):
        with pytest.raises(InvalidProfileError):
            Profile.geometric(4, 1.5)

    def test_two_point(self):
        p = Profile.two_point(2, 3, 1.0, 0.2)
        assert p.n == 5
        assert list(p) == [1.0, 1.0, 0.2, 0.2, 0.2]

    def test_two_point_ordering_enforced(self):
        with pytest.raises(InvalidProfileError):
            Profile.two_point(1, 1, rho_slow=0.1, rho_fast=0.5)

    def test_from_speeds(self):
        p = Profile.from_speeds([1.0, 2.0, 4.0])
        # slowest machine (speed 1) gets rho 1; fastest rho 0.25
        assert p.rho == pytest.approx([1.0, 0.5, 0.25])
        assert p.is_normalized
        assert p.is_power_ordered

    def test_zero_size_rejected(self):
        for factory in (Profile.homogeneous, Profile.linear, Profile.harmonic):
            with pytest.raises(InvalidProfileError):
                factory(0)


class TestStatistics:
    def test_mean(self):
        assert Profile([1.0, 0.5]).mean == pytest.approx(0.75)

    def test_variance_population(self):
        assert Profile([1.0, 0.5]).variance == pytest.approx(0.0625)

    def test_geometric_mean(self):
        assert Profile([1.0, 0.25]).geometric_mean == pytest.approx(0.5)

    def test_total_speed(self):
        assert Profile([1.0, 0.5, 0.25]).total_speed == pytest.approx(7.0)

    def test_slowest_fastest(self):
        p = Profile([0.3, 1.0, 0.1])
        assert p.slowest_rho == 1.0
        assert p.fastest_rho == 0.1


class TestTransformations:
    def test_power_ordered(self):
        p = Profile([0.25, 1.0, 0.5]).power_ordered()
        assert list(p) == [1.0, 0.5, 0.25]

    def test_power_ordered_identity_fastpath(self):
        p = Profile([1.0, 0.5])
        assert p.power_ordered() is p

    def test_normalized(self):
        p = Profile([0.5, 0.25]).normalized()
        assert list(p) == [1.0, 0.5]

    def test_normalized_identity_fastpath(self):
        p = Profile([1.0, 0.5])
        assert p.normalized() is p

    def test_with_rho_at(self):
        p = Profile([1.0, 0.5])
        q = p.with_rho_at(1, 0.4)
        assert list(q) == [1.0, 0.4]
        assert list(p) == [1.0, 0.5]  # original unchanged

    def test_with_rho_at_bad_index(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0]).with_rho_at(1, 0.5)

    def test_with_rho_at_bad_value(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0]).with_rho_at(0, -0.5)

    def test_without(self):
        p = Profile([1.0, 0.5, 0.25]).without(1)
        assert list(p) == [1.0, 0.25]

    def test_without_last_computer_rejected(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0]).without(0)

    def test_extended(self):
        p = Profile([1.0]).extended(0.5)
        assert list(p) == [1.0, 0.5]

    def test_permuted(self):
        p = Profile([1.0, 0.5, 0.25]).permuted([2, 0, 1])
        assert list(p) == [0.25, 1.0, 0.5]

    def test_permuted_rejects_non_permutation(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0, 0.5]).permuted([0, 0])


class TestMinorization:
    def test_strict_dominance(self):
        assert Profile([0.9, 0.4]).minorizes(Profile([1.0, 0.5]))

    def test_equal_profiles_do_not_minorize(self):
        p = Profile([1.0, 0.5])
        assert not p.minorizes(Profile([1.0, 0.5]))

    def test_partial_improvement_counts(self):
        assert Profile([1.0, 0.4]).minorizes(Profile([1.0, 0.5]))

    def test_order_insensitive(self):
        assert Profile([0.4, 1.0]).minorizes(Profile([0.5, 1.0]))

    def test_paper_example_does_not_minorize(self):
        # ⟨0.99, 0.02⟩ outperforms ⟨0.5, 0.5⟩ but does not minorize it.
        assert not Profile([0.99, 0.02]).minorizes(Profile([0.5, 0.5]))

    def test_size_mismatch(self):
        with pytest.raises(InvalidProfileError):
            Profile([1.0]).minorizes(Profile([1.0, 0.5]))

    def test_type_error(self):
        with pytest.raises(TypeError):
            Profile([1.0]).minorizes([1.0])  # type: ignore[arg-type]


class TestDunder:
    def test_equality_and_hash(self):
        a = Profile([1.0, 0.5])
        b = Profile([1.0, 0.5])
        c = Profile([0.5, 1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_getitem(self):
        assert Profile([1.0, 0.5])[1] == 0.5

    def test_len(self):
        assert len(Profile.linear(7)) == 7

    def test_repr_truncates(self):
        text = repr(Profile.linear(20))
        assert "20 computers" in text

    def test_exact_rho_roundtrip(self):
        p = Profile([1.0, 1 / 3])
        exact = p.exact_rho()
        assert [float(f) for f in exact] == list(p)
