"""Unit tests for repro.core.params (paper §2.1, Tables 1–2)."""

import math

import pytest

from repro.core.params import (
    FIG34_CALIBRATION,
    NEGLIGIBLE_OVERHEADS,
    PAPER_TABLE1,
    ModelParams,
)
from repro.errors import InvalidParameterError


class TestConstruction:
    def test_table1_values(self):
        assert PAPER_TABLE1.tau == 1e-6
        assert PAPER_TABLE1.pi == 1e-5
        assert PAPER_TABLE1.delta == 1.0

    def test_derived_A(self):
        assert PAPER_TABLE1.A == pytest.approx(1.1e-5)

    def test_derived_B(self):
        assert PAPER_TABLE1.B == pytest.approx(1.00002)

    def test_tau_delta(self):
        p = ModelParams(tau=2.0, pi=0.5, delta=0.25)
        assert p.tau_delta == pytest.approx(0.5)

    def test_zero_pi_allowed(self):
        p = ModelParams(tau=1e-3, pi=0.0)
        assert p.B == 1.0

    def test_negative_tau_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=-1e-6, pi=1e-5)

    def test_zero_tau_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=0.0, pi=1e-5)

    def test_negative_pi_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=1e-6, pi=-1.0)

    def test_delta_above_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=1e-6, pi=1e-5, delta=1.5)

    def test_delta_below_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=1e-6, pi=1e-5, delta=-0.1)

    def test_nan_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=float("nan"), pi=1e-5)

    def test_inf_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModelParams(tau=float("inf"), pi=1e-5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_TABLE1.tau = 2.0  # type: ignore[misc]


class TestStandingAssumption:
    def test_paper_params_satisfy(self):
        assert PAPER_TABLE1.satisfies_standing_assumption

    def test_fig34_satisfy(self):
        assert FIG34_CALIBRATION.satisfies_standing_assumption

    def test_tau_delta_leq_A_always_for_delta_leq_1(self):
        p = ModelParams(tau=0.9, pi=0.0, delta=1.0)
        assert p.tau_delta <= p.A

    def test_extreme_tau_violates(self):
        # τ > 1 + δπ makes A > B.
        p = ModelParams(tau=5.0, pi=0.0, delta=0.0)
        assert not p.satisfies_standing_assumption
        with pytest.raises(InvalidParameterError):
            p.require_standing_assumption()

    def test_require_passes_silently(self):
        PAPER_TABLE1.require_standing_assumption()


class TestThreshold:
    def test_threshold_formula(self):
        p = ModelParams(tau=0.2, pi=0.0, delta=1.0)
        assert p.speedup_threshold == pytest.approx(0.2 * 0.2 / 1.0)

    def test_fig34_threshold_in_window(self):
        # The Fig-3/4 phase structure needs the threshold in (1/32, 1/16).
        assert 1 / 32 < FIG34_CALIBRATION.speedup_threshold < 1 / 16

    def test_delta_zero_threshold_zero(self):
        p = ModelParams(tau=0.1, pi=0.01, delta=0.0)
        assert p.speedup_threshold == 0.0


class TestDegenerate:
    def test_paper_not_degenerate(self):
        assert not PAPER_TABLE1.is_degenerate

    def test_pi_zero_delta_one_is_degenerate(self):
        # A = π + τ = τ = τδ exactly when π = 0 and δ = 1.
        p = ModelParams(tau=0.3, pi=0.0, delta=1.0)
        assert p.is_degenerate


class TestExactTwin:
    def test_exact_matches_float(self):
        exact = PAPER_TABLE1.exact()
        assert float(exact.A) == PAPER_TABLE1.A
        assert float(exact.B) == PAPER_TABLE1.B
        assert float(exact.tau_delta) == PAPER_TABLE1.tau_delta

    def test_exact_threshold(self):
        p = ModelParams(tau=0.5, pi=0.25, delta=1.0)
        assert float(p.exact().speedup_threshold) == pytest.approx(p.speedup_threshold)


class TestFromRates:
    def test_bandwidth_inverts(self):
        p = ModelParams.from_rates(bandwidth=1e6, package_rate=1e5)
        assert p.tau == pytest.approx(1e-6)
        assert p.pi == pytest.approx(1e-5)

    def test_infinite_package_rate(self):
        p = ModelParams.from_rates(bandwidth=10.0, package_rate=math.inf)
        assert p.pi == 0.0

    def test_bad_bandwidth(self):
        with pytest.raises(InvalidParameterError):
            ModelParams.from_rates(bandwidth=0.0, package_rate=1.0)

    def test_bad_package_rate(self):
        with pytest.raises(InvalidParameterError):
            ModelParams.from_rates(bandwidth=1.0, package_rate=-5.0)


class TestDerivedTable:
    def test_keys(self):
        table = PAPER_TABLE1.derived_table()
        assert set(table) == {"A", "B", "tau_delta", "A_minus_tau_delta",
                              "speedup_threshold"}

    def test_negligible_overheads_sane(self):
        assert NEGLIGIBLE_OVERHEADS.B == 1.0
        assert NEGLIGIBLE_OVERHEADS.A == pytest.approx(1e-9)
