"""Unit tests for repro.core.exact — the Fraction ground truth."""

from fractions import Fraction

import pytest

from repro.core.exact import (
    exact_rho_values,
    homogeneous_x_exact,
    work_rate_exact,
    work_ratio_exact,
    x_measure_exact,
)
from repro.core.homogeneous import homogeneous_x
from repro.core.measure import work_rate, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestExactX:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_float_within_ulps(self, profile, params):
        exact = x_measure_exact(profile, params)
        approx = x_measure(profile, params)
        assert approx == pytest.approx(float(exact), rel=1e-13)

    def test_returns_fraction(self, paper_params):
        assert isinstance(x_measure_exact([1, Fraction(1, 2)], paper_params), Fraction)

    def test_single_computer_exact_value(self):
        params = ModelParams(tau=0.25, pi=0.5, delta=1.0)
        # A = 3/4, B = 2, rho = 1: X = 1/(2 + 3/4) = 4/11.
        assert x_measure_exact([1], params) == Fraction(4, 11)

    def test_accepts_fractions_directly(self, paper_params):
        x1 = x_measure_exact([Fraction(1), Fraction(1, 3)], paper_params)
        x2 = x_measure_exact([1.0, 1 / 3], paper_params)
        # 1/3 as float is not Fraction(1,3); the two must differ slightly.
        assert x1 != x2

    def test_empty_rejected(self, paper_params):
        with pytest.raises(InvalidProfileError):
            x_measure_exact([], paper_params)

    def test_nonpositive_rejected(self, paper_params):
        with pytest.raises(InvalidProfileError):
            x_measure_exact([1, 0], paper_params)


class TestExactWork:
    def test_work_rate_matches_float(self, paper_params, table4_profile):
        exact = work_rate_exact(table4_profile, paper_params)
        assert work_rate(table4_profile, paper_params) == pytest.approx(
            float(exact), rel=1e-13)

    def test_work_ratio_exact_ordering(self):
        # Theorem 3 sanity at exact precision: speeding the fastest wins.
        params = ModelParams(tau=0.25, pi=0.125, delta=1.0)
        base = [Fraction(1), Fraction(1, 2)]
        speed_slow = [Fraction(3, 4), Fraction(1, 2)]
        speed_fast = [Fraction(1), Fraction(1, 4)]
        r_slow = work_ratio_exact(speed_slow, base, params)
        r_fast = work_ratio_exact(speed_fast, base, params)
        assert r_fast > r_slow > 1


class TestExactHomogeneous:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_matches_float(self, n, paper_params):
        exact = homogeneous_x_exact(n, Fraction(1, 2), paper_params)
        assert homogeneous_x(n, 0.5, paper_params) == pytest.approx(
            float(exact), rel=1e-12)

    def test_degenerate_branch(self):
        params = ModelParams(tau=0.25, pi=0.0, delta=1.0)
        assert homogeneous_x_exact(4, Fraction(1, 2), params) == Fraction(4) / (
            Fraction(1, 2) + Fraction(1, 4))

    def test_matches_general_exact(self, paper_params):
        direct = x_measure_exact([Fraction(1, 2)] * 3, paper_params)
        closed = homogeneous_x_exact(3, Fraction(1, 2), paper_params)
        assert direct == closed


class TestExactRhoValues:
    def test_profile_roundtrip(self):
        p = Profile([1.0, 0.5])
        assert exact_rho_values(p) == (Fraction(1), Fraction(1, 2))

    def test_rejects_empty(self):
        with pytest.raises(InvalidProfileError):
            exact_rho_values([])
