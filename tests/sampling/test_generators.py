"""Unit tests for repro.sampling.generators."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.generators import (
    PROFILE_SAMPLERS,
    RHO_FLOOR,
    beta_profile,
    power_profile,
    two_point_profile,
    uniform_profile,
)


class TestUniform:
    def test_in_range(self, rng):
        p = uniform_profile(rng, 1000)
        assert p.fastest_rho >= RHO_FLOOR
        assert p.slowest_rho <= 1.0

    def test_reproducible_from_seed(self):
        a = uniform_profile(np.random.default_rng(7), 10)
        b = uniform_profile(np.random.default_rng(7), 10)
        assert a == b

    def test_rejects_bad_low(self, rng):
        with pytest.raises(SamplingError):
            uniform_profile(rng, 4, low=1.5)

    def test_rejects_bad_n(self, rng):
        with pytest.raises(SamplingError):
            uniform_profile(rng, 0)


class TestBeta:
    def test_in_range(self, rng):
        p = beta_profile(rng, 500, a=0.5, b=3.0)
        assert p.fastest_rho >= RHO_FLOOR
        assert p.slowest_rho <= 1.0

    def test_skew_direction(self, rng):
        fast_heavy = beta_profile(rng, 4000, a=1.0, b=5.0)
        slow_heavy = beta_profile(rng, 4000, a=5.0, b=1.0)
        assert fast_heavy.mean < slow_heavy.mean

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(SamplingError):
            beta_profile(rng, 4, a=0.0)


class TestPower:
    def test_gamma_concentrates_fast(self, rng):
        heavy = power_profile(rng, 4000, gamma=4.0)
        flat = power_profile(rng, 4000, gamma=1.0)
        assert heavy.mean < flat.mean

    def test_rejects_bad_gamma(self, rng):
        with pytest.raises(SamplingError):
            power_profile(rng, 4, gamma=-1.0)


class TestTwoPoint:
    def test_only_two_values(self, rng):
        p = two_point_profile(rng, 200, rho_fast=0.2, rho_slow=0.9)
        assert set(np.unique(p.rho)) <= {0.2, 0.9}

    def test_p_fast_extremes(self, rng):
        all_fast = two_point_profile(rng, 50, p_fast=1.0)
        assert all_fast.is_homogeneous
        all_slow = two_point_profile(rng, 50, p_fast=0.0)
        assert all_slow.slowest_rho == 1.0

    def test_rejects_inverted_rates(self, rng):
        with pytest.raises(SamplingError):
            two_point_profile(rng, 4, rho_fast=0.9, rho_slow=0.2)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(SamplingError):
            two_point_profile(rng, 4, p_fast=1.5)


class TestRegistry:
    def test_all_samplers_produce_valid_profiles(self, rng):
        for name, sampler in PROFILE_SAMPLERS.items():
            p = sampler(rng, 16)
            assert p.n == 16, name
            assert p.fastest_rho > 0.0, name
            assert p.slowest_rho <= 1.0, name
