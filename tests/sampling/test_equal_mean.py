"""Unit tests for repro.sampling.equal_mean."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.equal_mean import equal_mean_pair, mean_preserving_spread


class TestRescaleStrategy:
    def test_means_match(self, rng):
        for _ in range(20):
            a, b = equal_mean_pair(rng, 8, strategy="rescale")
            assert b.mean == pytest.approx(a.mean, rel=1e-12)

    def test_values_in_range(self, rng):
        a, b = equal_mean_pair(rng, 64, strategy="rescale")
        for p in (a, b):
            assert p.fastest_rho > 0.0
            assert p.slowest_rho <= 1.0

    def test_variances_generically_differ(self, rng):
        diffs = [abs(a.variance - b.variance)
                 for a, b in (equal_mean_pair(rng, 8) for _ in range(10))]
        assert all(d > 0.0 for d in diffs)


class TestSpreadStrategy:
    def test_means_match_exactly_by_construction(self, rng):
        a, b = equal_mean_pair(rng, 16, strategy="spread")
        assert a.mean == pytest.approx(b.mean, abs=1e-12)

    def test_widened_has_larger_variance(self, rng):
        for _ in range(10):
            a, b = equal_mean_pair(rng, 16, strategy="spread")
            assert a.variance >= b.variance

    def test_spread_steps_parameter(self, rng):
        a, b = equal_mean_pair(rng, 8, strategy="spread", spread_steps=100)
        assert a.variance > b.variance


class TestWindowStrategy:
    def test_means_match(self, rng):
        for _ in range(20):
            a, b = equal_mean_pair(rng, 32, strategy="window")
            assert b.mean == pytest.approx(a.mean, rel=1e-12)

    def test_gap_does_not_collapse_with_n(self, rng):
        gaps_small = np.mean([abs(a.variance - b.variance)
                              for a, b in (equal_mean_pair(rng, 8, strategy="window")
                                           for _ in range(60))])
        gaps_large = np.mean([abs(a.variance - b.variance)
                              for a, b in (equal_mean_pair(rng, 512, strategy="window")
                                           for _ in range(60))])
        # O(1) gaps at every size (the rescale strategy's gaps vanish).
        assert gaps_large > 0.25 * gaps_small


class TestMixedStrategy:
    def test_produces_valid_pairs(self, rng):
        for _ in range(10):
            a, b = equal_mean_pair(rng, 16, strategy="mixed")
            assert a.mean == pytest.approx(b.mean, rel=1e-12)


class TestMeanPreservingSpread:
    def test_sum_invariant(self, rng):
        values = rng.uniform(0.1, 0.9, 10)
        out = mean_preserving_spread(rng, values, steps=50, widen=True)
        assert out.sum() == pytest.approx(values.sum(), rel=1e-12)

    def test_widen_increases_variance(self, rng):
        values = rng.uniform(0.3, 0.7, 10)
        out = mean_preserving_spread(rng, values, steps=50, widen=True)
        assert out.var() >= values.var()

    def test_tighten_decreases_variance(self, rng):
        values = rng.uniform(0.1, 0.9, 10)
        out = mean_preserving_spread(rng, values, steps=50, widen=False)
        assert out.var() <= values.var()

    def test_stays_in_box(self, rng):
        values = rng.uniform(0.1, 0.9, 10)
        out = mean_preserving_spread(rng, values, steps=200, widen=True,
                                     low=0.05, high=0.95)
        assert out.min() >= 0.05 - 1e-12
        assert out.max() <= 0.95 + 1e-12

    def test_input_not_modified(self, rng):
        values = rng.uniform(0.1, 0.9, 10)
        copy = values.copy()
        mean_preserving_spread(rng, values, steps=10, widen=True)
        assert (values == copy).all()

    def test_needs_two_entries(self, rng):
        with pytest.raises(SamplingError):
            mean_preserving_spread(rng, np.array([0.5]), steps=1, widen=True)


class TestValidation:
    def test_rejects_n1(self, rng):
        with pytest.raises(SamplingError):
            equal_mean_pair(rng, 1)

    def test_rejects_unknown_strategy(self, rng):
        with pytest.raises(SamplingError):
            equal_mean_pair(rng, 4, strategy="bogus")  # type: ignore[arg-type]
