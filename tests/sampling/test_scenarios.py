"""Unit tests for repro.sampling.scenarios."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling.scenarios import (
    SCENARIOS,
    aging_lab,
    cloud_spot_mix,
    hero_and_herd,
    two_tier_datacenter,
    volunteer_swarm,
)


class TestAgingLab:
    def test_geometric_decay(self):
        p = aging_lab(4, generation_speedup=2.0)
        assert list(p) == pytest.approx([1.0, 0.5, 0.25, 0.125])

    def test_power_ordered_and_normalized(self):
        p = aging_lab(6)
        assert p.is_power_ordered
        assert p.is_normalized

    def test_validation(self):
        with pytest.raises(SamplingError):
            aging_lab(0)
        with pytest.raises(SamplingError):
            aging_lab(4, generation_speedup=1.0)


class TestTwoTier:
    def test_sizes(self):
        p = two_tier_datacenter(5, 2, tier_ratio=4.0)
        assert p.n == 7
        assert sorted(set(p))[0] == 0.25

    def test_validation(self):
        with pytest.raises(SamplingError):
            two_tier_datacenter(tier_ratio=0.5)


class TestVolunteerSwarm:
    def test_shape(self, rng):
        p = volunteer_swarm(rng, 50)
        assert p.n == 50
        assert p.is_power_ordered
        # Power-law concentrates toward fast machines: median below mean.
        assert np.median(p.rho) < p.mean


class TestCloudSpotMix:
    def test_mostly_mid_range(self, rng):
        p = cloud_spot_mix(rng, 200, outlier_fraction=0.1)
        mid = np.sum((p.rho >= 0.4) & (p.rho <= 0.6))
        assert mid >= 0.8 * 200

    def test_no_outliers_case(self, rng):
        p = cloud_spot_mix(rng, 50, outlier_fraction=0.0)
        assert p.fastest_rho >= 0.4

    def test_validation(self, rng):
        with pytest.raises(SamplingError):
            cloud_spot_mix(rng, 10, outlier_fraction=1.0)


class TestHeroAndHerd:
    def test_shape(self):
        p = hero_and_herd(3, hero_speedup=5.0)
        assert list(p) == [1.0, 1.0, 1.0, 0.2]

    def test_validation(self):
        with pytest.raises(SamplingError):
            hero_and_herd(hero_speedup=1.0)


class TestRegistry:
    def test_deterministic_scenarios_runnable(self):
        for name, factory in SCENARIOS.items():
            profile = factory()
            assert profile.n >= 2, name
