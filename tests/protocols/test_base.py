"""Unit tests for repro.protocols.base."""

import numpy as np
import pytest

from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.errors import ProtocolError
from repro.protocols.base import WorkAllocation, validate_order


class TestValidateOrder:
    def test_accepts_permutation(self):
        assert validate_order([2, 0, 1], 3) == (2, 0, 1)

    def test_accepts_range(self):
        assert validate_order(range(4), 4) == (0, 1, 2, 3)

    def test_rejects_duplicate(self):
        with pytest.raises(ProtocolError):
            validate_order([0, 0, 1], 3)

    def test_rejects_wrong_length(self):
        with pytest.raises(ProtocolError):
            validate_order([0, 1], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ProtocolError):
            validate_order([1, 2, 3], 3)

    def test_rejects_non_integers(self):
        with pytest.raises(ProtocolError):
            validate_order(["a", "b"], 2)


def _alloc(w=(3.0, 2.0), lifespan=10.0, sigma=(0, 1), phi=(0, 1)):
    return WorkAllocation(
        profile=Profile([1.0, 0.5]),
        params=PAPER_TABLE1,
        lifespan=lifespan,
        w=np.asarray(w),
        startup_order=sigma,
        finishing_order=phi,
        protocol_name="test",
    )


class TestWorkAllocation:
    def test_total_work(self):
        assert _alloc().total_work == 5.0

    def test_work_fractions_sum_to_one(self):
        assert _alloc().work_fractions.sum() == pytest.approx(1.0)

    def test_zero_work_fractions(self):
        assert _alloc(w=(0.0, 0.0)).work_fractions.tolist() == [0.0, 0.0]

    def test_is_fifo(self):
        assert _alloc().is_fifo
        assert not _alloc(phi=(1, 0)).is_fifo

    def test_w_in_startup_order(self):
        alloc = _alloc(w=(3.0, 2.0), sigma=(1, 0), phi=(1, 0))
        assert alloc.w_in_startup_order().tolist() == [2.0, 3.0]

    def test_w_in_finishing_order(self):
        alloc = _alloc(w=(3.0, 2.0), sigma=(0, 1), phi=(1, 0))
        assert alloc.w_in_finishing_order().tolist() == [2.0, 3.0]

    def test_w_read_only(self):
        alloc = _alloc()
        with pytest.raises(ValueError):
            alloc.w[0] = 7.0

    def test_rejects_negative_work(self):
        with pytest.raises(ProtocolError):
            _alloc(w=(-1.0, 2.0))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ProtocolError):
            _alloc(w=(1.0, 2.0, 3.0))

    def test_rejects_bad_lifespan(self):
        with pytest.raises(ProtocolError):
            _alloc(lifespan=0.0)

    def test_rejects_bad_orders(self):
        with pytest.raises(ProtocolError):
            _alloc(sigma=(0, 0))

    def test_summary_mentions_name_and_work(self):
        text = _alloc().summary()
        assert "test" in text
        assert "W=5" in text
