"""Unit tests for repro.protocols.general — the LP scheduler."""

import numpy as np
import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ProtocolError
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import (
    GeneralProtocol,
    lp_allocation,
    lp_allocation_many,
)


class TestLpAllocation:
    def test_fifo_lp_matches_closed_form(self, heavy_comm_params, table4_profile):
        order = (0, 1, 2, 3)
        lp = lp_allocation(table4_profile, heavy_comm_params, 20.0, order, order)
        closed = fifo_allocation(table4_profile, heavy_comm_params, 20.0, order)
        assert lp.total_work == pytest.approx(closed.total_work, rel=1e-7)
        assert lp.w == pytest.approx(closed.w, rel=1e-5)

    def test_no_sampled_protocol_beats_fifo(self, heavy_comm_params, table4_profile, rng):
        fifo = fifo_allocation(table4_profile, heavy_comm_params, 20.0).total_work
        for _ in range(15):
            sigma = tuple(rng.permutation(4).tolist())
            phi = tuple(rng.permutation(4).tolist())
            w = lp_allocation(table4_profile, heavy_comm_params, 20.0,
                              sigma, phi).total_work
            assert w <= fifo * (1.0 + 1e-9)

    def test_quanta_nonnegative(self, heavy_comm_params, table4_profile):
        alloc = lp_allocation(table4_profile, heavy_comm_params, 20.0,
                              (3, 1, 0, 2), (0, 2, 3, 1))
        assert (alloc.w >= 0.0).all()

    def test_scales_linearly_with_lifespan(self, heavy_comm_params, table4_profile):
        a1 = lp_allocation(table4_profile, heavy_comm_params, 10.0,
                           (0, 1, 2, 3), (1, 0, 3, 2))
        a2 = lp_allocation(table4_profile, heavy_comm_params, 20.0,
                           (0, 1, 2, 3), (1, 0, 3, 2))
        assert a2.total_work == pytest.approx(2.0 * a1.total_work, rel=1e-7)

    def test_single_computer(self, paper_params):
        alloc = lp_allocation(Profile([1.0]), paper_params, 10.0, (0,), (0,))
        closed = fifo_allocation(Profile([1.0]), paper_params, 10.0)
        assert alloc.total_work == pytest.approx(closed.total_work, rel=1e-9)

    def test_rejects_bad_order(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            lp_allocation(table4_profile, paper_params, 10.0, (0, 1), (0, 1, 2, 3))

    def test_rejects_bad_lifespan(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            lp_allocation(table4_profile, paper_params, 0.0,
                          (0, 1, 2, 3), (0, 1, 2, 3))

    def test_separation_constraint_binds_under_saturation(self, table4_profile):
        # In a communication-dominated regime, disabling the separation
        # constraint can only increase (never decrease) the LP optimum.
        params = ModelParams(tau=0.2, pi=0.01, delta=1.0)
        order = (0, 1, 2, 3)
        with_sep = lp_allocation(table4_profile, params, 10.0, order, order,
                                 enforce_separation=True).total_work
        without = lp_allocation(table4_profile, params, 10.0, order, order,
                                enforce_separation=False).total_work
        assert without >= with_sep


class TestLpAllocationMany:
    def test_bit_identical_to_single_solves(self, heavy_comm_params,
                                            table4_profile, rng):
        pairs = [(tuple(rng.permutation(4).tolist()),
                  tuple(rng.permutation(4).tolist())) for _ in range(8)]
        batch = lp_allocation_many(table4_profile, heavy_comm_params, 20.0,
                                   pairs)
        assert len(batch) == len(pairs)
        for (sigma, phi), alloc in zip(pairs, batch):
            single = lp_allocation(table4_profile, heavy_comm_params, 20.0,
                                   sigma, phi)
            assert np.array_equal(alloc.w, single.w)
            assert alloc.startup_order == single.startup_order
            assert alloc.finishing_order == single.finishing_order

    def test_separation_flag_respected(self, table4_profile):
        params = ModelParams(tau=0.2, pi=0.01, delta=1.0)
        order = (0, 1, 2, 3)
        with_sep, = lp_allocation_many(table4_profile, params, 10.0,
                                       [(order, order)],
                                       enforce_separation=True)
        without, = lp_allocation_many(table4_profile, params, 10.0,
                                      [(order, order)],
                                      enforce_separation=False)
        assert without.total_work >= with_sep.total_work

    def test_empty_batch(self, paper_params, table4_profile):
        assert lp_allocation_many(table4_profile, paper_params, 10.0, []) == []

    def test_rejects_bad_order_in_batch(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            lp_allocation_many(table4_profile, paper_params, 10.0,
                               [((0, 1, 2, 3), (0, 1))])

    def test_rejects_bad_lifespan(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            lp_allocation_many(table4_profile, paper_params, -1.0,
                               [((0, 1, 2, 3), (0, 1, 2, 3))])


class TestGeneralProtocolClass:
    def test_labels_fifo_shapes(self, paper_params, table4_profile):
        proto = GeneralProtocol((0, 1, 2, 3), (0, 1, 2, 3))
        assert proto.allocate(table4_profile, paper_params, 5.0).protocol_name == "FIFO-LP"

    def test_labels_general_shapes(self, paper_params, table4_profile):
        proto = GeneralProtocol((0, 1, 2, 3), (3, 2, 1, 0))
        assert proto.allocate(table4_profile, paper_params, 5.0).protocol_name == "general-LP"
