"""Unit tests for repro.protocols.fifo — the optimal CEP solutions."""

from itertools import permutations

import numpy as np
import pytest

from repro.core.measure import work_production, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ProtocolError
from repro.protocols.fifo import (
    FifoProtocol,
    fifo_allocation,
    fifo_saturation_index,
    fifo_work_fractions,
)
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestWorkFractions:
    def test_sum_to_one(self, paper_params, table4_profile):
        assert fifo_work_fractions(table4_profile, paper_params).sum() == pytest.approx(1.0)

    def test_recurrence_holds(self, heavy_comm_params, table4_profile):
        # w_{k+1}(Bρ_{k+1} + A) = w_k(Bρ_k + τδ) along the startup order.
        params = heavy_comm_params
        w = fifo_work_fractions(table4_profile, params)
        rho = table4_profile.rho
        A, B, td = params.A, params.B, params.tau_delta
        for k in range(table4_profile.n - 1):
            lhs = w[k + 1] * (B * rho[k + 1] + A)
            rhs = w[k] * (B * rho[k] + td)
            assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_faster_computers_get_more_work(self, paper_params, table4_profile):
        # In the compute-dominant regime the work shares scale like 1/ρ.
        w = fifo_work_fractions(table4_profile, paper_params)
        assert list(w) == sorted(w)

    def test_startup_order_changes_shares(self, heavy_comm_params, table4_profile):
        w_default = fifo_work_fractions(table4_profile, heavy_comm_params)
        w_reversed = fifo_work_fractions(table4_profile, heavy_comm_params,
                                         startup_order=[3, 2, 1, 0])
        assert not np.allclose(w_default, w_reversed)

    def test_bad_order_rejected(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            fifo_work_fractions(table4_profile, paper_params, startup_order=[0, 1])


class TestAllocation:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_total_matches_theorem2(self, profile, params):
        alloc = fifo_allocation(profile, params, 50.0)
        assert alloc.total_work == pytest.approx(
            work_production(profile, params, 50.0), rel=1e-12)

    def test_order_invariance_theorem1_part2(self, heavy_comm_params, table4_profile):
        totals = {
            round(fifo_allocation(table4_profile, heavy_comm_params, 100.0,
                                  order).total_work, 9)
            for order in permutations(range(4))
        }
        assert len(totals) == 1

    def test_is_fifo(self, paper_params, table4_profile):
        alloc = fifo_allocation(table4_profile, paper_params, 10.0)
        assert alloc.is_fifo
        assert alloc.protocol_name == "FIFO"

    def test_scale_invariance(self, paper_params, table4_profile):
        a1 = fifo_allocation(table4_profile, paper_params, 10.0)
        a2 = fifo_allocation(table4_profile, paper_params, 30.0)
        assert a2.w == pytest.approx(3.0 * a1.w, rel=1e-12)

    def test_single_computer(self, paper_params):
        alloc = fifo_allocation(Profile([0.5]), paper_params, 10.0)
        assert alloc.total_work == pytest.approx(
            work_production(Profile([0.5]), paper_params, 10.0))

    def test_rejects_bad_lifespan(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            fifo_allocation(table4_profile, paper_params, -1.0)


class TestProtocolClass:
    def test_allocate_delegates(self, paper_params, table4_profile):
        proto = FifoProtocol()
        alloc = proto.allocate(table4_profile, paper_params, 10.0)
        assert alloc.total_work == pytest.approx(
            fifo_allocation(table4_profile, paper_params, 10.0).total_work)

    def test_fixed_startup_order(self, paper_params, table4_profile):
        proto = FifoProtocol(startup_order=[3, 2, 1, 0])
        alloc = proto.allocate(table4_profile, paper_params, 10.0)
        assert alloc.startup_order == (3, 2, 1, 0)

    def test_work_production_helper(self, paper_params, table4_profile):
        assert FifoProtocol().work_production(
            table4_profile, paper_params, 10.0) == pytest.approx(
            work_production(table4_profile, paper_params, 10.0))


class TestSaturationIndex:
    def test_paper_regime_far_from_saturation(self, paper_params, table4_profile):
        assert fifo_saturation_index(table4_profile, paper_params) < 0.01

    def test_heavy_comm_regime_can_saturate(self):
        params = ModelParams(tau=0.2, pi=0.01, delta=1.0)
        profile = Profile([1.0, 0.5, 1 / 3, 0.25])
        assert fifo_saturation_index(profile, params) > 1.0

    def test_index_is_a_times_x(self, paper_params, table4_profile):
        assert fifo_saturation_index(table4_profile, paper_params) == pytest.approx(
            paper_params.A * x_measure(table4_profile, paper_params))
