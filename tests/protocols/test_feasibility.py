"""Unit tests for repro.protocols.feasibility."""

import numpy as np
import pytest

from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.protocols.base import WorkAllocation
from repro.protocols.feasibility import (
    FeasibilityReport,
    Violation,
    check_allocation,
    check_timeline,
)
from repro.protocols.fifo import fifo_allocation
from repro.protocols.lifo import lifo_allocation
from repro.protocols.timeline import Interval, Timeline
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestFeasibleSchedules:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_fifo_feasible_below_saturation(self, profile, params):
        from repro.protocols.fifo import fifo_saturation_index
        if fifo_saturation_index(profile, params) > 1.0:
            pytest.skip("communication-dominated: Fig.-2 layout does not exist")
        report = check_allocation(fifo_allocation(profile, params, 40.0))
        assert report.feasible, report.describe()

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_fifo_infeasibility_detected_above_saturation(self, profile, params):
        from repro.protocols.fifo import fifo_saturation_index
        if fifo_saturation_index(profile, params) <= 1.0:
            pytest.skip("schedulable regime")
        report = check_allocation(fifo_allocation(profile, params, 40.0))
        assert not report.feasible  # the checker catches the over-promise

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_lifo_feasible_in_grid(self, params, table4_profile):
        from repro.protocols.fifo import fifo_saturation_index
        if fifo_saturation_index(table4_profile, params) > 1.0:
            pytest.skip("communication-dominated regime")
        report = check_allocation(lifo_allocation(table4_profile, params, 40.0))
        assert report.feasible, report.describe()

    def test_greedy_placement_also_feasible(self, heavy_comm_params, table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 40.0)
        report = check_allocation(alloc, results_as_late_as_possible=False)
        assert report.feasible, report.describe()

    def test_report_bool_and_describe(self, paper_params, table4_profile):
        report = check_allocation(fifo_allocation(table4_profile, paper_params, 10.0))
        assert bool(report)
        assert "feasible" in report.describe()


class TestViolationDetection:
    def _timeline_with(self, intervals, lifespan=10.0):
        profile = Profile([1.0, 0.5])
        alloc = WorkAllocation(profile=profile, params=PAPER_TABLE1,
                               lifespan=lifespan, w=np.array([1.0, 1.0]),
                               startup_order=(0, 1), finishing_order=(0, 1))
        return Timeline(allocation=alloc, intervals=tuple(intervals))

    def test_detects_network_overlap(self):
        tl = self._timeline_with([
            Interval("network", "work-transit", 0, 0.0, 2.0),
            Interval("network", "result-transit", 1, 1.0, 3.0),
        ])
        report = check_timeline(tl)
        assert not report.feasible
        assert any(v.code == "overlap" for v in report.violations)

    def test_detects_past_lifespan(self):
        tl = self._timeline_with([
            Interval("network", "work-transit", 0, 0.0, 11.0),
        ])
        report = check_timeline(tl)
        assert any(v.code == "past-lifespan" for v in report.violations)

    def test_detects_negative_start(self):
        tl = self._timeline_with([
            Interval("server", "work-prep", 0, -1.0, 1.0),
        ])
        report = check_timeline(tl)
        assert any(v.code == "before-start" for v in report.violations)

    def test_detects_causality_violation(self):
        tl = self._timeline_with([
            Interval("server", "work-prep", 0, 2.0, 3.0),
            Interval("network", "work-transit", 0, 1.0, 2.0),  # before prep!
        ])
        report = check_timeline(tl)
        assert any(v.code == "causality" for v in report.violations)

    def test_detects_incomplete_stage_chain(self):
        tl = self._timeline_with([
            Interval("server", "work-prep", 0, 0.0, 1.0),
        ])
        report = check_timeline(tl)
        assert any(v.code == "incomplete" for v in report.violations)

    def test_overcommitted_allocation_reported_not_raised(self, paper_params):
        alloc = WorkAllocation(profile=Profile([1.0]), params=paper_params,
                               lifespan=1.0, w=np.array([100.0]),
                               startup_order=(0,), finishing_order=(0,))
        report = check_allocation(alloc)
        assert not report.feasible
        assert report.violations[0].code == "slot-missed"

    def test_violation_str(self):
        v = Violation("overlap", "two messages collided")
        assert "overlap" in str(v)
        assert "collided" in str(v)

    def test_infeasible_describe_lists_all(self):
        report = FeasibilityReport(feasible=False, violations=(
            Violation("a", "first"), Violation("b", "second")))
        text = report.describe()
        assert "first" in text and "second" in text and "2" in text
