"""Unit tests for repro.protocols.conformance."""

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.base import Protocol, WorkAllocation
from repro.protocols.conformance import check_protocol_conformance
from repro.protocols.fifo import FifoProtocol
from repro.protocols.general import GeneralProtocol
from repro.protocols.lifo import LifoProtocol

PARAMS = ModelParams(tau=0.01, pi=0.001, delta=1.0)
PROFILE = Profile([1.0, 0.5, 1 / 3, 0.25])


class TestBuiltinsConform:
    def test_fifo(self):
        assert check_protocol_conformance(FifoProtocol(), PROFILE, PARAMS) == []

    def test_lifo(self):
        assert check_protocol_conformance(LifoProtocol(), PROFILE, PARAMS) == []

    def test_general_lp(self):
        proto = GeneralProtocol((0, 1, 2, 3), (2, 0, 3, 1))
        assert check_protocol_conformance(proto, PROFILE, PARAMS) == []


class _Overclaiming(Protocol):
    """A deliberately broken protocol claiming impossible production."""

    name = "overclaim"

    def allocate(self, profile, params, lifespan):
        from repro.protocols.fifo import fifo_allocation
        honest = fifo_allocation(profile, params, lifespan)
        return WorkAllocation(profile=profile, params=params, lifespan=lifespan,
                              w=honest.w * 2.0,
                              startup_order=honest.startup_order,
                              finishing_order=honest.finishing_order,
                              protocol_name="overclaim")


class _Raising(Protocol):
    name = "raising"

    def allocate(self, profile, params, lifespan):
        raise RuntimeError("boom")


class _NonDeterministic(Protocol):
    name = "random"

    def __init__(self):
        self._rng = np.random.default_rng(0)

    def allocate(self, profile, params, lifespan):
        from repro.protocols.fifo import fifo_allocation
        honest = fifo_allocation(profile, params, lifespan)
        jitter = 1.0 + 0.01 * self._rng.random()
        return WorkAllocation(profile=profile, params=params, lifespan=lifespan,
                              w=honest.w * 0.5 * jitter,
                              startup_order=honest.startup_order,
                              finishing_order=honest.finishing_order,
                              protocol_name="random")


class TestBrokenProtocolsCaught:
    def test_overclaim_detected(self):
        violations = check_protocol_conformance(_Overclaiming(), PROFILE, PARAMS)
        assert any("more work than the FIFO optimum" in v for v in violations)

    def test_overclaim_also_infeasible(self):
        violations = check_protocol_conformance(_Overclaiming(), PROFILE, PARAMS)
        assert any("infeasible" in v for v in violations)

    def test_raising_reported(self):
        violations = check_protocol_conformance(_Raising(), PROFILE, PARAMS)
        assert violations == ["allocate raised RuntimeError: boom"]

    def test_nondeterminism_detected(self):
        violations = check_protocol_conformance(_NonDeterministic(), PROFILE, PARAMS)
        assert any("deterministic" in v or "linear" in v for v in violations)
