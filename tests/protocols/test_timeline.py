"""Unit tests for repro.protocols.timeline (Figs. 1–2 reconstruction)."""

import numpy as np
import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InfeasibleScheduleError
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation
from repro.protocols.lifo import lifo_allocation
from repro.protocols.timeline import Interval, build_timeline


class TestInterval:
    def test_duration(self):
        iv = Interval("network", "work-transit", 0, 1.0, 3.0)
        assert iv.duration == 2.0

    def test_overlap_detection(self):
        a = Interval("network", "work-transit", 0, 0.0, 2.0)
        b = Interval("network", "result-transit", 1, 1.0, 3.0)
        c = Interval("network", "result-transit", 1, 2.0, 3.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open: touching is not overlap


class TestBuildTimelineFifo:
    def test_figure1_single_worker_structure(self, heavy_comm_params):
        # Fig. 1: prep → transit → busy → result, ending exactly at L.
        profile = Profile([1.0])
        alloc = fifo_allocation(profile, heavy_comm_params, 10.0)
        tl = build_timeline(alloc)
        kinds = [iv.kind for iv in tl.for_computer(0)]
        assert kinds == ["work-prep", "work-transit", "busy", "result-transit"]
        assert tl.makespan == pytest.approx(10.0, rel=1e-12)

    def test_figure2_three_workers_contiguous_sends(self, heavy_comm_params):
        profile = Profile([1.0, 0.5, 1 / 3])
        alloc = fifo_allocation(profile, heavy_comm_params, 10.0)
        tl = build_timeline(alloc)
        preps = [iv for iv in tl.on_resource("server") if iv.kind == "work-prep"]
        transits = [iv for iv in tl.on_resource("network") if iv.kind == "work-transit"]
        # Seriatim: prep k+1 starts exactly when transit k ends.
        for transit, nxt in zip(transits, preps[1:]):
            assert nxt.start == pytest.approx(transit.end, rel=1e-12)

    def test_results_contiguous_and_end_at_lifespan(self, heavy_comm_params):
        profile = Profile([1.0, 0.5, 1 / 3])
        alloc = fifo_allocation(profile, heavy_comm_params, 10.0)
        tl = build_timeline(alloc)
        results = [iv for iv in tl.on_resource("network") if iv.kind == "result-transit"]
        for prev, cur in zip(results, results[1:]):
            assert cur.start == pytest.approx(prev.end, rel=1e-12)
        assert results[-1].end == pytest.approx(10.0, rel=1e-12)

    def test_busy_duration_is_B_rho_w(self, heavy_comm_params):
        profile = Profile([1.0, 0.5])
        alloc = fifo_allocation(profile, heavy_comm_params, 10.0)
        tl = build_timeline(alloc)
        for c in range(2):
            busy = [iv for iv in tl.for_computer(c) if iv.kind == "busy"][0]
            expected = heavy_comm_params.B * profile.rho[c] * alloc.w[c]
            assert busy.duration == pytest.approx(expected, rel=1e-12)

    def test_utilization_bounded(self, heavy_comm_params, table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 10.0)
        tl = build_timeline(alloc)
        for resource in tl.resources:
            assert 0.0 < tl.utilization(resource) <= 1.0 + 1e-12


class TestBuildTimelineLifo:
    def test_lifo_results_in_reverse_order(self, heavy_comm_params, table4_profile):
        alloc = lifo_allocation(table4_profile, heavy_comm_params, 10.0)
        tl = build_timeline(alloc)
        results = [iv for iv in tl.on_resource("network")
                   if iv.kind == "result-transit"]
        assert [iv.computer for iv in results] == [3, 2, 1, 0]


class TestGreedyPlacement:
    def test_greedy_never_later_than_late(self, heavy_comm_params, table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 10.0)
        late = build_timeline(alloc, results_as_late_as_possible=True)
        greedy = build_timeline(alloc, results_as_late_as_possible=False)
        for c in range(4):
            late_result = [iv for iv in late.for_computer(c)
                           if iv.kind == "result-transit"][0]
            greedy_result = [iv for iv in greedy.for_computer(c)
                             if iv.kind == "result-transit"][0]
            assert greedy_result.start <= late_result.start + 1e-12


class TestEdgeCases:
    def test_zero_work_computer_skipped(self, paper_params):
        profile = Profile([1.0, 0.5])
        alloc = WorkAllocation(profile=profile, params=paper_params, lifespan=10.0,
                               w=np.array([5.0, 0.0]), startup_order=(0, 1),
                               finishing_order=(0, 1))
        tl = build_timeline(alloc)
        assert tl.for_computer(1) == []

    def test_delta_zero_produces_no_result_transits(self, table4_profile):
        params = ModelParams(tau=1e-3, pi=1e-4, delta=0.0)
        alloc = fifo_allocation(table4_profile, params, 10.0)
        tl = build_timeline(alloc)
        assert all(iv.kind != "result-transit" for iv in tl)

    def test_overcommitted_allocation_raises(self, paper_params):
        # Hand-build an allocation that can't meet its result slots.
        profile = Profile([1.0])
        alloc = WorkAllocation(profile=profile, params=paper_params, lifespan=1.0,
                               w=np.array([100.0]), startup_order=(0,),
                               finishing_order=(0,))
        with pytest.raises(InfeasibleScheduleError):
            build_timeline(alloc)
