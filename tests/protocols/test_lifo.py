"""Unit tests for repro.protocols.lifo."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation
from repro.protocols.lifo import LifoProtocol, lifo_allocation
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestLifoAllocation:
    def test_finishing_order_is_reverse(self, paper_params, table4_profile):
        alloc = lifo_allocation(table4_profile, paper_params, 10.0)
        assert alloc.finishing_order == tuple(reversed(alloc.startup_order))
        assert not alloc.is_fifo

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_never_beats_fifo(self, profile, params):
        # Theorem 1: FIFO is optimal.
        if profile.n == 1:
            pytest.skip("LIFO == FIFO for one computer")
        lifo = lifo_allocation(profile, params, 25.0).total_work
        fifo = fifo_allocation(profile, params, 25.0).total_work
        assert lifo <= fifo * (1.0 + 1e-12)

    def test_strictly_worse_when_comm_matters(self, heavy_comm_params, table4_profile):
        lifo = lifo_allocation(table4_profile, heavy_comm_params, 25.0).total_work
        fifo = fifo_allocation(table4_profile, heavy_comm_params, 25.0).total_work
        assert lifo < fifo

    @pytest.mark.parametrize("params", PARAM_GRID[:4])
    def test_matches_lp_optimum(self, params, table4_profile):
        # The all-tight recurrence is the LIFO optimum: the LP agrees.
        closed = lifo_allocation(table4_profile, params, 10.0)
        lp = lp_allocation(table4_profile, params, 10.0,
                           closed.startup_order, closed.finishing_order)
        assert closed.total_work == pytest.approx(lp.total_work, rel=1e-7)

    def test_all_quanta_positive(self, heavy_comm_params, table4_profile):
        alloc = lifo_allocation(table4_profile, heavy_comm_params, 10.0)
        assert (alloc.w > 0.0).all()

    def test_recurrence_constraints_tight(self, heavy_comm_params, table4_profile):
        # (A + τδ)·T_k + Bρ_k·w_k = L for every startup prefix.
        params = heavy_comm_params
        alloc = lifo_allocation(table4_profile, params, 10.0)
        w = alloc.w_in_startup_order()
        rho = table4_profile.rho[list(alloc.startup_order)]
        T = 0.0
        for k in range(table4_profile.n):
            T += w[k]
            lhs = (params.A + params.tau_delta) * T + params.B * rho[k] * w[k]
            assert lhs == pytest.approx(10.0, rel=1e-12)

    def test_lifo_total_is_order_invariant(self, heavy_comm_params, table4_profile):
        # Like FIFO, LIFO's *total* is a symmetric function of the profile
        # (individual quanta are not).
        default = lifo_allocation(table4_profile, heavy_comm_params, 10.0)
        reverse = lifo_allocation(table4_profile, heavy_comm_params, 10.0,
                                  startup_order=[3, 2, 1, 0])
        assert default.total_work == pytest.approx(reverse.total_work, rel=1e-12)
        assert not np.allclose(default.w, reverse.w)

    def test_rejects_bad_lifespan(self, paper_params, table4_profile):
        with pytest.raises(ProtocolError):
            lifo_allocation(table4_profile, paper_params, float("inf"))


class TestLifoProtocolClass:
    def test_allocate(self, paper_params, table4_profile):
        alloc = LifoProtocol().allocate(table4_profile, paper_params, 10.0)
        assert alloc.protocol_name == "LIFO"

    def test_fixed_order(self, paper_params, table4_profile):
        alloc = LifoProtocol([1, 0, 3, 2]).allocate(table4_profile, paper_params, 10.0)
        assert alloc.startup_order == (1, 0, 3, 2)
        assert alloc.finishing_order == (2, 3, 0, 1)
