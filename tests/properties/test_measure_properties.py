"""Property-based tests for the X-measure (hypothesis).

These pin down the paper's structural claims over *random* profiles and
environments rather than hand-picked cases:

* Prop. 2 monotonicity — speeding any computer strictly raises X;
* Theorem 1(2) symmetry — X is invariant under profile permutations;
* Lemma 1 — the symmetric-function expansion equals eq. (1), checked in
  exact rational arithmetic (no tolerance at all);
* float-vs-exact accuracy of the production implementation.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import x_measure_exact
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.predictors.coefficients import x_from_symmetric_functions_exact

# -- strategies ------------------------------------------------------------

rhos = st.lists(st.floats(min_value=0.01, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=10)

#: Rational parameter triples satisfying the model constraints; Fractions
#: keep the exact tests exact.
exact_params = st.tuples(
    st.fractions(min_value=Fraction(1, 1000), max_value=Fraction(1, 2)),   # tau
    st.fractions(min_value=Fraction(0), max_value=Fraction(1, 2)),         # pi
    st.fractions(min_value=Fraction(0), max_value=Fraction(1)),            # delta
)


def _params_from(triple) -> ModelParams:
    tau, pi, delta = triple
    return ModelParams(tau=float(tau), pi=float(pi), delta=float(delta))


# -- properties ------------------------------------------------------------

@given(rhos=rhos, triple=exact_params)
@settings(max_examples=150, deadline=None)
def test_x_positive_and_below_saturation(rhos, triple):
    params = _params_from(triple)
    x = x_measure(rhos, params)
    assert x > 0.0
    if params.A_minus_tau_delta > 0:
        assert x <= 1.0 / params.A_minus_tau_delta * (1 + 1e-12)


@given(rhos=rhos, triple=exact_params, data=st.data())
@settings(max_examples=150, deadline=None)
def test_permutation_invariance(rhos, triple, data):
    params = _params_from(triple)
    perm = data.draw(st.permutations(rhos))
    assert x_measure(perm, params) == pytest.approx(
        x_measure(rhos, params), rel=1e-10)


@given(rhos=rhos, triple=exact_params, data=st.data())
@settings(max_examples=150, deadline=None)
def test_proposition2_speedup_increases_x(rhos, triple, data):
    params = _params_from(triple)
    index = data.draw(st.integers(min_value=0, max_value=len(rhos) - 1))
    factor = data.draw(st.floats(min_value=0.1, max_value=0.95))
    base = x_measure(rhos, params)
    sped = list(rhos)
    sped[index] *= factor
    assert x_measure(sped, params) > base


@given(rhos=rhos, triple=exact_params)
@settings(max_examples=100, deadline=None)
def test_float_matches_exact(rhos, triple):
    params = _params_from(triple)
    exact = x_measure_exact(rhos, params)
    assert x_measure(rhos, params) == pytest.approx(float(exact), rel=1e-11)


@given(triple=exact_params,
       rationals=st.lists(st.fractions(min_value=Fraction(1, 100),
                                       max_value=Fraction(1)),
                          min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_lemma1_exact_identity(triple, rationals):
    """Lemma 1 as an exact rational identity — zero tolerance."""
    params = _params_from(triple)
    direct = x_measure_exact(rationals, params)
    expanded = x_from_symmetric_functions_exact(rationals, params)
    assert direct == expanded


@given(rhos=rhos, triple=exact_params,
       scale=st.floats(min_value=0.2, max_value=5.0))
@settings(max_examples=80, deadline=None)
def test_extending_cluster_increases_x(rhos, triple, scale):
    params = _params_from(triple)
    extra = min(1.0, max(0.01, scale * rhos[0]))
    assert x_measure(rhos + [extra], params) > x_measure(rhos, params)
