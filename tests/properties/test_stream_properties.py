"""Property-based tests for the streaming window/replay invariants.

Three ISSUE-pinned properties:

* the window grid **partitions event time** — every finite time maps to
  exactly one window index, with half-open bounds;
* a **closed window never reopens** — late events are counted, never
  admitted, no matter how the stream is ordered;
* replay is **shuffle-invariant within a window** — reordering events
  that share a window leaves the emitted record JSONL byte-identical,
  because windows sort canonically at close.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream import (StreamEvent, StreamProcessor, WindowManager,
                          record_to_line)

sizes = st.floats(min_value=0.1, max_value=1e3, allow_nan=False,
                  allow_infinity=False)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)


def _tick(time, worker=0, work=1.0):
    return StreamEvent(time=time, type="task_completed", worker=worker,
                       work=work)


@given(size=sizes, time_a=times, time_b=times)
@settings(max_examples=200, deadline=None)
def test_window_grid_partitions_event_time(size, time_a, time_b):
    manager = WindowManager(size)
    for time in (time_a, time_b):
        start, end = manager.bounds(manager.index_of(time))
        # Half-open membership: each time falls inside its own window.
        assert start <= time < end
    # The index map is monotone, so windows tile the line in order.
    if time_a <= time_b:
        assert manager.index_of(time_a) <= manager.index_of(time_b)
    else:
        assert manager.index_of(time_b) <= manager.index_of(time_a)
    # Adjacent windows tile the line (float grids are only approximately
    # adjacent: start + size vs (index + 1) * size differ in the lsb).
    index = manager.index_of(time_a)
    assert manager.bounds(index)[1] == pytest.approx(
        manager.bounds(index + 1)[0], rel=1e-12)


@given(size=sizes, event_times=st.lists(times, min_size=2, max_size=40))
@settings(max_examples=100, deadline=None)
def test_closed_windows_never_reopen(size, event_times):
    manager = WindowManager(size)
    closed = []
    for time in event_times:
        closed.extend(manager.add(_tick(time)))
    tail = manager.flush()
    if tail is not None:
        closed.append(tail)
    indices = [w.index for w in closed]
    # Each index closes at most once, in strictly increasing order.
    assert indices == sorted(set(indices))
    # Every admitted event sits in the window its time maps to.
    for window in closed:
        assert all(manager.index_of(e.time) == window.index
                   for e in window.events)
    # Conservation: every event is either admitted to some window or late.
    admitted = sum(len(w.events) for w in closed)
    assert manager.events_total == len(event_times)
    assert manager.late_total == len(event_times) - admitted


@given(event_times=st.lists(
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
           min_size=1, max_size=30),
       seed=st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_replay_is_shuffle_invariant_within_windows(event_times, seed):
    size = 10.0
    events = [_tick(t, worker=i % 3, work=1.0 + (i % 5))
              for i, t in enumerate(sorted(event_times))]

    def records(stream):
        processor = StreamProcessor(size, calibrate=False)
        lines = [record_to_line(r) for r in processor.process(stream)]
        lines += [record_to_line(r) for r in processor.finish()]
        return lines

    # Shuffle each window's events among themselves, preserving the
    # relative order of windows (so no event turns late).
    by_window: dict[int, list[StreamEvent]] = {}
    for event in events:
        by_window.setdefault(int(event.time // size), []).append(event)
    shuffled = []
    for index in sorted(by_window):
        bucket = list(by_window[index])
        seed.shuffle(bucket)
        shuffled.extend(bucket)

    assert records(shuffled) == records(events)
