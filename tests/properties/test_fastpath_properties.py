"""Property-based equivalence proofs for the analytic fast paths.

Three contracts, each randomized:

1. The event-free analytic engine agrees with the discrete-event engine
   within 1e-9 on ``completed_work``, ``makespan`` and every per-worker
   milestone, across random clusters, environments and protocol shapes
   (FIFO, LIFO, and random (Σ, Φ) LP allocations) — well over the 200
   fault-free cases the acceptance bar asks for.
2. An :class:`~repro.core.measure.XEvaluator` stays equal to a fresh
   ``x_measure`` after any sequence of set/insert/remove commits
   (bit-identical), and its O(1) previews agree within 1e-9.
3. ``x_decomposition(...).x_value`` reassembles ``x_measure`` for every
   valid (i, j) focus pair.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measure import XEvaluator, x_decomposition, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation
from repro.protocols.lifo import lifo_allocation
from repro.simulation.runner import simulate_allocation

_RECORD_FIELDS = ("send_prep_start", "arrived", "busy_end",
                  "result_start", "result_end")

rho_lists = st.lists(st.floats(min_value=0.1, max_value=5.0,
                               allow_nan=False, allow_infinity=False),
                     min_size=1, max_size=10)

params_strategy = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-6, max_value=0.05),
    pi=st.floats(min_value=1e-6, max_value=0.02),
    delta=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
)


def _assert_engines_agree(alloc, results_policy="late"):
    ev = simulate_allocation(alloc, engine="events",
                             results_policy=results_policy)
    an = simulate_allocation(alloc, engine="analytic",
                             results_policy=results_policy)
    tol = 1e-9 * max(1.0, alloc.lifespan)
    assert an.completed_computers == ev.completed_computers
    assert abs(an.completed_work - ev.completed_work) <= tol
    assert abs(an.makespan - ev.makespan) <= tol
    assert an.transits_granted == ev.transits_granted
    for re, ra in zip(ev.records, an.records):
        for field in _RECORD_FIELDS:
            a, b = getattr(re, field), getattr(ra, field)
            if np.isnan(a):
                assert np.isnan(b), (re.computer, field)
            else:
                assert abs(a - b) <= tol, (re.computer, field, a, b)


@given(rhos=rho_lists, params=params_strategy,
       lifespan=st.floats(min_value=5.0, max_value=500.0),
       policy=st.sampled_from(["late", "greedy"]))
@settings(max_examples=100, deadline=None)
def test_analytic_matches_events_on_fifo(rhos, params, lifespan, policy):
    alloc = fifo_allocation(Profile(rhos), params, lifespan)
    _assert_engines_agree(alloc, results_policy=policy)


@given(rhos=rho_lists, params=params_strategy,
       lifespan=st.floats(min_value=5.0, max_value=500.0))
@settings(max_examples=60, deadline=None)
def test_analytic_matches_events_on_lifo(rhos, params, lifespan):
    alloc = lifo_allocation(Profile(rhos), params, lifespan)
    _assert_engines_agree(alloc)


@given(rhos=st.lists(st.floats(min_value=0.1, max_value=5.0),
                     min_size=2, max_size=7),
       params=params_strategy,
       lifespan=st.floats(min_value=5.0, max_value=500.0),
       separation=st.booleans(),
       data=st.data())
@settings(max_examples=80, deadline=None)
def test_analytic_matches_events_on_random_lp(rhos, params, lifespan,
                                              separation, data):
    profile = Profile(rhos)
    n = profile.n
    sigma = tuple(data.draw(st.permutations(range(n))))
    phi = tuple(data.draw(st.permutations(range(n))))
    alloc = lp_allocation(profile, params, lifespan, sigma, phi,
                          enforce_separation=separation)
    _assert_engines_agree(alloc)


@given(rhos=rho_lists, params=params_strategy, data=st.data())
@settings(max_examples=100, deadline=None)
def test_xevaluator_tracks_fresh_x_measure(rhos, params, data):
    evaluator = XEvaluator(rhos, params)
    assert evaluator.x == x_measure(evaluator.rho, params)
    n_ops = data.draw(st.integers(0, 8))
    for _ in range(n_ops):
        ops = ["set", "insert", "preview"]
        if evaluator.n > 1:
            ops.append("remove")
        op = data.draw(st.sampled_from(ops))
        if op == "preview":
            k = data.draw(st.integers(0, evaluator.n - 1))
            rho_new = data.draw(st.floats(min_value=0.1, max_value=5.0))
            preview = evaluator.x_with_rho(k, rho_new)
            edited = evaluator.rho
            edited[k] = rho_new
            fresh = x_measure(edited, params)
            assert abs(preview - fresh) <= 1e-9 * max(1.0, abs(fresh))
        elif op == "set":
            k = data.draw(st.integers(0, evaluator.n - 1))
            evaluator.set_rho(k, data.draw(st.floats(min_value=0.1,
                                                     max_value=5.0)))
        elif op == "insert":
            evaluator.insert(data.draw(st.floats(min_value=0.1,
                                                 max_value=5.0)))
        else:
            evaluator.remove(data.draw(st.integers(0, evaluator.n - 1)))
        # Committed state is bit-identical to a fresh evaluation.
        assert evaluator.x == x_measure(evaluator.rho, params)


@given(rhos=st.lists(st.floats(min_value=0.1, max_value=5.0),
                     min_size=2, max_size=10),
       params=params_strategy, data=st.data())
@settings(max_examples=100, deadline=None)
def test_x_decomposition_reassembles_x_measure(rhos, params, data):
    profile = Profile(rhos)
    n = profile.n
    i = data.draw(st.integers(0, n - 1))
    j = data.draw(st.integers(0, n - 2))
    if j >= i:
        j += 1
    decomposed = x_decomposition(profile, params, i, j)
    fresh = x_measure(profile, params)
    assert abs(decomposed.x_value - fresh) <= 1e-9 * max(1.0, abs(fresh))
