"""Property-based tests for failure injection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.fifo import fifo_allocation
from repro.simulation.runner import simulate_allocation

PARAMS = ModelParams(tau=0.01, pi=0.001, delta=1.0)

profiles = st.lists(st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
                    min_size=2, max_size=6)


@given(rhos=profiles, data=st.data())
@settings(max_examples=60, deadline=None)
def test_more_failures_never_help(rhos, data):
    """Under the skip policy, adding a failure cannot increase output."""
    profile = Profile(rhos)
    alloc = fifo_allocation(profile, PARAMS, 50.0)
    n = profile.n
    subset_size = data.draw(st.integers(0, n - 1))
    victims = data.draw(st.permutations(range(n)))[:subset_size]
    extra = data.draw(st.integers(0, n - 1))
    times = {c: data.draw(st.floats(min_value=0.0, max_value=50.0))
             for c in victims}
    base = simulate_allocation(alloc, failures=times,
                               skip_failed_results=True).completed_work
    with_extra = dict(times)
    with_extra.setdefault(extra, data.draw(st.floats(min_value=0.0, max_value=50.0)))
    more = simulate_allocation(alloc, failures=with_extra,
                               skip_failed_results=True).completed_work
    assert more <= base * (1.0 + 1e-12)


@given(rhos=profiles, data=st.data())
@settings(max_examples=60, deadline=None)
def test_skip_policy_never_worse_than_strict(rhos, data):
    profile = Profile(rhos)
    alloc = fifo_allocation(profile, PARAMS, 50.0)
    victim = data.draw(st.integers(0, profile.n - 1))
    t = data.draw(st.floats(min_value=0.0, max_value=50.0))
    strict = simulate_allocation(alloc, failures={victim: t}).completed_work
    skipping = simulate_allocation(alloc, failures={victim: t},
                                   skip_failed_results=True).completed_work
    assert skipping >= strict - 1e-12


@given(rhos=profiles, data=st.data())
@settings(max_examples=60, deadline=None)
def test_later_failures_never_worse(rhos, data):
    """Delaying a single failure cannot reduce completed work (skip policy)."""
    profile = Profile(rhos)
    alloc = fifo_allocation(profile, PARAMS, 50.0)
    victim = data.draw(st.integers(0, profile.n - 1))
    t1 = data.draw(st.floats(min_value=0.0, max_value=25.0))
    t2 = data.draw(st.floats(min_value=float(t1), max_value=50.0))
    early = simulate_allocation(alloc, failures={victim: t1},
                                skip_failed_results=True).completed_work
    late = simulate_allocation(alloc, failures={victim: t2},
                               skip_failed_results=True).completed_work
    assert late >= early - 1e-12


@given(rhos=profiles)
@settings(max_examples=40, deadline=None)
def test_failure_free_run_matches_plain_run(rhos):
    profile = Profile(rhos)
    alloc = fifo_allocation(profile, PARAMS, 50.0)
    plain = simulate_allocation(alloc).completed_work
    empty = simulate_allocation(alloc, failures={}).completed_work
    assert plain == empty
