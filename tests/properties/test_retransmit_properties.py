"""Property-based tests for the retransmission backoff policy.

Three contracts the simulator leans on:

* ``delay`` is monotone non-decreasing in the retransmit index — a
  later retry never waits less than an earlier one;
* ``delay`` never exceeds ``max_backoff``;
* loss draws and backoff delays are *bit-deterministic across
  processes* — the property that keeps fault-injected runs
  batch-shardable (``--jobs N`` row-identical).
"""

import json
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.models import ChannelLoss, RetransmitPolicy

policies = st.builds(
    RetransmitPolicy,
    max_retransmits=st.integers(min_value=0, max_value=8),
    backoff=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    backoff_factor=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    max_backoff=st.one_of(
        st.just(float("inf")),
        st.floats(min_value=1e-3, max_value=100.0, allow_nan=False)),
)


@given(policy=policies)
@settings(max_examples=80, deadline=None)
def test_delay_monotone_non_decreasing(policy):
    delays = [policy.delay(i) for i in range(1, 12)]
    assert all(a <= b for a, b in zip(delays, delays[1:]))


@given(policy=policies, index=st.integers(min_value=1, max_value=20))
@settings(max_examples=80, deadline=None)
def test_delay_respects_the_cap(policy, index):
    delay = policy.delay(index)
    assert delay <= policy.max_backoff
    assert delay >= 0.0


@given(policy=policies, index=st.integers(min_value=1, max_value=20))
@settings(max_examples=80, deadline=None)
def test_delay_is_pure(policy, index):
    # Same (policy, index) -> bit-identical float, call after call.
    assert policy.delay(index) == policy.delay(index)


#: Runs in a *separate interpreter* and prints the same digest the
#: in-process half computes: hex floats for a grid of delays plus the
#: loss decisions for a grid of (kind, computer, attempt) keys.
_SUBPROCESS_PROG = """
import json, sys
from repro.faults.models import ChannelLoss, RetransmitPolicy

spec = json.loads(sys.stdin.read())
policy = RetransmitPolicy(**spec["policy"])
delays = [policy.delay(i).hex() for i in range(1, 9)]
loss = ChannelLoss(p_loss=spec["p_loss"], seed=spec["seed"])
draws = [loss.lost(kind, c, a)
         for kind in ("work", "result")
         for c in range(4) for a in range(4)]
print(json.dumps({"delays": delays, "draws": draws}))
"""


def test_delays_and_loss_draws_bit_deterministic_across_processes():
    spec = {"policy": {"max_retransmits": 5, "backoff": 0.17,
                       "backoff_factor": 2.3, "max_backoff": 1.9},
            "p_loss": 0.3, "seed": 42}
    policy = RetransmitPolicy(**spec["policy"])
    loss = ChannelLoss(p_loss=spec["p_loss"], seed=spec["seed"])
    local = {
        "delays": [policy.delay(i).hex() for i in range(1, 9)],
        "draws": [loss.lost(kind, c, a)
                  for kind in ("work", "result")
                  for c in range(4) for a in range(4)],
    }
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_PROG],
        input=json.dumps(spec), capture_output=True, text=True, check=True)
    remote = json.loads(proc.stdout)
    assert remote == local
