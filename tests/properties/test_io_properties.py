"""Property-based tests for the persistence round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.io import (
    allocation_from_dict,
    allocation_to_dict,
    params_from_dict,
    params_to_dict,
    profile_from_dict,
    profile_to_dict,
)
from repro.protocols.fifo import fifo_allocation
from repro.protocols.lifo import lifo_allocation

profiles = st.lists(st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                    min_size=1, max_size=10)

params_strategy = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-6, max_value=0.1),
    pi=st.floats(min_value=0.0, max_value=0.1),
    delta=st.floats(min_value=0.0, max_value=1.0),
)


@given(rhos=profiles)
@settings(max_examples=100, deadline=None)
def test_profile_roundtrip_exact(rhos):
    p = Profile(rhos)
    assert profile_from_dict(json.loads(json.dumps(profile_to_dict(p)))) == p


@given(params=params_strategy)
@settings(max_examples=100, deadline=None)
def test_params_roundtrip_exact(params):
    rebuilt = params_from_dict(json.loads(json.dumps(params_to_dict(params))))
    assert rebuilt == params


@given(rhos=profiles, params=params_strategy,
       lifespan=st.floats(min_value=1.0, max_value=1e4),
       lifo=st.booleans())
@settings(max_examples=75, deadline=None)
def test_allocation_roundtrip_bit_exact(rhos, params, lifespan, lifo):
    profile = Profile(rhos)
    if lifo and profile.n > 1:
        alloc = lifo_allocation(profile, params, lifespan)
    else:
        alloc = fifo_allocation(profile, params, lifespan)
    rebuilt = allocation_from_dict(
        json.loads(json.dumps(allocation_to_dict(alloc))))
    # Bit-exact: floats survive JSON (repr round-trip) unchanged.
    assert rebuilt.w.tolist() == alloc.w.tolist()
    assert rebuilt.total_work == alloc.total_work
    assert rebuilt.startup_order == alloc.startup_order
    assert rebuilt.finishing_order == alloc.finishing_order
