"""Property-based tests for the HECR (Proposition 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hecr import hecr, hecr_bisect
from repro.core.homogeneous import homogeneous_x
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile

profiles = st.lists(st.floats(min_value=0.02, max_value=1.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=10)

params_strategy = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-6, max_value=0.3),
    pi=st.floats(min_value=0.0, max_value=0.3),
    delta=st.floats(min_value=0.0, max_value=1.0),
)


@given(rhos=profiles, params=params_strategy)
@settings(max_examples=150, deadline=None)
def test_closed_form_agrees_with_bisection(rhos, params):
    profile = Profile(rhos)
    assert hecr(profile, params) == pytest.approx(
        hecr_bisect(profile, params), rel=1e-8)


@given(rhos=profiles, params=params_strategy)
@settings(max_examples=150, deadline=None)
def test_defining_equation(rhos, params):
    profile = Profile(rhos)
    rho_c = hecr(profile, params)
    assert homogeneous_x(profile.n, rho_c, params) == pytest.approx(
        x_measure(profile, params), rel=1e-8)


@given(rhos=profiles, params=params_strategy)
@settings(max_examples=150, deadline=None)
def test_bracketed_by_extreme_rates(rhos, params):
    profile = Profile(rhos)
    rho_c = hecr(profile, params)
    assert profile.fastest_rho - 1e-12 <= rho_c <= profile.slowest_rho + 1e-12


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=100, deadline=None)
def test_hecr_antimonotone_in_power(rhos, params, data):
    # Speeding up a computer lowers (improves) the HECR.
    profile = Profile(rhos)
    index = data.draw(st.integers(0, profile.n - 1))
    sped = profile.with_rho_at(index, profile[index] * 0.5)
    assert hecr(sped, params) < hecr(profile, params) + 1e-12
