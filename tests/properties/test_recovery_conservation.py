"""Conservation properties for the multi-round recovery rescheduler.

Recovery must never mint work: each recovery round is scaled to the
work actually missing, so the work it schedules — and a fortiori the
work it completes — is bounded by what the previous rounds lost, and
the grand total delivered can never exceed the original allocation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.faults.recovery import simulate_with_recovery
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation

PARAMS = ModelParams(tau=0.02, pi=0.002, delta=1.0)
LIFESPAN = 50.0

profiles = st.lists(st.floats(min_value=0.15, max_value=1.0, allow_nan=False),
                    min_size=3, max_size=5)
scenarios = st.one_of(
    st.builds("crash:{}@{:.2f}".format,
              st.integers(min_value=0, max_value=2),
              st.floats(min_value=0.5, max_value=20.0)),
    st.builds("crash~{:.3f},loss:{:.2f},seed:{}".format,
              st.floats(min_value=0.001, max_value=0.05),
              st.floats(min_value=0.0, max_value=0.1),
              st.integers(min_value=0, max_value=99)),
)


def _margin_allocation(rhos):
    profile = Profile(rhos)
    plan = fifo_allocation(profile, PARAMS, 0.8 * LIFESPAN)
    return WorkAllocation(profile=profile, params=PARAMS, lifespan=LIFESPAN,
                          w=plan.w, startup_order=plan.startup_order,
                          finishing_order=plan.finishing_order,
                          protocol_name="fifo-margin")


@given(rhos=profiles, spec=scenarios)
@settings(max_examples=25, deadline=None)
def test_recovery_never_mints_work(rhos, spec):
    alloc = _margin_allocation(rhos)
    outcome = simulate_with_recovery(alloc, spec, results_policy="greedy")
    total = alloc.total_work
    tol = 1e-9 * max(1.0, total)

    # Round k+1 reschedules only what is still missing after round k:
    # its allocation (hence its completed work) is bounded by the
    # cumulative shortfall of every earlier round.
    lost_so_far = 0.0
    for round_no, result in enumerate(outcome.rounds):
        if round_no > 0:
            scheduled = float(result.allocation.total_work)
            assert scheduled <= lost_so_far + tol
            assert result.completed_work <= lost_so_far + tol
        lost_so_far += float(result.allocation.total_work
                             - result.completed_work)

    # Telemetry agrees with the per-round ledger.
    recovered = sum(r.completed_work for r in outcome.rounds[1:])
    assert outcome.telemetry.work_recovered <= total - \
        outcome.first_round.completed_work + tol
    assert abs(outcome.telemetry.work_recovered - recovered) <= tol

    # And the grand total never exceeds what was originally allocated.
    assert outcome.completed_work <= total + tol


@given(rhos=profiles, spec=scenarios)
@settings(max_examples=20, deadline=None)
def test_work_lost_is_the_residual_shortfall(rhos, spec):
    alloc = _margin_allocation(rhos)
    outcome = simulate_with_recovery(alloc, spec, results_policy="greedy")
    tol = 1e-9 * max(1.0, alloc.total_work)
    final = outcome.rounds[-1]
    residual = float(final.allocation.total_work - final.completed_work)
    assert abs(outcome.telemetry.work_lost - max(0.0, residual)) <= \
        tol + 1e-9 * max(1.0, residual)
