"""Property-based tests: Schur-convexity of X and the majorization order.

The empirical law the majorization experiment rests on: any
mean-preserving spread (MPS) of two profile components raises X, for
every admissible environment.  This is the differential form of
"majorization implies at-least-equal power".
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.predictors.majorization import (
    compare_majorization,
    majorization_prediction,
)

params_strategy = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-6, max_value=0.3),
    pi=st.floats(min_value=0.0, max_value=0.3),
    delta=st.floats(min_value=0.0, max_value=1.0),
)

profiles = st.lists(st.floats(min_value=0.05, max_value=0.95,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=8)


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=250, deadline=None)
def test_mean_preserving_spread_raises_x(rhos, params, data):
    """Schur-convexity, differentially: every MPS step weakly raises X."""
    v = np.asarray(rhos)
    n = v.size
    i = data.draw(st.integers(0, n - 1))
    j = data.draw(st.integers(0, n - 1))
    assume(i != j)
    a, b = v[i], v[j]
    room = min(1.0 - max(a, b), min(a, b) - 0.01)
    assume(room > 1e-6)
    shift = data.draw(st.floats(min_value=1e-6, max_value=float(room)))
    w = v.copy()
    if a >= b:
        w[i], w[j] = a + shift, b - shift
    else:
        w[i], w[j] = a - shift, b + shift
    x_before = x_measure(v, params)
    x_after = x_measure(w, params)
    assert x_after >= x_before * (1.0 - 1e-13)


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=150, deadline=None)
def test_majorization_prediction_agrees_with_x(rhos, params, data):
    """Construct a comparable pair by stacking MPS steps; the majorizer
    must not lose."""
    v = np.asarray(rhos)
    n = v.size
    w = v.copy()
    for _ in range(data.draw(st.integers(1, 4))):
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, n - 1))
        if i == j:
            continue
        a, b = w[i], w[j]
        room = min(1.0 - max(a, b), min(a, b) - 0.01)
        if room <= 1e-9:
            continue
        shift = data.draw(st.floats(min_value=0.0, max_value=float(room)))
        if a >= b:
            w[i], w[j] = a + shift, b - shift
        else:
            w[i], w[j] = a - shift, b + shift
    p_wide, p_base = Profile(w), Profile(v)
    result = compare_majorization(p_wide, p_base)
    assert result.first_majorizes  # MPS chains always majorize the base
    call = majorization_prediction(p_wide, p_base)
    if call == 0:
        assert x_measure(p_wide, params) >= x_measure(p_base, params) * (1 - 1e-12)


@given(rhos=profiles)
@settings(max_examples=100, deadline=None)
def test_majorization_is_reflexive_up_to_permutation(rhos):
    p = Profile(rhos)
    shuffled = Profile(sorted(rhos))
    assert compare_majorization(p, shuffled).equivalent
