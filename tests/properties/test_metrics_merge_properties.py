"""Property-based tests for MetricsRegistry dump()/merge() (hypothesis).

The batch engine ships each worker's registry back to the session
registry as a :meth:`MetricsRegistry.dump` document and folds it in
with :meth:`~MetricsRegistry.merge`.  Workers finish in whatever order
the pool schedules them, so the fold must not care about order or
grouping.  Over random observation streams these pin down:

* merge is **lossless** — a dumped-and-merged histogram reproduces the
  source's bucket counts, total count and sum exactly;
* merge is **commutative** — folding worker dumps in any order yields
  the same cells;
* merge is **associative** — pre-combining two workers' dumps before
  folding equals folding them one at a time (grouping is irrelevant);
* splitting one observation stream across any number of workers and
  merging recovers the unsplit registry (order-independence end to
  end, the property the pool actually relies on).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

#: Observation values spanning every default bucket, including the
#: overflow (+Inf) one.  allow_nan/infinity off: a NaN observation is a
#: caller bug, not a merge property.
values = st.floats(min_value=0.0, max_value=20.0,
                   allow_nan=False, allow_infinity=False)

#: One labelled observation: (value, route label).
observations = st.tuples(values, st.sampled_from(["/a", "/b", "/c"]))

streams = st.lists(observations, max_size=40)


def _registry_from(stream) -> MetricsRegistry:
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", "latency", buckets=(0.5, 2.0, 8.0))
    for value, route in stream:
        hist.observe(value, route=route)
    return registry


def _cells(registry: MetricsRegistry):
    """Canonical cell payloads of every metric (order-normalised)."""
    return {entry["name"]: entry["cells"]
            for entry in registry.dump()["metrics"]}


def _close(a: dict, b: dict) -> bool:
    """Cell equality with float tolerance on the running sums."""
    if a.keys() != b.keys():
        return False
    for name in a:
        if len(a[name]) != len(b[name]):
            return False
        for (ka, pa), (kb, pb) in zip(a[name], b[name]):
            if ka != kb:
                return False
            if pa["bucket_counts"] != pb["bucket_counts"]:
                return False
            if pa["count"] != pb["count"]:
                return False
            if not math.isclose(pa["sum"], pb["sum"],
                                rel_tol=1e-9, abs_tol=1e-12):
                return False
    return True


@given(stream=streams)
@settings(max_examples=100, deadline=None)
def test_dump_merge_is_lossless(stream):
    source = _registry_from(stream)
    target = MetricsRegistry()
    target.merge(source.dump())
    assert _close(_cells(target), _cells(source))


@given(a=streams, b=streams)
@settings(max_examples=100, deadline=None)
def test_merge_is_commutative(a, b):
    ab, ba = MetricsRegistry(), MetricsRegistry()
    dump_a, dump_b = _registry_from(a).dump(), _registry_from(b).dump()
    ab.merge(dump_a)
    ab.merge(dump_b)
    ba.merge(dump_b)
    ba.merge(dump_a)
    assert _close(_cells(ab), _cells(ba))


@given(a=streams, b=streams, c=streams)
@settings(max_examples=75, deadline=None)
def test_merge_is_associative(a, b, c):
    # (a ⊕ b) ⊕ c — pre-combine a and b, then fold c
    left = MetricsRegistry()
    left.merge(_registry_from(a).dump())
    left.merge(_registry_from(b).dump())
    left.merge(_registry_from(c).dump())
    # a ⊕ (b ⊕ c) — pre-combine b and c in a scratch registry
    scratch = MetricsRegistry()
    scratch.merge(_registry_from(b).dump())
    scratch.merge(_registry_from(c).dump())
    right = MetricsRegistry()
    right.merge(_registry_from(a).dump())
    right.merge(scratch.dump())
    assert _close(_cells(left), _cells(right))


@given(stream=streams, splits=st.lists(st.integers(0, 40), max_size=4),
       order=st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_sharded_streams_merge_order_independently(stream, splits, order):
    """Splitting one stream across workers and merging recovers it."""
    bounds = sorted(min(s, len(stream)) for s in splits)
    pieces, last = [], 0
    for b in bounds + [len(stream)]:
        pieces.append(stream[last:b])
        last = b
    dumps = [_registry_from(piece).dump() for piece in pieces]
    order.shuffle(dumps)
    merged = MetricsRegistry()
    for dump in dumps:
        merged.merge(dump)
    assert _close(_cells(merged), _cells(_registry_from(stream)))


@given(stream=streams)
@settings(max_examples=50, deadline=None)
def test_exemplars_never_leak_into_dumps(stream):
    """Exemplars are latest-wins process-local colour: dumps omit them."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", buckets=(1.0,))
    for value, route in stream:
        hist.observe(value, exemplar={"trace_id": "x"}, route=route)
    for _, payload in _cells(registry).get("lat_seconds", []):
        assert set(payload) == {"bucket_counts", "count", "sum"}
