"""Scalar ↔ batch parity properties for the ProfileBatch kernels.

The columnar layer's contract (``repro.core.batch_kernels``): every
kernel agrees with its scalar counterpart *row for row* — bitwise for
X, work, the row statistics and all pairwise predictors, and to ≤1e-12
relative for HECR (NumPy's SIMD ``log1p``/``expm1`` over arrays may
differ from libm by 1 ulp).  These properties drive random ``(m, n)``
batches, random environments and random single-ρ edit sequences through
both layers and compare, in the style of the fast-path equivalence
suite.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_kernels import (
    BatchXEvaluator,
    ProfileBatch,
    majorization_predictions,
    minorization_predictions,
    moment_predictions,
    variance_predictions,
)
from repro.core.hecr import hecr_from_x
from repro.core.measure import XEvaluator, work_production, work_rate, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.predictors.dominance import DominanceVerdict, minorization_predicts
from repro.predictors.majorization import majorization_prediction
from repro.predictors.variance import MOMENT_PREDICTORS, variance_prediction

_VERDICT_CODES = {DominanceVerdict.FIRST_DOMINATES: 0,
                  DominanceVerdict.SECOND_DOMINATES: 1,
                  DominanceVerdict.INDETERMINATE: -1}

# -- strategies ------------------------------------------------------------

params_st = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-7, max_value=0.5),
    pi=st.floats(min_value=0.0, max_value=0.5),
    delta=st.floats(min_value=0.0, max_value=1.0),
)


@st.composite
def batches(draw, min_m=1, max_m=8, min_n=1, max_n=12):
    """A random (m, n) ρ-matrix with wide dynamic range."""
    m = draw(st.integers(min_value=min_m, max_value=max_m))
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    return 10.0 ** rng.uniform(-3, 1, size=(m, n))


@st.composite
def batch_pairs(draw):
    """Two aligned (m, n) matrices (independent rows)."""
    rows_a = draw(batches(min_n=2))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    rows_b = 10.0 ** rng.uniform(-3, 1, size=rows_a.shape)
    return rows_a, rows_b


@st.composite
def edit_sequences(draw):
    """A matrix plus a sequence of per-row single-ρ edits."""
    rows = draw(batches())
    m, n = rows.shape
    steps = draw(st.integers(min_value=1, max_value=5))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    edits = [(rng.integers(0, n, size=m), 10.0 ** rng.uniform(-3, 1, size=m))
             for _ in range(steps)]
    return rows, edits


# -- X / W / HECR parity ---------------------------------------------------

@given(rows=batches(), params=params_st)
@settings(max_examples=100, deadline=None)
def test_x_bitwise_parity(rows, params):
    xs = ProfileBatch(rows).x(params)
    for row, x in zip(rows, xs):
        assert x == x_measure(row, params)


@given(rows=batches(), params=params_st,
       lifespan=st.floats(min_value=1.0, max_value=1e4))
@settings(max_examples=60, deadline=None)
def test_work_bitwise_parity(rows, params, lifespan):
    batch = ProfileBatch(rows)
    xs = batch.x(params)
    rates = batch.work_rates(params, x=xs)
    work = batch.work_production(params, lifespan, x=xs)
    for row, x, rate, w in zip(rows, xs, rates, work):
        assert rate == work_rate(row, params, x=float(x))
        assert w == work_production(row, params, lifespan, x=float(x))


@given(rows=batches(), params=params_st)
@settings(max_examples=100, deadline=None)
def test_hecr_parity_including_refusals(rows, params):
    batch = ProfileBatch(rows)
    xs = batch.x(params)
    hs = batch.hecr(params, x=xs)
    n = rows.shape[1]
    for x, h in zip(xs, hs):
        try:
            scalar = hecr_from_x(float(x), n, params)
        except InvalidParameterError:
            # Scalar refusals (saturated / non-positive rate) must be
            # exactly the NaN rows — the hecr_many negative-rate bugfix.
            assert np.isnan(h)
        else:
            assert math.isclose(h, scalar, rel_tol=1e-12)


@given(rows=batches())
@settings(max_examples=60, deadline=None)
def test_statistics_bitwise_parity(rows):
    batch = ProfileBatch(rows)
    for i, row in enumerate(rows):
        p = Profile(row)
        assert batch.means()[i] == p.mean
        assert batch.variances()[i] == p.variance
        assert batch.stds()[i] == p.std
        assert batch.geometric_means()[i] == p.geometric_mean
        assert batch.harmonic_means()[i] == p.n / float(np.sum(1.0 / p.rho))
        assert batch.min_rho()[i] == p.fastest_rho
        assert batch.max_rho()[i] == p.slowest_rho


# -- predictor parity ------------------------------------------------------

@given(pair=batch_pairs())
@settings(max_examples=60, deadline=None)
def test_moment_and_dominance_parity(pair):
    rows_a, rows_b = pair
    ba, bb = ProfileBatch(rows_a), ProfileBatch(rows_b)
    for name, predictor in MOMENT_PREDICTORS.items():
        calls = moment_predictions(ba, bb, name)
        for i in range(len(rows_a)):
            assert calls[i] == predictor(Profile(rows_a[i]),
                                         Profile(rows_b[i])), name
    dominance = minorization_predictions(ba, bb)
    for i in range(len(rows_a)):
        verdict = minorization_predicts(Profile(rows_a[i]), Profile(rows_b[i]))
        assert dominance[i] == _VERDICT_CODES[verdict]


@given(rows=batches(min_n=2))
@settings(max_examples=60, deadline=None)
def test_variance_and_majorization_parity_on_permuted_rows(rows):
    # Row-wise permutations give exactly equal means/totals, the regime
    # where variance_prediction and majorization_prediction apply.
    rows_b = np.sort(rows, axis=1)[:, ::-1]
    ba, bb = ProfileBatch(rows), ProfileBatch(rows_b)
    var_calls = variance_predictions(ba, bb)
    maj_calls = majorization_predictions(ba, bb)
    for i in range(len(rows)):
        p1, p2 = Profile(rows[i]), Profile(rows_b[i])
        assert var_calls[i] == variance_prediction(p1, p2)
        assert maj_calls[i] == majorization_prediction(p1, p2)


# -- edit-sequence parity --------------------------------------------------

@given(case=edit_sequences(), params=params_st)
@settings(max_examples=60, deadline=None)
def test_edit_sequences_bitwise_parity(case, params):
    rows, edits = case
    m, _ = rows.shape
    batch_ev = BatchXEvaluator(rows, params)
    scalar_evs = [XEvaluator(row, params) for row in rows]
    for indices, values in edits:
        previews = batch_ev.x_with_rho(indices, values)
        for i, ev in enumerate(scalar_evs):
            assert previews[i] == ev.x_with_rho(int(indices[i]),
                                                float(values[i]))
        committed = batch_ev.set_rho(indices, values)
        for i, ev in enumerate(scalar_evs):
            ev.set_rho(int(indices[i]), float(values[i]))
            assert committed[i] == ev.x
    # After the whole sequence the committed state is a fresh x_measure.
    final = batch_ev.x
    for i in range(m):
        assert final[i] == x_measure(batch_ev.rho[i], params)
