"""Property-based tests for the protocol engines and the simulator."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.measure import work_production
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.feasibility import check_allocation
from repro.protocols.fifo import fifo_allocation, fifo_saturation_index
from repro.protocols.lifo import lifo_allocation
from repro.simulation.runner import simulate_allocation

profiles = st.lists(st.floats(min_value=0.05, max_value=1.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=8)

#: Compute-dominant environments where the Fig.-2 layout always exists
#: for the profile sizes above.
calm_params = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-6, max_value=2e-3),
    pi=st.floats(min_value=0.0, max_value=2e-3),
    delta=st.floats(min_value=0.0, max_value=1.0),
)


@given(rhos=profiles, params=calm_params,
       lifespan=st.floats(min_value=1.0, max_value=1e4))
@settings(max_examples=100, deadline=None)
def test_fifo_total_equals_theorem2(rhos, params, lifespan):
    profile = Profile(rhos)
    assume(fifo_saturation_index(profile, params) <= 1.0)
    alloc = fifo_allocation(profile, params, lifespan)
    assert alloc.total_work == pytest.approx(
        work_production(profile, params, lifespan), rel=1e-10)


@given(rhos=profiles, params=calm_params, data=st.data())
@settings(max_examples=100, deadline=None)
def test_fifo_order_invariance(rhos, params, data):
    profile = Profile(rhos)
    order = data.draw(st.permutations(range(profile.n)))
    base = fifo_allocation(profile, params, 100.0).total_work
    permuted = fifo_allocation(profile, params, 100.0, order).total_work
    assert permuted == pytest.approx(base, rel=1e-11)


@given(rhos=profiles, params=calm_params)
@settings(max_examples=75, deadline=None)
def test_fifo_feasible_and_simulation_agrees(rhos, params):
    profile = Profile(rhos)
    assume(fifo_saturation_index(profile, params) <= 0.99)
    alloc = fifo_allocation(profile, params, 50.0)
    assert check_allocation(alloc).feasible
    result = simulate_allocation(alloc)
    assert result.all_completed
    assert result.completed_work == pytest.approx(alloc.total_work, rel=1e-9)


@given(rhos=st.lists(st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
                     min_size=2, max_size=8),
       params=calm_params)
@settings(max_examples=100, deadline=None)
def test_lifo_never_beats_fifo(rhos, params):
    profile = Profile(rhos)
    lifo = lifo_allocation(profile, params, 50.0).total_work
    fifo = fifo_allocation(profile, params, 50.0).total_work
    assert lifo <= fifo * (1.0 + 1e-11)


@given(rhos=profiles, params=calm_params,
       factor=st.floats(min_value=0.25, max_value=4.0))
@settings(max_examples=75, deadline=None)
def test_fifo_scale_invariance(rhos, params, factor):
    profile = Profile(rhos)
    a = fifo_allocation(profile, params, 10.0)
    b = fifo_allocation(profile, params, 10.0 * factor)
    assert b.total_work == pytest.approx(factor * a.total_work, rel=1e-11)
