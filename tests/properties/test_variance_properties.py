"""Property-based tests for Theorem 5 and the sampling substrate."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.sampling.equal_mean import equal_mean_pair, mean_preserving_spread


@given(
    mean=st.floats(min_value=0.1, max_value=0.9),
    s1=st.floats(min_value=0.0, max_value=1.0),
    s2=st.floats(min_value=0.0, max_value=1.0),
    tau=st.floats(min_value=1e-6, max_value=0.2),
    pi=st.floats(min_value=0.0, max_value=0.2),
    delta=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_theorem5_two_computer_biconditional(mean, s1, s2, tau, pi, delta):
    """n = 2, equal means: larger variance ⇔ larger X, any admissible env."""
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    assume(params.satisfies_standing_assumption)
    cap = min(mean, 1.0 - mean) * 0.999
    spread1, spread2 = s1 * cap, s2 * cap
    assume(abs(spread1 - spread2) > 1e-9)
    p1 = Profile([mean + spread1, mean - spread1])
    p2 = Profile([mean + spread2, mean - spread2])
    larger_var_first = p1.variance > p2.variance
    x1, x2 = x_measure(p1, params), x_measure(p2, params)
    assume(abs(x1 - x2) > 1e-12 * max(x1, x2))
    assert larger_var_first == (x1 > x2)


@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
       n=st.integers(min_value=2, max_value=64),
       strategy=st.sampled_from(["rescale", "spread", "window", "mixed"]))
@settings(max_examples=100, deadline=None)
def test_equal_mean_pair_invariants(seed, n, strategy):
    rng = np.random.default_rng(seed)
    a, b = equal_mean_pair(rng, n, strategy=strategy)
    assert a.n == b.n == n
    assert b.mean == pytest.approx(a.mean, rel=1e-10)
    for p in (a, b):
        assert p.fastest_rho > 0.0
        assert p.slowest_rho <= 1.0 + 1e-12


@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
       n=st.integers(min_value=2, max_value=32),
       steps=st.integers(min_value=1, max_value=60),
       widen=st.booleans())
@settings(max_examples=100, deadline=None)
def test_mean_preserving_spread_invariants(seed, n, steps, widen):
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.1, 0.9, n)
    out = mean_preserving_spread(rng, values, steps=steps, widen=widen)
    assert out.sum() == pytest.approx(values.sum(), rel=1e-12)
    if widen:
        assert out.var() >= values.var() - 1e-15
    else:
        assert out.var() <= values.var() + 1e-15
