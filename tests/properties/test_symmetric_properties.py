"""Property-based tests for symmetric functions and Proposition 3."""

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.predictors.coefficients import lemma1_coefficients_exact
from repro.predictors.dominance import DominanceVerdict, cross_product_dominance
from repro.predictors.moments import variance_from_symmetric
from repro.predictors.symmetric import (
    elementary_symmetric,
    elementary_symmetric_exact,
)

values_strategy = st.lists(st.floats(min_value=0.01, max_value=1.0,
                                     allow_nan=False, allow_infinity=False),
                           min_size=1, max_size=12)


@given(values=values_strategy)
@settings(max_examples=150, deadline=None)
def test_dp_matches_exact(values):
    approx = elementary_symmetric(values)
    exact = elementary_symmetric_exact(values)
    for a, x in zip(approx, exact):
        assert a == pytest.approx(float(x), rel=1e-12)


@given(values=values_strategy, data=st.data())
@settings(max_examples=150, deadline=None)
def test_permutation_invariance(values, data):
    perm = data.draw(st.permutations(values))
    assert elementary_symmetric(perm) == pytest.approx(
        elementary_symmetric(values), rel=1e-12)


@given(values=st.lists(st.floats(min_value=0.05, max_value=1.0,
                                 allow_nan=False), min_size=2, max_size=10))
@settings(max_examples=150, deadline=None)
def test_variance_identity(values):
    # eqs. (7)/(8): variance from (F1, F2) equals direct variance.
    e = elementary_symmetric(values)
    p = Profile(values)
    assert variance_from_symmetric(e[1], e[2], p.n) == pytest.approx(
        p.variance, abs=1e-10)


@given(
    tau=st.fractions(min_value=Fraction(1, 100), max_value=Fraction(1, 3)),
    pi=st.fractions(min_value=Fraction(0), max_value=Fraction(1, 3)),
    delta=st.fractions(min_value=Fraction(0), max_value=Fraction(1)),
    n=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_claim1_exact_for_random_params(tau, pi, delta, n):
    """αᵢβⱼ > αⱼβᵢ for all i < j, at exact precision."""
    params = ModelParams(tau=float(tau), pi=float(pi), delta=float(delta))
    assume(params.satisfies_standing_assumption)
    alpha, beta = lemma1_coefficients_exact(n, params.exact())
    alpha_full = list(alpha) + [Fraction(0)]
    exact = params.exact()
    for i in range(n + 1):
        for j in range(i + 1, n + 1):
            margin = alpha_full[i] * beta[j] - alpha_full[j] * beta[i]
            assert margin >= 0
            # Strictness: the proof's sum Σ_{k=n−j}^{n−1−i} A^…(τδ)^k has
            # all-positive terms when τδ > 0; when τδ = 0 only the k = 0
            # term survives, which the range includes exactly when j = n.
            if exact.tau_delta > 0 or j == n:
                assert margin > 0, (i, j)


@given(
    rhos1=st.lists(st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
                   min_size=2, max_size=6),
    factor=st.floats(min_value=0.5, max_value=0.99),
    params_tau=st.floats(min_value=1e-5, max_value=0.2),
    params_pi=st.floats(min_value=0.0, max_value=0.2),
)
@settings(max_examples=150, deadline=None)
def test_proposition3_verdict_implies_x_order(rhos1, factor, params_tau, params_pi):
    """When the cross-product test fires, the X ordering follows for any
    admissible environment."""
    params = ModelParams(tau=params_tau, pi=params_pi, delta=1.0)
    assume(params.satisfies_standing_assumption)
    p1 = Profile(rhos1)
    p2 = Profile([r * factor for r in rhos1])  # p2 minorizes p1
    result = cross_product_dominance(p2, p1)
    assert result.verdict is DominanceVerdict.FIRST_DOMINATES
    assert x_measure(p2, params) > x_measure(p1, params)
