"""Property-based tests for Theorems 3 and 4 (hypothesis).

The theorems are proven via the eq.-(3) algebra; here we confirm them
*behaviourally* against brute-force X comparison over random profiles,
factors and environments — including environments with large overheads
where the multiplicative threshold genuinely bites.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.speedup.additive import apply_additive, best_additive_upgrade
from repro.speedup.multiplicative import (
    apply_multiplicative,
    theorem4_margin,
)

profiles = st.lists(st.floats(min_value=0.02, max_value=1.0,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=8)

params_strategy = st.builds(
    ModelParams,
    tau=st.floats(min_value=1e-6, max_value=0.5),
    pi=st.floats(min_value=0.0, max_value=0.5),
    delta=st.floats(min_value=0.0, max_value=1.0),
)


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=200, deadline=None)
def test_theorem3_faster_always_wins_additively(rhos, params, data):
    profile = Profile(rhos)
    phi = data.draw(st.floats(min_value=profile.fastest_rho * 0.05,
                              max_value=profile.fastest_rho * 0.95))
    i = data.draw(st.integers(0, profile.n - 1))
    j = data.draw(st.integers(0, profile.n - 1))
    assume(profile[i] > profile[j])  # i strictly slower than j
    # Rates a float-ulp apart leave the X comparison below resolution.
    assume(profile[i] - profile[j] > 1e-9 * profile[i])
    x_i = x_measure(apply_additive(profile, i, phi), params)
    x_j = x_measure(apply_additive(profile, j, phi), params)
    assert x_j > x_i


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=200, deadline=None)
def test_theorem3_best_upgrade_targets_a_fastest_computer(rhos, params, data):
    profile = Profile(rhos)
    phi = data.draw(st.floats(min_value=profile.fastest_rho * 0.05,
                              max_value=profile.fastest_rho * 0.95))
    choice = best_additive_upgrade(profile, params, phi)
    # Near-ties (ρ values within float resolution) can fall either way;
    # the chosen computer must be the fastest up to that resolution.
    assert profile[choice.index] == pytest.approx(profile.fastest_rho, rel=1e-9)


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=250, deadline=None)
def test_theorem4_sign_matches_brute_force(rhos, params, data):
    profile = Profile(rhos)
    psi = data.draw(st.floats(min_value=0.05, max_value=0.95))
    i = data.draw(st.integers(0, profile.n - 1))
    j = data.draw(st.integers(0, profile.n - 1))
    assume(profile[i] > profile[j])
    # The X gap scales with (1−ψ)(ρᵢ−ρⱼ)·(margin); either factor at
    # float-resolution scale makes the brute-force comparison undecidable.
    assume(profile[i] - profile[j] > 1e-9 * profile[i])
    margin = theorem4_margin(profile[i], profile[j], psi, params)
    assume(abs(margin) > 1e-9 * max(1.0, params.speedup_threshold))
    x_slower = x_measure(apply_multiplicative(profile, i, psi), params)
    x_faster = x_measure(apply_multiplicative(profile, j, psi), params)
    if margin > 0:
        assert x_faster > x_slower
    else:
        assert x_slower > x_faster


@given(rhos=profiles, params=params_strategy, data=st.data())
@settings(max_examples=150, deadline=None)
def test_any_single_speedup_improves_work(rhos, params, data):
    profile = Profile(rhos)
    psi = data.draw(st.floats(min_value=0.05, max_value=0.95))
    index = data.draw(st.integers(0, profile.n - 1))
    assert (x_measure(apply_multiplicative(profile, index, psi), params)
            > x_measure(profile, params))
