"""Property-based tests for cross-process single-flight dedup (hypothesis).

``serve --workers N`` routes identical concurrent requests to different
worker processes; :meth:`SharedCache.get_or_compute` must guarantee
that however many claimants pile onto one key:

* **exactly one compute** happens on the normal path — the rest are
  served the leader's published value;
* **all K results are identical** — byte-for-byte the same document;
* **a crashed claimant cannot deadlock the rest** — a claim whose
  holder is dead (or too old) is taken over and the key still resolves
  for every waiter, with at most one extra compute per takeover race.

Each claimant here gets its *own* :class:`SharedCache` instance over
one shared root, mirroring N processes that share nothing but the
directory.  Compute counts are tallied through an ``O_APPEND`` log
file — the same cross-process-safe channel a forked worker would use —
so the property holds even if a future refactor moves claimants into
real subprocesses.
"""

import json
import os
import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.shared_cache import SharedCache

#: Claimant counts worth exercising: the degenerate single claimant,
#: typical worker counts, and an oversubscribed pile-up.
claimant_counts = st.integers(min_value=1, max_value=8)

#: Compute durations around the claim-poll timescale, so runs explore
#: "leader publishes before followers ever poll" and "followers poll
#: many times" interleavings.
compute_delays = st.floats(min_value=0.0, max_value=0.02,
                           allow_nan=False, allow_infinity=False)


def _race(root, claimants: int, delay: float, *, key: str = "k",
          prepare=None) -> tuple[list, int]:
    """Run K fresh-instance claimants at once; (results, computes)."""
    log_path = os.path.join(root, "compute.log")

    def compute():
        # O_APPEND writes are atomic for sub-PIPE_BUF payloads: a
        # correct cross-process tally even under true concurrency.
        fd = os.open(log_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND)
        try:
            os.write(fd, b"x\n")
        finally:
            os.close(fd)
        time.sleep(delay)
        return {"value": "computed", "key": key}

    if prepare is not None:
        prepare()
    barrier = threading.Barrier(claimants)
    results: list = [None] * claimants

    def claimant(i: int) -> None:
        cache = SharedCache(root, poll_interval=0.001)
        barrier.wait()
        results[i] = cache.get_or_compute(key, compute, wait_timeout=30.0)

    threads = [threading.Thread(target=claimant, args=(i,))
               for i in range(claimants)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert all(not t.is_alive() for t in threads), "claimant deadlocked"
    try:
        with open(log_path, "rb") as fh:
            computes = fh.read().count(b"\n")
    except OSError:
        computes = 0
    return results, computes


class TestSingleFlight:
    @given(claimants=claimant_counts, delay=compute_delays)
    @settings(max_examples=20, deadline=None)
    def test_exactly_one_compute_and_identical_results(self, tmp_path_factory,
                                                       claimants, delay):
        root = str(tmp_path_factory.mktemp("flight"))
        results, computes = _race(root, claimants, delay)
        assert computes == 1
        values = [value for value, _outcome in results]
        assert all(v == values[0] for v in values)
        outcomes = sorted(outcome for _value, outcome in results)
        assert outcomes.count("leader") == 1
        assert all(o in ("leader", "follower", "hit") for o in outcomes)

    @given(claimants=claimant_counts, delay=compute_delays)
    @settings(max_examples=15, deadline=None)
    def test_dead_claimant_cannot_deadlock(self, tmp_path_factory,
                                           claimants, delay):
        """Crash simulation: a fresh claim from a dead pid pre-exists.

        Every claimant must still resolve (takeover), results stay
        identical, and the compute count stays bounded: 1 normally,
        at most ``claimants`` in the pathological window where several
        waiters take the stale claim over simultaneously.
        """
        root = str(tmp_path_factory.mktemp("flight"))
        probe = SharedCache(root)

        def plant_dead_claim():
            probe.root.mkdir(parents=True, exist_ok=True)
            probe._claim_path("k").write_text(json.dumps(
                {"pid": 2 ** 22 + 1, "token": "dead", "time": time.time()}))

        results, computes = _race(root, claimants, delay,
                                  prepare=plant_dead_claim)
        assert 1 <= computes <= claimants
        values = [value for value, _outcome in results]
        assert all(v == values[0] for v in values)

    @given(claimants=claimant_counts)
    @settings(max_examples=10, deadline=None)
    def test_distinct_keys_do_not_serialise(self, tmp_path_factory,
                                            claimants):
        """Single flight is per key: K distinct keys compute K times."""
        root = str(tmp_path_factory.mktemp("flight"))
        caches = [SharedCache(root) for _ in range(claimants)]
        results = []
        for i, cache in enumerate(caches):
            results.append(cache.get_or_compute(f"key-{i}",
                                                lambda i=i: {"n": i}))
        assert [value for value, _ in results] == [
            {"n": i} for i in range(claimants)]
        assert all(outcome == "leader" for _, outcome in results)
