"""Unit tests for repro.predictors.majorization."""

import pytest

from repro.core.measure import x_measure
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.majorization import (
    compare_majorization,
    majorization_prediction,
)


class TestCompareMajorization:
    def test_spread_majorizes_tight(self):
        result = compare_majorization(Profile([0.9, 0.1]), Profile([0.6, 0.4]))
        assert result.first_majorizes
        assert not result.second_majorizes
        assert result.comparable

    def test_order_of_entries_irrelevant(self):
        result = compare_majorization(Profile([0.1, 0.9]), Profile([0.4, 0.6]))
        assert result.first_majorizes

    def test_equal_multisets_equivalent(self):
        result = compare_majorization(Profile([0.3, 0.7]), Profile([0.7, 0.3]))
        assert result.equivalent

    def test_incomparable_pair(self):
        # Equal sums (2.0) but crossing partial sums.
        p1 = Profile([0.9, 0.5, 0.5, 0.1])   # top-1: 0.9, top-2: 1.4
        p2 = Profile([0.8, 0.7, 0.3, 0.2])   # top-1: 0.8, top-2: 1.5
        result = compare_majorization(p1, p2)
        assert not result.comparable

    def test_homogeneous_is_minimum(self):
        # The homogeneous profile is majorized by every equal-mean profile.
        hetero = Profile([0.8, 0.5, 0.2])
        homog = Profile([0.5, 0.5, 0.5])
        assert compare_majorization(hetero, homog).first_majorizes

    def test_rejects_unequal_sums(self):
        with pytest.raises(InvalidProfileError):
            compare_majorization(Profile([1.0, 0.5]), Profile([0.4, 0.4]))

    def test_rejects_unequal_sizes(self):
        with pytest.raises(InvalidProfileError):
            compare_majorization(Profile([1.0]), Profile([0.5, 0.5]))


class TestPrediction:
    def test_majorizer_predicted_to_win(self):
        assert majorization_prediction(Profile([0.9, 0.1]), Profile([0.6, 0.4])) == 0
        assert majorization_prediction(Profile([0.6, 0.4]), Profile([0.9, 0.1])) == 1

    def test_abstains_on_incomparable(self):
        p1 = Profile([0.9, 0.5, 0.5, 0.1])
        p2 = Profile([0.8, 0.7, 0.3, 0.2])
        assert majorization_prediction(p1, p2) == -1

    def test_abstains_on_equivalent(self):
        assert majorization_prediction(Profile([0.3, 0.7]), Profile([0.7, 0.3])) == -1

    def test_never_wrong_when_it_speaks(self, rng):
        # Schur-convexity in action over random comparable pairs.
        from repro.sampling.equal_mean import equal_mean_pair
        spoke = 0
        for _ in range(200):
            p1, p2 = equal_mean_pair(rng, 6, strategy="mixed")
            call = majorization_prediction(p1, p2)
            if call == -1:
                continue
            spoke += 1
            x1 = x_measure(p1, PAPER_TABLE1)
            x2 = x_measure(p2, PAPER_TABLE1)
            assert call == (0 if x1 > x2 else 1)
        assert spoke > 20  # the check must actually have exercised pairs

    def test_spread_strategy_pairs_always_comparable(self, rng):
        # Widening/tightening from a common base yields comparable pairs
        # by construction (each MPS step preserves the relation).
        from repro.sampling.equal_mean import equal_mean_pair
        for _ in range(30):
            p1, p2 = equal_mean_pair(rng, 8, strategy="spread")
            assert majorization_prediction(p1, p2) == 0
