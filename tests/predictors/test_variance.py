"""Unit tests for repro.predictors.variance (Theorem 5, Corollary 1)."""

import numpy as np
import pytest

from repro.core.measure import x_measure
from repro.core.params import PAPER_TABLE1
from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.variance import (
    MOMENT_PREDICTORS,
    PredictionOutcome,
    evaluate_pair,
    heterogeneity_gain,
    variance_prediction,
)
from tests.conftest import PARAM_GRID


class TestVariancePrediction:
    def test_picks_larger_variance(self):
        assert variance_prediction(Profile([0.9, 0.1]), Profile([0.6, 0.4])) == 0
        assert variance_prediction(Profile([0.6, 0.4]), Profile([0.9, 0.1])) == 1

    def test_tie_gives_no_prediction(self):
        assert variance_prediction(Profile([0.6, 0.4]), Profile([0.4, 0.6])) == -1

    def test_requires_equal_means(self):
        with pytest.raises(InvalidProfileError):
            variance_prediction(Profile([1.0, 0.5]), Profile([0.5, 0.2]))


class TestTheorem5Biconditional:
    """For n = 2 and equal means: larger variance ⇔ more powerful."""

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_biconditional_holds(self, params, rng):
        if not params.satisfies_standing_assumption:
            pytest.skip("standing assumption violated")
        for _ in range(40):
            mean = rng.uniform(0.2, 0.8)
            s1 = rng.uniform(0.0, min(mean, 1 - mean) * 0.99)
            s2 = rng.uniform(0.0, min(mean, 1 - mean) * 0.99)
            if s1 == s2:
                continue
            p1 = Profile([mean + s1, mean - s1])
            p2 = Profile([mean + s2, mean - s2])
            larger_var_first = p1.variance > p2.variance
            x_first_wins = x_measure(p1, params) > x_measure(p2, params)
            assert larger_var_first == x_first_wins


class TestEvaluatePair:
    def test_correct_outcome(self, paper_params):
        p1 = Profile([0.9, 0.1])
        p2 = Profile([0.6, 0.4])
        ev = evaluate_pair(p1, p2, paper_params)
        assert ev.outcome is PredictionOutcome.CORRECT
        assert ev.predicted_winner == ev.actual_winner == 0
        assert ev.variance_gap == pytest.approx(0.15)
        assert ev.hecr_gap > 0.0

    def test_hecr_gap_optional(self, paper_params):
        ev = evaluate_pair(Profile([0.9, 0.1]), Profile([0.6, 0.4]),
                           paper_params, compute_hecr_gap=False)
        assert np.isnan(ev.hecr_gap)

    def test_incorrect_outcome_constructible(self):
        # A "bad" pair: the larger-variance cluster loses.  With equal
        # means and n > 2, wide-but-slow tails can defeat raw variance.
        params = PAPER_TABLE1
        # p1: higher variance via extreme slow+fast pair, mediocre middle.
        p1 = Profile([0.971, 0.951, 0.02, 0.058])
        p2 = Profile([0.50, 0.50, 0.50, 0.50])
        assert p1.mean == pytest.approx(p2.mean)
        assert p1.variance > p2.variance
        # p1 has two near-free computers: it should actually win here —
        # build the reverse case instead: wide cluster whose spread is
        # all in the slow half.
        p3 = Profile([0.98, 0.98, 0.02, 0.02])
        assert p3.variance > p1.variance
        ev = evaluate_pair(p3, p1, params)
        assert ev.outcome in (PredictionOutcome.CORRECT, PredictionOutcome.INCORRECT)


class TestCorollary1:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_heterogeneity_always_gains(self, params):
        if not params.satisfies_standing_assumption:
            pytest.skip("standing assumption violated")
        for spread in (0.1, 0.25, 0.4):
            assert heterogeneity_gain(0.5, spread, params) > 1.0

    def test_gain_monotone_in_spread(self, paper_params):
        gains = [heterogeneity_gain(0.5, s, paper_params)
                 for s in (0.1, 0.2, 0.3, 0.4)]
        assert gains == sorted(gains)

    def test_invalid_spread(self, paper_params):
        with pytest.raises(InvalidProfileError):
            heterogeneity_gain(0.5, 0.5, paper_params)
        with pytest.raises(InvalidProfileError):
            heterogeneity_gain(0.5, 0.0, paper_params)


class TestMomentPredictors:
    def test_all_named_predictors_callable(self):
        p1 = Profile([0.9, 0.1])
        p2 = Profile([0.6, 0.4])
        for name, predictor in MOMENT_PREDICTORS.items():
            call = predictor(p1, p2)
            assert call in (0, 1, -1), name

    def test_variance_entry_matches_function(self):
        p1 = Profile([0.9, 0.1])
        p2 = Profile([0.6, 0.4])
        assert MOMENT_PREDICTORS["variance"](p1, p2) == variance_prediction(p1, p2)

    def test_geometric_mean_predictor_direction(self):
        # Smaller geometric mean (a very fast machine) predicts the win.
        p1 = Profile([0.9, 0.1])   # geo mean 0.3
        p2 = Profile([0.6, 0.4])   # geo mean ~0.49
        assert MOMENT_PREDICTORS["geometric-mean"](p1, p2) == 0
