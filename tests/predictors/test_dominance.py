"""Unit tests for repro.predictors.dominance (Prop. 2 / Prop. 3)."""

import pytest

from repro.core.measure import x_measure
from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.dominance import (
    DominanceVerdict,
    cross_product_dominance,
    minorization_predicts,
)
from tests.conftest import PARAM_GRID


class TestCrossProductDominance:
    def test_minorizing_profile_dominates(self):
        p1 = Profile([0.9, 0.4])
        p2 = Profile([1.0, 0.5])
        result = cross_product_dominance(p1, p2)
        assert result.verdict is DominanceVerdict.FIRST_DOMINATES
        assert result.holds_forward
        assert not result.holds_backward

    def test_symmetric_under_swap(self):
        p1 = Profile([0.9, 0.4])
        p2 = Profile([1.0, 0.5])
        assert cross_product_dominance(p2, p1).verdict is DominanceVerdict.SECOND_DOMINATES

    def test_identical_profiles_indeterminate(self):
        p = Profile([1.0, 0.5])
        assert cross_product_dominance(p, p).verdict is DominanceVerdict.INDETERMINATE

    def test_paper_example_indeterminate(self):
        # ⟨0.99, 0.02⟩ beats ⟨0.5, 0.5⟩ but the sufficient test cannot see it.
        result = cross_product_dominance(Profile([0.99, 0.02]), Profile([0.5, 0.5]))
        assert result.verdict is DominanceVerdict.INDETERMINATE

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_verdict_implies_x_ordering_for_all_params(self, params):
        # Proposition 3: when the test fires, the winner wins for EVERY
        # admissible environment.
        if not params.satisfies_standing_assumption:
            pytest.skip("standing assumption violated")
        pairs = [
            (Profile([0.9, 0.5, 0.3]), Profile([1.0, 0.6, 0.35])),
            (Profile([0.8, 0.8]), Profile([1.0, 0.9])),
            (Profile([0.5, 0.25, 0.1, 0.05]), Profile([0.6, 0.3, 0.2, 0.1])),
        ]
        for p1, p2 in pairs:
            result = cross_product_dominance(p1, p2)
            if result.verdict is DominanceVerdict.FIRST_DOMINATES:
                assert x_measure(p1, params) > x_measure(p2, params)
            elif result.verdict is DominanceVerdict.SECOND_DOMINATES:
                assert x_measure(p2, params) > x_measure(p1, params)

    def test_equal_mean_pairs_decided_by_f2(self):
        # Equal means make F₁ tie; for n = 2 the verdict reduces to F₂.
        p1 = Profile([0.9, 0.1])   # var 0.16, F₂ = 0.09
        p2 = Profile([0.6, 0.4])   # var 0.01, F₂ = 0.24
        result = cross_product_dominance(p1, p2)
        assert result.verdict is DominanceVerdict.FIRST_DOMINATES

    def test_pair_counts(self):
        result = cross_product_dominance(Profile([0.9, 0.4]), Profile([1.0, 0.5]))
        assert result.n_pairs == 3  # (0,1), (0,2), (1,2)
        assert result.strict_pairs_forward > 0

    def test_size_mismatch_rejected(self):
        with pytest.raises(InvalidProfileError):
            cross_product_dominance(Profile([1.0]), Profile([1.0, 0.5]))


class TestMinorizationPredicts:
    def test_first(self):
        assert minorization_predicts(
            Profile([0.9, 0.4]), Profile([1.0, 0.5])) is DominanceVerdict.FIRST_DOMINATES

    def test_second(self):
        assert minorization_predicts(
            Profile([1.0, 0.5]), Profile([0.9, 0.4])) is DominanceVerdict.SECOND_DOMINATES

    def test_indeterminate(self):
        assert minorization_predicts(
            Profile([0.99, 0.02]), Profile([0.5, 0.5])) is DominanceVerdict.INDETERMINATE
