"""Unit tests for repro.predictors.symmetric (Table 5 machinery)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.symmetric import (
    elementary_from_power_sums,
    elementary_symmetric,
    elementary_symmetric_exact,
    power_sums,
    symmetric_function,
)


class TestElementarySymmetric:
    def test_classic_example(self):
        # (1+t)(1+2t)(1+3t) = 1 + 6t + 11t² + 6t³.
        assert elementary_symmetric([1.0, 2.0, 3.0]).tolist() == [1.0, 6.0, 11.0, 6.0]

    def test_table5_two_variables(self):
        e = elementary_symmetric([0.5, 0.25])
        assert e[1] == pytest.approx(0.75)      # F₁ = ρ₁ + ρ₂
        assert e[2] == pytest.approx(0.125)     # F₂ = ρ₁ρ₂

    def test_table5_four_variables(self):
        rho = [1.0, 0.5, 1 / 3, 0.25]
        e = elementary_symmetric(rho)
        # F₄ = product of all.
        assert e[4] == pytest.approx(np.prod(rho))
        # F₃: sum of the four 3-subsets.
        expected_f3 = sum(np.prod(rho) / r for r in rho)
        assert e[3] == pytest.approx(expected_f3)

    def test_f0_is_one(self):
        assert elementary_symmetric([0.7])[0] == 1.0

    def test_accepts_profile(self):
        p = Profile([1.0, 0.5])
        assert elementary_symmetric(p).tolist() == elementary_symmetric([1.0, 0.5]).tolist()

    def test_permutation_invariant(self, rng):
        values = rng.uniform(0.1, 1.0, 6)
        base = elementary_symmetric(values)
        shuffled = elementary_symmetric(rng.permutation(values))
        assert shuffled == pytest.approx(base, rel=1e-13)

    def test_matches_exact(self, rng):
        values = rng.uniform(0.1, 1.0, 8)
        approx = elementary_symmetric(values)
        exact = elementary_symmetric_exact(values)
        for a, x in zip(approx, exact):
            assert a == pytest.approx(float(x), rel=1e-13)

    def test_exact_returns_fractions(self):
        exact = elementary_symmetric_exact([Fraction(1, 2), Fraction(1, 3)])
        assert exact == (Fraction(1), Fraction(5, 6), Fraction(1, 6))

    def test_exact_rejects_empty(self):
        with pytest.raises(InvalidProfileError):
            elementary_symmetric_exact([])


class TestSymmetricFunction:
    def test_single_order(self):
        assert symmetric_function([1.0, 2.0, 3.0], 2) == pytest.approx(11.0)

    def test_order_zero(self):
        assert symmetric_function([5.0], 0) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidProfileError):
            symmetric_function([1.0, 2.0], 3)
        with pytest.raises(InvalidProfileError):
            symmetric_function([1.0, 2.0], -1)


class TestPowerSums:
    def test_values(self):
        p = power_sums([1.0, 2.0], 3)
        assert p.tolist() == [3.0, 5.0, 9.0]

    def test_rejects_zero_order(self):
        with pytest.raises(InvalidProfileError):
            power_sums([1.0], 0)


class TestNewtonIdentities:
    def test_recovers_elementary(self, rng):
        values = rng.uniform(0.2, 1.0, 7)
        direct = elementary_symmetric(values)
        via_newton = elementary_from_power_sums(power_sums(values, 7), 7)
        assert via_newton == pytest.approx(direct, rel=1e-10)

    def test_truncates_beyond_n(self):
        values = [1.0, 2.0]
        e = elementary_from_power_sums(power_sums(values, 4), 2)
        assert e.size == 3
        assert e == pytest.approx(elementary_symmetric(values))
