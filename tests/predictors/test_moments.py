"""Unit tests for repro.predictors.moments (eqs. (7)–(8))."""

import pytest

from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.moments import (
    f2_from_mean_and_variance,
    moment_summary,
    variance_from_symmetric,
)
from repro.predictors.symmetric import elementary_symmetric


class TestMomentSummary:
    def test_matches_profile_properties(self):
        p = Profile([1.0, 0.5, 0.25])
        m = moment_summary(p)
        assert m.mean == pytest.approx(p.mean)
        assert m.variance == pytest.approx(p.variance)
        assert m.geometric_mean == pytest.approx(p.geometric_mean)
        assert m.n == 3

    def test_harmonic_mean(self):
        m = moment_summary([1.0, 0.5])
        assert m.harmonic_mean == pytest.approx(2.0 / 3.0)

    def test_homogeneous_has_zero_spread(self):
        m = moment_summary([0.5, 0.5, 0.5])
        assert m.variance == 0.0
        assert m.skewness == 0.0
        assert m.kurtosis_excess == 0.0

    def test_skewness_sign(self):
        # One fast outlier among slow machines: left-skewed ρ (negative).
        m = moment_summary([1.0, 1.0, 1.0, 0.1])
        assert m.skewness < 0.0

    def test_coefficient_of_variation(self):
        m = moment_summary([1.0, 0.5])
        assert m.coefficient_of_variation == pytest.approx(m.std / m.mean)


class TestEquationBridge:
    @pytest.mark.parametrize("rho", [
        [1.0, 0.5],
        [1.0, 0.5, 1 / 3, 0.25],
        [0.9, 0.8, 0.7, 0.6, 0.5],
    ])
    def test_variance_from_symmetric_matches_direct(self, rho):
        e = elementary_symmetric(rho)
        p = Profile(rho)
        assert variance_from_symmetric(e[1], e[2], p.n) == pytest.approx(
            p.variance, abs=1e-12)

    def test_f2_inversion_roundtrip(self):
        p = Profile([1.0, 0.5, 1 / 3, 0.25])
        e = elementary_symmetric(p)
        recovered = f2_from_mean_and_variance(p.mean, p.variance, p.n)
        assert recovered == pytest.approx(e[2], rel=1e-12)

    def test_equal_mean_tradeoff(self):
        # Theorem 5's pivot: same mean, larger variance ⇔ smaller F₂.
        p_wide = Profile([0.9, 0.1])
        p_narrow = Profile([0.6, 0.4])
        assert p_wide.mean == p_narrow.mean
        e_wide = elementary_symmetric(p_wide)[2]
        e_narrow = elementary_symmetric(p_narrow)[2]
        assert p_wide.variance > p_narrow.variance
        assert e_wide < e_narrow

    def test_invalid_inputs(self):
        with pytest.raises(InvalidProfileError):
            variance_from_symmetric(1.0, 0.2, 0)
        with pytest.raises(InvalidProfileError):
            f2_from_mean_and_variance(0.5, -0.1, 4)
