"""Unit tests for repro.predictors.coefficients (Lemma 1, Claim 1)."""

from fractions import Fraction

import pytest

from repro.core.exact import x_measure_exact
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.errors import InvalidParameterError
from repro.predictors.coefficients import (
    claim1_margin,
    lemma1_coefficients,
    lemma1_coefficients_exact,
    x_from_symmetric_functions,
    x_from_symmetric_functions_exact,
)
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestCoefficients:
    def test_shapes(self, paper_params):
        alpha, beta = lemma1_coefficients(5, paper_params)
        assert alpha.shape == (5,)
        assert beta.shape == (6,)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_all_positive(self, n, params):
        alpha, beta = lemma1_coefficients(n, params)
        assert (alpha > 0).all()
        assert (beta > 0).all()

    def test_beta_closed_form(self):
        params = ModelParams(tau=0.5, pi=0.25, delta=1.0)  # A=0.75, B=1.5
        _, beta = lemma1_coefficients(3, params)
        A, B = params.A, params.B
        assert beta == pytest.approx([A ** 3, B * A ** 2, B ** 2 * A, B ** 3])

    def test_alpha_n1(self):
        # n = 1: X = 1/(Bρ + A) = α₀·F₀/(β₀F₀ + β₁F₁) with α₀ = 1.
        params = ModelParams(tau=0.5, pi=0.25, delta=1.0)
        alpha, beta = lemma1_coefficients(1, params)
        assert alpha[0] == pytest.approx(1.0)
        assert beta.tolist() == pytest.approx([params.A, params.B])

    def test_matches_exact(self, paper_params):
        alpha, beta = lemma1_coefficients(4, paper_params)
        alpha_e, beta_e = lemma1_coefficients_exact(4, paper_params)
        assert alpha == pytest.approx([float(a) for a in alpha_e], rel=1e-13)
        assert beta == pytest.approx([float(b) for b in beta_e], rel=1e-13)

    def test_rejects_bad_n(self, paper_params):
        with pytest.raises(InvalidParameterError):
            lemma1_coefficients(0, paper_params)


class TestLemma1Identity:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_expansion_equals_direct_x(self, profile, params):
        direct = x_measure(profile, params)
        expanded = x_from_symmetric_functions(profile, params)
        assert expanded == pytest.approx(direct, rel=1e-10)

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_exact_identity(self, n):
        # The identity holds as an exact rational equality.
        params = ModelParams(tau=0.25, pi=0.125, delta=0.5)
        rho = [Fraction(k + 1, n + 1) for k in range(n)]
        assert (x_from_symmetric_functions_exact(rho, params)
                == x_measure_exact(rho, params))

    def test_degenerate_params_exact(self):
        params = ModelParams(tau=0.5, pi=0.0, delta=1.0)  # A = τδ
        rho = [Fraction(1), Fraction(1, 2), Fraction(1, 4)]
        assert (x_from_symmetric_functions_exact(rho, params)
                == x_measure_exact(rho, params))


class TestClaim1:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_margin_positive_for_all_pairs(self, n, paper_params):
        for i in range(n + 1):
            for j in range(i + 1, n + 1):
                assert claim1_margin(i, j, n, paper_params) > 0.0, (i, j)

    def test_margin_positive_with_large_overheads(self):
        params = ModelParams(tau=0.3, pi=0.4, delta=1.0)
        assert params.satisfies_standing_assumption
        for i in range(4):
            for j in range(i + 1, 5):
                assert claim1_margin(i, j, 4, params) > 0.0

    def test_rejects_bad_indices(self, paper_params):
        with pytest.raises(InvalidParameterError):
            claim1_margin(2, 2, 4, paper_params)
        with pytest.raises(InvalidParameterError):
            claim1_margin(3, 1, 4, paper_params)
        with pytest.raises(InvalidParameterError):
            claim1_margin(0, 5, 4, paper_params)
