"""Unit tests for repro.speedup.additive (Theorem 3, Table 4)."""

import numpy as np
import pytest

from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.additive import (
    additive_work_ratios,
    apply_additive,
    best_additive_upgrade,
    compare_additive,
    max_additive_term,
)
from tests.conftest import PARAM_GRID


class TestApplyAdditive:
    def test_basic(self):
        p = apply_additive(Profile([1.0, 0.5]), 1, 0.1)
        assert list(p) == pytest.approx([1.0, 0.4])

    def test_original_untouched(self):
        base = Profile([1.0, 0.5])
        apply_additive(base, 0, 0.25)
        assert list(base) == [1.0, 0.5]

    def test_phi_must_be_below_rho(self):
        with pytest.raises(InvalidParameterError):
            apply_additive(Profile([1.0, 0.5]), 1, 0.5)

    def test_phi_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            apply_additive(Profile([1.0, 0.5]), 0, 0.0)

    def test_max_additive_term(self):
        assert max_additive_term(Profile([1.0, 0.5, 0.25])) == 0.25


class TestTheorem3:
    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_faster_computer_always_wins_pairwise(self, params, table4_profile):
        phi = 1.0 / 32.0
        for i in range(4):
            for j in range(4):
                if table4_profile[i] > table4_profile[j]:  # i strictly slower
                    assert compare_additive(table4_profile, params, i, j, phi) == -1

    @pytest.mark.parametrize("params", PARAM_GRID)
    def test_best_upgrade_is_fastest_computer(self, params):
        profile = Profile([1.0, 0.7, 0.4, 0.2])
        choice = best_additive_upgrade(profile, params, 0.05)
        assert choice.index == 3

    def test_equal_computers_tie_and_break_high(self, paper_params):
        profile = Profile([1.0, 0.5, 0.5])
        choice = best_additive_upgrade(profile, paper_params, 0.1)
        assert choice.index == 2
        low = best_additive_upgrade(profile, paper_params, 0.1,
                                    tie_break_highest_index=False)
        assert low.index in (1, 2)  # float jitter may break the exact tie

    def test_upgrade_strictly_improves(self, paper_params, table4_profile):
        choice = best_additive_upgrade(table4_profile, paper_params, 1 / 16)
        assert choice.x_after > choice.x_before
        assert choice.work_ratio > 1.0

    def test_rejects_inadmissible_phi(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            best_additive_upgrade(table4_profile, paper_params, 0.3)  # ≥ ρ₄


class TestTable4Ratios:
    def test_all_exceed_one(self, paper_params, table4_profile):
        ratios = additive_work_ratios(table4_profile, paper_params, 1 / 16)
        assert (ratios > 1.0).all()

    def test_strictly_increasing_toward_fastest(self, paper_params, table4_profile):
        ratios = additive_work_ratios(table4_profile, paper_params, 1 / 16)
        assert (np.diff(ratios) > 0.0).all()

    def test_expected_values_under_table1_params(self, paper_params, table4_profile):
        # Our eq.-(1) evaluation (the paper's printed values are
        # inconsistent with its own formula — see DESIGN.md).
        ratios = additive_work_ratios(table4_profile, paper_params, 1 / 16)
        assert ratios == pytest.approx([1.0067, 1.0286, 1.0692, 1.1333], abs=2e-4)

    def test_phi_validated(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            additive_work_ratios(table4_profile, paper_params, 0.25)
