"""Unit tests for repro.speedup.multiplicative (Theorem 4)."""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.multiplicative import (
    SpeedupRegime,
    apply_multiplicative,
    best_multiplicative_upgrade,
    compare_multiplicative,
    theorem4_margin,
    theorem4_regime,
)
from tests.conftest import PARAM_GRID


class TestApplyMultiplicative:
    def test_basic(self):
        p = apply_multiplicative(Profile([1.0, 0.5]), 0, 0.5)
        assert list(p) == [0.5, 0.5]

    def test_psi_range_enforced(self):
        for psi in (0.0, 1.0, 1.5, -0.5):
            with pytest.raises(InvalidParameterError):
                apply_multiplicative(Profile([1.0]), 0, psi)


class TestTheorem4Predicate:
    def test_margin_symmetric(self, fig34_params):
        m1 = theorem4_margin(1.0, 0.5, 0.5, fig34_params)
        m2 = theorem4_margin(0.5, 1.0, 0.5, fig34_params)
        assert m1 == m2

    def test_condition1_for_paper_round2(self, fig34_params):
        # Profile ⟨1,1,1,1/2⟩: pair (1, 1/2), ψ=1/2 ⇒ product 1/4 > 0.04.
        assert theorem4_regime(1.0, 0.5, 0.5, fig34_params) is SpeedupRegime.FASTER_WINS

    def test_condition2_for_paper_round5(self, fig34_params):
        # Pair (1, 1/16), ψ=1/2 ⇒ product 1/32 < 0.04.
        assert theorem4_regime(1.0, 1 / 16, 0.5, fig34_params) is SpeedupRegime.SLOWER_WINS

    def test_boundary_detected(self):
        params = ModelParams(tau=0.2, pi=0.0, delta=1.0)  # threshold 0.04
        psi, rho_i = 0.5, 1.0
        rho_j = params.speedup_threshold / (psi * rho_i)
        assert theorem4_regime(rho_i, rho_j, psi, params) is SpeedupRegime.BOUNDARY

    def test_rejects_bad_inputs(self, fig34_params):
        with pytest.raises(InvalidParameterError):
            theorem4_margin(-1.0, 0.5, 0.5, fig34_params)
        with pytest.raises(InvalidParameterError):
            theorem4_margin(1.0, 0.5, 1.5, fig34_params)

    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("psi", [0.3, 0.5, 0.9])
    def test_predicate_matches_brute_force(self, params, psi):
        # Theorem 4 vs direct X comparison, across regimes.
        profile = Profile([1.0, 0.6, 0.3, 0.05])
        for i in range(4):
            for j in range(4):
                if profile[i] <= profile[j]:
                    continue  # need ρᵢ > ρⱼ (i slower)
                margin = theorem4_margin(profile[i], profile[j], psi, params)
                observed = compare_multiplicative(profile, params, i, j, psi)
                if margin < 0:
                    assert observed == 1, (i, j, margin)  # slower (i) wins
                elif margin > 0:
                    assert observed == -1, (i, j, margin)  # faster (j) wins


class TestBestUpgrade:
    def test_paper_phase1_prefers_fastest(self, fig34_params):
        profile = Profile([1.0, 1.0, 1.0, 0.5])
        choice = best_multiplicative_upgrade(profile, fig34_params, 0.5)
        assert choice.index == 3

    def test_paper_phase2_prefers_slowest(self, fig34_params):
        profile = Profile([1 / 16, 1 / 16, 1 / 16, 1 / 32])
        choice = best_multiplicative_upgrade(profile, fig34_params, 0.5,
                                             tie_tolerance=1e-12)
        assert choice.index in (0, 1, 2)
        assert choice.index == 2  # tie-break to the largest index

    def test_table1_regime_behaves_additively(self, paper_params):
        # Threshold ≈ 1e-11: condition 1 everywhere ⇒ fastest wins.
        profile = Profile([1.0, 0.7, 0.4, 0.2])
        assert best_multiplicative_upgrade(profile, paper_params, 0.5).index == 3

    def test_improvement_guaranteed(self, fig34_params):
        profile = Profile([1.0, 0.5, 0.25, 0.125])
        choice = best_multiplicative_upgrade(profile, fig34_params, 0.5)
        assert choice.work_ratio > 1.0
        assert choice.x_after > choice.x_before

    def test_psi_validated(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            best_multiplicative_upgrade(table4_profile, paper_params, 1.0)
