"""Unit tests for repro.speedup.trajectory (the Figs. 3–4 engine)."""

import pytest

from repro.core.params import FIG34_CALIBRATION
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.multiplicative import SpeedupRegime
from repro.speedup.trajectory import run_trajectory


class TestFig3Phase:
    @pytest.fixture(scope="class")
    def trajectory(self):
        return run_trajectory(Profile.homogeneous(4), FIG34_CALIBRATION, 0.5, 24)

    def test_chosen_sequence_matches_paper(self, trajectory):
        # C4 ×4, C3 ×4, C2 ×4, C1 ×4 — then slowest-first cycling.
        assert trajectory.chosen_sequence()[:16] == (
            3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0)

    def test_round1_is_homogeneous_tie_break(self, trajectory):
        first = trajectory.rounds[0]
        assert first.regime is None
        assert first.was_tie_break
        assert first.tied == (0, 1, 2, 3)

    def test_rounds_2_to_4_are_condition1(self, trajectory):
        for snap in trajectory.rounds[1:4]:
            assert snap.regime is SpeedupRegime.FASTER_WINS
            assert not snap.was_tie_break

    def test_round5_condition2_with_tie_break(self, trajectory):
        snap = trajectory.rounds[4]
        assert snap.regime is SpeedupRegime.SLOWER_WINS
        assert snap.was_tie_break
        assert snap.chosen == 2

    def test_phase1_ends_homogeneous_at_sixteenth(self, trajectory):
        after16 = trajectory.rounds[15].profile_after
        assert list(after16) == pytest.approx([1 / 16] * 4)

    def test_phase2_speeds_slowest_each_round(self, trajectory):
        for snap in trajectory.rounds[16:]:
            slowest = snap.profile_before.slowest_rho
            assert snap.profile_before[snap.chosen] == slowest

    def test_x_strictly_increases(self, trajectory):
        xs = [snap.x_after for snap in trajectory]
        assert all(b > a for a, b in zip(xs, xs[1:]))

    def test_profiles_matrix_shape(self, trajectory):
        m = trajectory.profiles_matrix()
        assert m.shape == (25, 4)
        assert m[0] == pytest.approx([1.0] * 4)


class TestGeneralBehaviour:
    def test_zero_rounds(self, fig34_params):
        t = run_trajectory(Profile.homogeneous(4), fig34_params, 0.5, 0)
        assert len(t) == 0
        assert t.final_profile == Profile.homogeneous(4)

    def test_table1_regime_rides_fastest_forever(self, paper_params):
        # Threshold ≈ 1e-11: condition 1 persists; the fastest computer
        # is sped up every round after the first tie-break.
        t = run_trajectory(Profile.homogeneous(3), paper_params, 0.5, 6)
        assert t.chosen_sequence() == (2, 2, 2, 2, 2, 2)

    def test_tie_break_low_option(self, fig34_params):
        t = run_trajectory(Profile.homogeneous(4), fig34_params, 0.5, 1,
                           tie_break_highest_index=False)
        assert t.rounds[0].chosen == 0

    def test_regime_sequence_lengths(self, fig34_params):
        t = run_trajectory(Profile.homogeneous(4), fig34_params, 0.5, 5)
        assert len(t.regime_sequence()) == 5

    def test_mixed_regime_label_for_middle_choice(self, fig34_params):
        # Round 6 of the paper's run: profile ⟨1,1,1/2,1/16⟩, chosen C3
        # (middle class) — condition 1 downward, condition 2 upward.
        t = run_trajectory(Profile([1.0, 1.0, 0.5, 1 / 16]), fig34_params, 0.5, 1)
        assert t.rounds[0].chosen == 2
        assert t.rounds[0].regime is SpeedupRegime.MIXED

    def test_invalid_inputs(self, fig34_params):
        with pytest.raises(InvalidParameterError):
            run_trajectory(Profile.homogeneous(2), fig34_params, 0.5, -1)
        with pytest.raises(InvalidParameterError):
            run_trajectory(Profile.homogeneous(2), fig34_params, 1.0, 1)
