"""Unit tests for repro.speedup.budget (budgeted upgrade selection)."""

import numpy as np
import pytest

from repro.core.measure import x_measure
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.budget import (
    UpgradeOption,
    greedy_budgeted_upgrades,
    plan_budgeted_upgrades,
)


@pytest.fixture
def fleet():
    return Profile([1.0, 0.6, 0.3])


@pytest.fixture
def catalogue(fleet):
    return [
        UpgradeOption(index=0, new_rho=0.5, cost=3.0),
        UpgradeOption(index=0, new_rho=0.8, cost=1.0),
        UpgradeOption(index=1, new_rho=0.3, cost=2.0),
        UpgradeOption(index=2, new_rho=0.15, cost=2.5),
        UpgradeOption(index=2, new_rho=0.25, cost=0.5),
    ]


class TestExactPlanner:
    def test_zero_budget_buys_nothing(self, fleet, catalogue, paper_params):
        plan = plan_budgeted_upgrades(fleet, paper_params, catalogue, 0.0)
        assert plan.chosen == ()
        assert plan.improvement == 0.0

    def test_unlimited_budget_buys_best_option_per_machine(self, fleet,
                                                           catalogue, paper_params):
        plan = plan_budgeted_upgrades(fleet, paper_params, catalogue, 100.0)
        assert plan.new_profile == Profile([0.5, 0.3, 0.15])

    def test_respects_budget(self, fleet, catalogue, paper_params):
        for budget in (0.5, 2.0, 4.0, 6.0):
            plan = plan_budgeted_upgrades(fleet, paper_params, catalogue, budget)
            assert plan.total_cost <= budget + 1e-12

    def test_beats_every_feasible_subset(self, fleet, catalogue, paper_params):
        from itertools import combinations
        budget = 4.0
        plan = plan_budgeted_upgrades(fleet, paper_params, catalogue, budget)
        for r in range(len(catalogue) + 1):
            for subset in combinations(catalogue, r):
                if sum(o.cost for o in subset) > budget:
                    continue
                if len({o.index for o in subset}) != len(subset):
                    continue  # one option per machine
                rho = fleet.rho.copy()
                for o in subset:
                    rho[o.index] = o.new_rho
                assert plan.x_after >= x_measure(rho, paper_params) - 1e-12

    def test_at_most_one_option_per_machine(self, fleet, catalogue, paper_params):
        plan = plan_budgeted_upgrades(fleet, paper_params, catalogue, 100.0)
        indices = [o.index for o in plan.chosen]
        assert len(indices) == len(set(indices))

    def test_rejects_bogus_options(self, fleet, paper_params):
        with pytest.raises(InvalidParameterError):
            plan_budgeted_upgrades(
                fleet, paper_params,
                [UpgradeOption(index=0, new_rho=1.5, cost=1.0)], 10.0)
        with pytest.raises(InvalidParameterError):
            plan_budgeted_upgrades(
                fleet, paper_params,
                [UpgradeOption(index=5, new_rho=0.1, cost=1.0)], 10.0)

    def test_rejects_negative_budget(self, fleet, catalogue, paper_params):
        with pytest.raises(InvalidParameterError):
            plan_budgeted_upgrades(fleet, paper_params, catalogue, -1.0)

    def test_search_space_guard(self, paper_params):
        big = Profile([1.0] * 40)
        options = [UpgradeOption(index=i, new_rho=0.5, cost=1.0)
                   for i in range(40)]
        with pytest.raises(InvalidParameterError):
            plan_budgeted_upgrades(big, paper_params, options, 10.0)


class TestGreedyPlanner:
    def test_never_beats_exact(self, fleet, catalogue, paper_params):
        for budget in (0.5, 3.0, 100.0):
            exact = plan_budgeted_upgrades(fleet, paper_params, catalogue, budget)
            greedy = greedy_budgeted_upgrades(fleet, paper_params, catalogue, budget)
            assert greedy.x_after <= exact.x_after + 1e-12

    def test_matches_exact_when_cheap_options_do_not_trap(self, fleet, paper_params):
        # One option per machine: greedy's per-cost ranking is exact here.
        catalogue = [
            UpgradeOption(index=0, new_rho=0.8, cost=1.0),
            UpgradeOption(index=1, new_rho=0.3, cost=2.0),
            UpgradeOption(index=2, new_rho=0.15, cost=2.5),
        ]
        for budget in (1.0, 3.0, 10.0):
            exact = plan_budgeted_upgrades(fleet, paper_params, catalogue, budget)
            greedy = greedy_budgeted_upgrades(fleet, paper_params, catalogue, budget)
            assert greedy.x_after == pytest.approx(exact.x_after, rel=1e-12)

    def test_cheap_option_trap_documented(self, fleet, catalogue, paper_params):
        # Greedy buys the cheap machine-2 option first and, under the
        # one-upgrade-per-machine rule, locks itself out of the better
        # one — the known failure mode of per-cost greedy on
        # multiple-choice knapsacks.
        exact = plan_budgeted_upgrades(fleet, paper_params, catalogue, 100.0)
        greedy = greedy_budgeted_upgrades(fleet, paper_params, catalogue, 100.0)
        assert greedy.x_after < exact.x_after
        assert greedy.x_after >= exact.x_after * 0.7  # bounded, not catastrophic

    def test_never_exceeds_budget(self, fleet, catalogue, paper_params):
        plan = greedy_budgeted_upgrades(fleet, paper_params, catalogue, 2.9)
        assert plan.total_cost <= 2.9

    def test_prefers_high_value_per_cost(self, paper_params):
        fleet = Profile([1.0, 0.2])
        options = [
            UpgradeOption(index=0, new_rho=0.9, cost=1.0),   # tiny gain
            UpgradeOption(index=1, new_rho=0.1, cost=1.0),   # huge gain
        ]
        plan = greedy_budgeted_upgrades(fleet, paper_params, options, 1.0)
        assert plan.chosen[0].index == 1

    def test_handles_large_catalogue(self, paper_params):
        rng = np.random.default_rng(5)
        fleet = Profile(rng.uniform(0.3, 1.0, 50))
        options = [UpgradeOption(index=i, new_rho=float(fleet[i]) * 0.5,
                                 cost=float(rng.uniform(0.5, 2.0)))
                   for i in range(50)]
        plan = greedy_budgeted_upgrades(fleet, paper_params, options, 10.0)
        assert plan.total_cost <= 10.0
        assert plan.x_after > plan.x_before
