"""Unit tests for repro.speedup.planner."""

import pytest

from repro.core.measure import x_measure
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.planner import (
    exhaustive_multiplicative_plan,
    plan_additive,
    plan_multiplicative,
)


class TestAdditivePlan:
    def test_concentrates_on_fastest(self, paper_params):
        profile = Profile([1.0, 0.5, 0.25])
        plan = plan_additive(profile, paper_params, 0.02, 3)
        assert plan.chosen_sequence() == (2, 2, 2)
        assert plan.final_profile[2] == pytest.approx(0.25 - 3 * 0.02)

    def test_payoff_compounds(self, paper_params):
        profile = Profile([1.0, 0.5, 0.25])
        plan = plan_additive(profile, paper_params, 0.02, 3)
        product = 1.0
        for step in plan.steps:
            product *= step.work_ratio
        assert plan.total_work_ratio == pytest.approx(product, rel=1e-12)

    def test_zero_steps(self, paper_params, table4_profile):
        plan = plan_additive(table4_profile, paper_params, 0.01, 0)
        assert plan.n_steps == 0
        assert plan.total_work_ratio == pytest.approx(1.0)

    def test_negative_steps_rejected(self, paper_params, table4_profile):
        with pytest.raises(InvalidParameterError):
            plan_additive(table4_profile, paper_params, 0.01, -1)

    def test_exhausting_phi_raises(self, paper_params):
        # After enough steps the fastest rate falls below phi.
        profile = Profile([1.0, 0.1])
        with pytest.raises(InvalidParameterError):
            plan_additive(profile, paper_params, 0.06, 3)


class TestMultiplicativePlan:
    def test_reproduces_fig3_sequence(self, fig34_params):
        plan = plan_multiplicative(Profile.homogeneous(4), fig34_params, 0.5, 16)
        assert plan.chosen_sequence() == (3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1,
                                          0, 0, 0, 0)
        assert list(plan.final_profile) == pytest.approx([1 / 16] * 4)

    def test_greedy_matches_exhaustive_small(self, fig34_params):
        profile = Profile([1.0, 0.5])
        greedy = plan_multiplicative(profile, fig34_params, 0.5, 3)
        brute = exhaustive_multiplicative_plan(profile, fig34_params, 0.5, 3)
        assert greedy.total_work_ratio == pytest.approx(
            brute.total_work_ratio, rel=1e-9)

    def test_exhaustive_never_worse_than_greedy(self, paper_params):
        profile = Profile([1.0, 0.4, 0.15])
        greedy = plan_multiplicative(profile, paper_params, 0.6, 3)
        brute = exhaustive_multiplicative_plan(profile, paper_params, 0.6, 3)
        assert (x_measure(brute.final_profile, paper_params)
                >= x_measure(greedy.final_profile, paper_params) * (1 - 1e-12))

    def test_exhaustive_size_guard(self, paper_params):
        with pytest.raises(InvalidParameterError):
            exhaustive_multiplicative_plan(Profile.linear(10), paper_params, 0.5, 8)

    def test_step_records_consistent(self, fig34_params):
        plan = plan_multiplicative(Profile.homogeneous(3), fig34_params, 0.5, 2)
        assert plan.steps[0].new_profile == plan.steps[1].new_profile.with_rho_at(
            plan.steps[1].index, plan.steps[0].new_profile[plan.steps[1].index])
