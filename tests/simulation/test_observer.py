"""Integration: live observation of simulation runs.

The contract under test: a traced ``simulate_protocol`` run emits
exactly one ``sim.event`` record per processed engine event, the
metrics registry and the :class:`SimulationResult` agree on every
shared statistic, and an unobserved run emits nothing.
"""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Observation, SimulationObserver, Tracer, observe
from repro.protocols.fifo import FifoProtocol, fifo_allocation
from repro.simulation.engine import Simulator
from repro.simulation.runner import simulate_allocation, simulate_protocol

_PARAMS = ModelParams(tau=0.01, pi=0.001, delta=1.0)


def _observed_run(n=6, lifespan=200.0):
    tracer = Tracer()
    registry = MetricsRegistry()
    observer = SimulationObserver(tracer, registry)
    result = simulate_protocol(FifoProtocol(), Profile.linear(n), _PARAMS,
                               lifespan, observer=observer)
    return tracer, registry, observer, result


class TestSpanStreamMatchesEngine:
    def test_one_sim_event_record_per_processed_event(self):
        tracer, _, observer, result = _observed_run()
        events = tracer.records_named("sim.event")
        assert len(events) == result.events_processed
        assert observer.events_seen == result.events_processed

    def test_event_records_carry_sim_time_and_label(self):
        tracer, _, _, result = _observed_run()
        events = tracer.records_named("sim.event")
        times = [r["attrs"]["t"] for r in events]
        assert times == sorted(times)  # simulated time is monotone
        assert all(isinstance(r["attrs"]["label"], str) for r in events)

    def test_run_span_wraps_all_events(self):
        tracer, _, _, result = _observed_run()
        (span,) = tracer.records_named("sim.run")
        assert span["type"] == "span"
        assert span["attrs"]["events"] == result.events_processed
        assert span["attrs"]["protocol"] == "FIFO"
        # every sim.event is nested inside the run span
        assert all(r["depth"] == span["depth"] + 1
                   for r in tracer.records_named("sim.event"))

    def test_transit_records_match_result(self):
        tracer, _, _, result = _observed_run()
        transits = tracer.records_named("sim.transit")
        assert len(transits) == result.transits_granted
        kinds = {r["attrs"]["kind"] for r in transits}
        assert kinds == {"work", "result"}


class TestMetricsAgreeWithResult:
    def test_single_source_of_truth(self):
        _, registry, _, result = _observed_run()
        assert registry.counter("sim_events_total").value() == \
            result.events_processed
        assert registry.gauge("sim_queue_depth_peak").value() == \
            result.peak_queue_depth
        assert registry.counter("sim_transits_total").value() == \
            result.transits_granted
        assert registry.counter("sim_channel_busy_time").value() == \
            pytest.approx(result.network_busy_time)
        assert registry.counter("sim_runs_total").value() == 1.0

    def test_worker_milestone_counters(self):
        _, registry, _, result = _observed_run()
        milestones = registry.counter("sim_worker_milestones_total")
        active = sum(1 for r in result.records if r.work > 0.0)
        assert milestones.value(milestone="work_arrived") == active
        assert milestones.value(milestone="compute_done") == active
        assert milestones.value(milestone="result_delivered") == \
            len(result.completed_computers)


class TestAmbientPickup:
    def test_simulation_inherits_ambient_observation(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with observe(Observation(tracer=tracer, registry=registry)):
            result = simulate_protocol(FifoProtocol(), Profile.linear(4),
                                       _PARAMS, 100.0)
        assert len(tracer.records_named("sim.event")) == result.events_processed
        assert registry.counter("sim_runs_total").value() == 1.0

    def test_explicit_observer_wins_over_ambient(self):
        ambient = Tracer()
        mine = SimulationObserver(Tracer())
        with observe(Observation(tracer=ambient)):
            alloc = fifo_allocation(Profile.linear(3), _PARAMS, 100.0)
            simulate_allocation(alloc, observer=mine)
        assert ambient.records == ()
        assert mine.tracer.records_named("sim.event")


class TestDisabledPath:
    def test_unobserved_run_unchanged_and_untraced(self):
        alloc = fifo_allocation(Profile.linear(5), _PARAMS, 150.0)
        plain = simulate_allocation(alloc, engine="events")
        observer = SimulationObserver(Tracer())
        traced_result = simulate_allocation(alloc, observer=observer)
        assert plain.completed_work == traced_result.completed_work
        assert plain.events_processed == traced_result.events_processed
        assert plain.peak_queue_depth == traced_result.peak_queue_depth

    def test_engine_without_observer_has_no_observer(self):
        sim = Simulator()
        assert sim.observer is None


class TestQueueStatsExposed:
    def test_peak_queue_depth_surfaced_in_result(self):
        alloc = fifo_allocation(Profile.linear(8), _PARAMS, 200.0)
        result = simulate_allocation(alloc, engine="events")
        assert result.peak_queue_depth >= 1
        assert result.transits_granted == 16  # one work + one result per worker

    def test_engine_tracks_peak_depth(self):
        sim = Simulator()
        for t in (3.0, 1.0, 2.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.peak_queue_depth == 3
        assert sim.queue_depth == 0
        assert sim.events_processed == 3
