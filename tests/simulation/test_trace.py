"""Unit tests for repro.simulation.trace."""

import numpy as np
import pytest

from repro.core.profile import Profile
from repro.protocols.fifo import fifo_allocation
from repro.simulation.runner import simulate_allocation
from repro.simulation.trace import event_log, utilization_summary


@pytest.fixture
def sim_result(heavy_comm_params, table4_profile):
    alloc = fifo_allocation(table4_profile, heavy_comm_params, 60.0)
    return simulate_allocation(alloc)


class TestUtilizationSummary:
    def test_network_utilization_matches_busy_time(self, sim_result):
        summary = utilization_summary(sim_result)
        assert summary.network_utilization == pytest.approx(
            sim_result.network_busy_time / 60.0)

    def test_utilizations_in_unit_interval(self, sim_result):
        summary = utilization_summary(sim_result)
        assert 0.0 < summary.network_utilization <= 1.0
        assert 0.0 < summary.server_utilization <= 1.0
        for w in summary.worker_breakdowns:
            assert 0.0 < w.busy_fraction <= 1.0

    def test_worker_breakdown_sums_to_lifespan(self, sim_result):
        summary = utilization_summary(sim_result)
        for w in summary.worker_breakdowns:
            assert w.total == pytest.approx(60.0, rel=1e-9)

    def test_busy_matches_model(self, sim_result):
        params = sim_result.allocation.params
        profile = sim_result.allocation.profile
        summary = utilization_summary(sim_result)
        for w in summary.worker_breakdowns:
            expected = params.B * profile.rho[w.computer] * sim_result.allocation.w[w.computer]
            assert w.busy == pytest.approx(expected, rel=1e-9)

    def test_later_started_workers_wait_longer_for_work(self, sim_result):
        summary = utilization_summary(sim_result)
        waits = [w.waiting_for_work for w in summary.worker_breakdowns]
        assert waits == sorted(waits)  # startup order = profile order here

    def test_least_utilized_worker_identified(self, sim_result):
        summary = utilization_summary(sim_result)
        fractions = {w.computer: w.busy_fraction for w in summary.worker_breakdowns}
        least = summary.least_utilized_worker()
        assert fractions[least] == min(fractions.values())

    def test_mean_busy_fraction(self, sim_result):
        summary = utilization_summary(sim_result)
        manual = np.mean([w.busy_fraction for w in summary.worker_breakdowns])
        assert summary.mean_worker_busy_fraction == pytest.approx(manual)


class TestEventLog:
    def test_chronological(self, sim_result):
        log = event_log(sim_result)
        times = [float(line[2:14]) for line in log]  # "t={t:12.6g}" field
        assert times == sorted(times)

    def test_mentions_every_computer(self, sim_result):
        text = "\n".join(event_log(sim_result))
        for c in range(4):
            assert f"C{c + 1}" in text

    def test_five_milestones_per_worker(self, sim_result):
        # prep, receive, finish, begin-return, arrive for each of 4 workers.
        assert len(event_log(sim_result)) == 20

    def test_zero_work_computers_absent(self, paper_params):
        profile = Profile([1.0, 0.5])
        alloc = fifo_allocation(profile, paper_params, 10.0)
        import numpy as np
        from repro.protocols.base import WorkAllocation
        silent = WorkAllocation(profile=profile, params=paper_params,
                                lifespan=10.0, w=np.array([5.0, 0.0]),
                                startup_order=(0, 1), finishing_order=(0, 1))
        result = simulate_allocation(silent)
        text = "\n".join(event_log(result))
        assert "C2" not in text
