"""Fault injection through simulate_allocation (tentpole layer 1).

The original failure machinery (``failures={c: t}``) has exact,
well-tested semantics; these tests pin the generalised fault models to
them and to the analytic expectations of each new fault shape.
"""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.faults.models import PermanentCrash
from repro.faults.spec import FaultScenario
from repro.protocols.fifo import fifo_allocation
from repro.simulation.runner import simulate_allocation

PARAMS = ModelParams(tau=0.02, pi=0.002, delta=1.0)
PROFILE = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])


def _alloc(lifespan: float = 60.0):
    return fifo_allocation(PROFILE, PARAMS, lifespan)


def _crash_mid_busy(alloc, c: int) -> float:
    base = simulate_allocation(alloc)
    record = base.record_for(c)
    return 0.5 * (record.arrived + record.busy_end)


class TestCrashFaultBackCompat:
    """faults=PermanentCrash must equal the legacy failures= path."""

    @pytest.mark.parametrize("c", [0, 1, 2, 3])
    def test_crash_matches_legacy_failures(self, c):
        alloc = _alloc()
        crash = _crash_mid_busy(alloc, c)
        legacy = simulate_allocation(alloc, failures={c: crash})
        scenario = FaultScenario(faults=(PermanentCrash(c, crash),))
        modern = simulate_allocation(alloc, faults=scenario)
        assert modern.completed_work == legacy.completed_work
        assert modern.failed_computers == legacy.failed_computers
        assert modern.records == legacy.records

    @pytest.mark.parametrize("skip", [False, True])
    def test_crash_matches_legacy_under_both_policies(self, skip):
        alloc = _alloc()
        crash = _crash_mid_busy(alloc, 1)
        legacy = simulate_allocation(alloc, failures={1: crash},
                                     skip_failed_results=skip)
        modern = simulate_allocation(
            alloc, faults=FaultScenario(faults=(PermanentCrash(1, crash),)),
            skip_failed_results=skip)
        assert modern.completed_work == legacy.completed_work

    def test_crash_beyond_lifespan_changes_nothing(self):
        alloc = _alloc()
        result = simulate_allocation(alloc, faults="crash:0@1000000")
        assert result.failed_computers == ()
        assert result.completed_work == pytest.approx(alloc.total_work)


class TestTransientOutage:
    def test_outage_delays_the_busy_end(self):
        alloc = _alloc()
        base = simulate_allocation(alloc)
        record = base.record_for(0)
        mid = 0.5 * (record.arrived + record.busy_end)
        faulted = simulate_allocation(
            alloc, faults=f"outage:0@{mid}+3", skip_failed_results=True)
        assert faulted.record_for(0).busy_end == pytest.approx(
            record.busy_end + 3.0)

    def test_outage_outside_busy_period_is_free(self):
        alloc = _alloc()
        base = simulate_allocation(alloc)
        record = base.record_for(0)
        late = record.busy_end + 1.0
        faulted = simulate_allocation(alloc, faults=f"outage:0@{late}+2")
        assert faulted.record_for(0).busy_end == pytest.approx(record.busy_end)


class TestDegradedSpeed:
    def test_straggler_window_dilates_the_busy_period(self):
        alloc = _alloc()
        base = simulate_allocation(alloc)
        record = base.record_for(0)
        # Cover the whole busy period with a 2x slowdown: the busy time
        # from the arrival instant doubles.
        start, end = record.arrived, record.busy_end
        faulted = simulate_allocation(
            alloc, faults=f"slow:0@{start}+{2 * (end - start) + 10}x2",
            skip_failed_results=True)
        nominal = end - start
        assert faulted.record_for(0).busy_end == pytest.approx(
            start + 2.0 * nominal)

    def test_slower_worker_completes_less_by_deadline(self):
        alloc = _alloc()
        healthy = simulate_allocation(alloc)
        faulted = simulate_allocation(alloc, faults="slow:0@0+1000x4",
                                      skip_failed_results=True)
        assert faulted.completed_work < healthy.completed_work


class TestChannelFaults:
    def test_retransmission_recovers_single_losses(self):
        alloc = _alloc()
        # First attempt of C1's work package is lost; the retransmit
        # succeeds, so all work still completes — later than before.
        result = simulate_allocation(alloc, faults="drop:work:1:0",
                                     skip_failed_results=True)
        assert result.retransmits == 1
        assert result.messages_lost == 0
        assert result.record_for(1).arrived > 0.0

    def test_exhausted_budget_loses_the_work_package(self):
        alloc = _alloc()
        drops = ",".join(f"drop:work:1:{k}" for k in range(10))
        result = simulate_allocation(alloc, faults=drops + ",retransmits:2",
                                     skip_failed_results=True)
        assert result.messages_lost == 1
        assert result.retransmits == 2
        # the quantum never arrived: C1 produces nothing
        record = result.record_for(1)
        assert record.arrived != record.arrived  # NaN
        assert 1 not in result.completed_computers

    def test_lost_result_stalls_strict_but_not_skip(self):
        alloc = _alloc()
        first = alloc.finishing_order[0]
        drops = ",".join(f"drop:result:{first}:{k}" for k in range(10))
        spec = drops + ",retransmits:1"
        strict = simulate_allocation(alloc, faults=spec)
        skip = simulate_allocation(alloc, faults=spec,
                                   skip_failed_results=True)
        assert strict.completed_work == 0.0
        assert skip.completed_work > 0.0

    def test_lost_attempts_still_occupy_the_channel(self):
        alloc = _alloc()
        clean = simulate_allocation(alloc)
        faulted = simulate_allocation(alloc, faults="drop:work:1:0",
                                      skip_failed_results=True)
        assert faulted.network_busy_time > clean.network_busy_time
        faulted.allocation  # the run stays self-consistent
        assert faulted.transits_granted == clean.transits_granted + 1


class TestDeterminism:
    def test_seeded_scenario_replays_bit_identically(self):
        alloc = _alloc()
        spec = "crash~0.02,outage~0.01+4,slow~0.01+10x3,loss:0.05,seed:17"
        a = simulate_allocation(alloc, faults=spec, skip_failed_results=True)
        b = simulate_allocation(alloc, faults=spec, skip_failed_results=True)
        assert a.records == b.records
        assert a.completed_work == b.completed_work
        assert a.retransmits == b.retransmits

    def test_faults_injected_counted(self):
        alloc = _alloc()
        result = simulate_allocation(alloc, faults="crash:0@5,loss:0.01",
                                     skip_failed_results=True)
        assert result.faults_injected == 2
