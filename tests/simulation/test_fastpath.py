"""The event-free analytic fast path and the engine dispatch contract.

Three things are under test: (1) the analytic timeline reproduces the
event engine's records/aggregates within 1e-9 on representative
protocol shapes, (2) ``simulate_allocation``'s ``engine=`` dispatch
honours the documented forcing rules (faults, observers, ambient
tracers force events; metrics-only contexts keep the fast path), and
(3) the fast path reports itself through ``sim_fastpath_hits_total``.
"""

import numpy as np
import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Observation, SimulationObserver, Tracer, observe
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation
from repro.protocols.lifo import lifo_allocation
from repro.simulation.fastpath import analytic_records, analytic_simulation
from repro.simulation.runner import (
    default_engine,
    set_default_engine,
    simulate_allocation,
)

_PARAMS = ModelParams(tau=0.01, pi=0.001, delta=1.0)
_NO_RESULTS = ModelParams(tau=0.01, pi=0.001, delta=0.0)
_FIELDS = ("send_prep_start", "arrived", "busy_end", "result_start", "result_end")


def _assert_equivalent(alloc, **kwargs):
    ev = simulate_allocation(alloc, engine="events", **kwargs)
    an = simulate_allocation(alloc, engine="analytic", **kwargs)
    tol = 1e-9 * max(1.0, alloc.lifespan)
    assert an.completed_computers == ev.completed_computers
    assert an.completed_work == pytest.approx(ev.completed_work, abs=tol)
    assert an.makespan == pytest.approx(ev.makespan, abs=tol)
    assert an.network_busy_time == pytest.approx(ev.network_busy_time, abs=tol)
    assert an.transits_granted == ev.transits_granted
    for re, ra in zip(ev.records, an.records):
        for field in _FIELDS:
            a, b = getattr(re, field), getattr(ra, field)
            if np.isnan(a):
                assert np.isnan(b), (re.computer, field)
            else:
                assert b == pytest.approx(a, abs=tol), (re.computer, field)
    return ev, an


class TestEquivalence:
    def test_fifo_allocation(self):
        alloc = fifo_allocation(Profile.linear(6), _PARAMS, 100.0)
        _assert_equivalent(alloc)

    def test_lifo_allocation(self):
        alloc = lifo_allocation(Profile.linear(6), _PARAMS, 100.0)
        _assert_equivalent(alloc)

    def test_random_lp_allocation(self):
        alloc = lp_allocation(Profile([1.0, 0.5, 2.0, 0.8]), _PARAMS, 80.0,
                              (2, 0, 3, 1), (1, 3, 0, 2))
        _assert_equivalent(alloc)

    def test_no_results_delta_zero(self):
        alloc = fifo_allocation(Profile.linear(5), _NO_RESULTS, 60.0)
        _assert_equivalent(alloc)

    def test_greedy_results_policy(self):
        alloc = lifo_allocation(Profile.linear(5), _PARAMS, 100.0)
        _assert_equivalent(alloc, results_policy="greedy")

    def test_zero_work_computers_keep_nan_records(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        w = alloc.w.copy()
        w[2] = 0.0
        trimmed = type(alloc)(profile=alloc.profile, params=alloc.params,
                              lifespan=alloc.lifespan, w=w,
                              startup_order=alloc.startup_order,
                              finishing_order=alloc.finishing_order,
                              protocol_name=alloc.protocol_name)
        ev, an = _assert_equivalent(trimmed)
        assert np.isnan(an.record_for(2).arrived)

    def test_single_computer(self):
        alloc = fifo_allocation(Profile([1.0]), _PARAMS, 50.0)
        _assert_equivalent(alloc)

    def test_interleaved_results_take_merge_path(self):
        # A fast worker started first with heavy communication: its
        # result reservation lands between later sends, exercising the
        # grant-order merge rather than the vectorized tier.
        profile = Profile([0.05, 3.0, 3.0, 3.0])
        params = ModelParams(tau=0.3, pi=0.01, delta=1.0)
        alloc = lp_allocation(profile, params, 200.0, (0, 1, 2, 3),
                              (0, 1, 2, 3), enforce_separation=False,
                              protocol_name="interleave")
        _assert_equivalent(alloc)


class TestAnalyticResult:
    def test_no_events_no_queue(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        result = analytic_simulation(alloc)
        assert result.events_processed == 0
        assert result.peak_queue_depth == 0
        assert result.all_completed

    def test_timeline_checkable(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        timeline = analytic_simulation(alloc).to_timeline()
        assert timeline.intervals

    def test_unknown_policy_rejected(self):
        alloc = fifo_allocation(Profile.linear(3), _PARAMS, 50.0)
        with pytest.raises(SimulationError):
            analytic_records(alloc, results_policy="whenever")


class TestDispatch:
    def test_analytic_refuses_failures(self):
        alloc = fifo_allocation(Profile.linear(3), _PARAMS, 50.0)
        with pytest.raises(SimulationError, match="analytic"):
            simulate_allocation(alloc, engine="analytic", failures={0: 5.0})

    def test_analytic_refuses_fault_specs(self):
        alloc = fifo_allocation(Profile.linear(3), _PARAMS, 50.0)
        with pytest.raises(SimulationError, match="analytic"):
            simulate_allocation(alloc, engine="analytic",
                                faults="crash:0@5,seed:1")

    def test_unknown_engine_rejected(self):
        alloc = fifo_allocation(Profile.linear(3), _PARAMS, 50.0)
        with pytest.raises(SimulationError, match="unknown engine"):
            simulate_allocation(alloc, engine="warp")

    def test_auto_takes_fast_path_when_unobserved(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        result = simulate_allocation(alloc, engine="auto")
        assert result.events_processed == 0

    def test_auto_with_faults_runs_events(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        result = simulate_allocation(alloc, engine="auto", failures={1: 5.0})
        assert result.events_processed > 0

    def test_explicit_observer_forces_events(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        observer = SimulationObserver(Tracer())
        result = simulate_allocation(alloc, observer=observer)
        assert result.events_processed > 0
        assert observer.tracer.records_named("sim.event")

    def test_ambient_tracer_forces_events(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        tracer = Tracer()
        with observe(Observation(tracer=tracer)):
            result = simulate_allocation(alloc)
        assert result.events_processed > 0
        assert tracer.records_named("sim.event")

    def test_metrics_only_context_keeps_fast_path_and_counts_hits(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            first = simulate_allocation(alloc)
            second = simulate_allocation(alloc)
        assert first.events_processed == 0 == second.events_processed
        assert registry.counter("sim_fastpath_hits_total", "").value() == 2
        assert registry.counter("sim_runs_total", "").value() == 2
        assert registry.counter("sim_transits_total", "").value() \
            == first.transits_granted + second.transits_granted

    def test_event_engine_does_not_count_fastpath_hits(self):
        alloc = fifo_allocation(Profile.linear(4), _PARAMS, 100.0)
        registry = MetricsRegistry()
        with observe(Observation(registry=registry)):
            simulate_allocation(alloc, engine="events")
        assert registry.counter("sim_fastpath_hits_total", "").value() == 0

    def test_set_default_engine_round_trip(self):
        previous = set_default_engine("events")
        try:
            assert default_engine() == "events"
            alloc = fifo_allocation(Profile.linear(3), _PARAMS, 50.0)
            assert simulate_allocation(alloc).events_processed > 0
        finally:
            set_default_engine(previous)
        assert default_engine() == previous

    def test_set_default_engine_rejects_unknown(self):
        with pytest.raises(SimulationError):
            set_default_engine("warp")

    def test_invalid_env_engine_fails_fast_with_clear_error(self, monkeypatch):
        # A typo'd $REPRO_SIM_ENGINE must raise one clear error naming
        # the variable the moment the default is resolved — not surface
        # as a mystery deep inside the first simulation of a run.
        from repro.simulation import runner
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp")
        monkeypatch.setattr(runner, "_default_engine", None)
        with pytest.raises(SimulationError, match="REPRO_SIM_ENGINE"):
            runner.default_engine()
        alloc = fifo_allocation(Profile.linear(3), _PARAMS, 50.0)
        with pytest.raises(SimulationError, match="REPRO_SIM_ENGINE"):
            simulate_allocation(alloc)

    def test_valid_env_engine_is_resolved_once(self, monkeypatch):
        from repro.simulation import runner
        monkeypatch.setenv("REPRO_SIM_ENGINE", "analytic")
        monkeypatch.setattr(runner, "_default_engine", None)
        assert runner.default_engine() == "analytic"
        # Cached after first resolution: later env mutations don't move it.
        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp")
        assert runner.default_engine() == "analytic"
