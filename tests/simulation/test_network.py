"""Unit tests for repro.simulation.network."""

import pytest

from repro.errors import SimulationError
from repro.simulation.network import SingleChannelNetwork


class TestSingleChannelNetwork:
    def test_grants_at_requested_time_when_free(self):
        net = SingleChannelNetwork()
        t = net.reserve("work", 0, earliest=1.0, duration=2.0)
        assert (t.start, t.end) == (1.0, 3.0)

    def test_serialises_conflicting_requests(self):
        net = SingleChannelNetwork()
        net.reserve("work", 0, earliest=0.0, duration=2.0)
        t = net.reserve("work", 1, earliest=1.0, duration=1.0)
        assert t.start == 2.0  # pushed to when the channel frees

    def test_no_push_when_gap_exists(self):
        net = SingleChannelNetwork()
        net.reserve("work", 0, earliest=0.0, duration=1.0)
        t = net.reserve("result", 1, earliest=5.0, duration=1.0)
        assert t.start == 5.0

    def test_free_at_tracks_last_grant(self):
        net = SingleChannelNetwork()
        net.reserve("work", 0, earliest=0.0, duration=2.5)
        assert net.free_at == 2.5

    def test_zero_duration_allowed(self):
        net = SingleChannelNetwork()
        t = net.reserve("result", 0, earliest=1.0, duration=0.0)
        assert t.start == t.end == 1.0

    def test_busy_time(self):
        net = SingleChannelNetwork()
        net.reserve("work", 0, earliest=0.0, duration=2.0)
        net.reserve("result", 0, earliest=5.0, duration=1.5)
        assert net.busy_time() == pytest.approx(3.5)

    def test_assert_serial_passes(self):
        net = SingleChannelNetwork()
        for i in range(5):
            net.reserve("work", i, earliest=float(i), duration=0.5)
        net.assert_serial()  # must not raise

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            SingleChannelNetwork().reserve("work", 0, earliest=0.0, duration=-1.0)

    def test_invalid_time_rejected(self):
        with pytest.raises(SimulationError):
            SingleChannelNetwork().reserve("work", 0, earliest=-1.0, duration=1.0)

    def test_transits_recorded_in_grant_order(self):
        net = SingleChannelNetwork()
        net.reserve("work", 7, earliest=0.0, duration=1.0)
        net.reserve("result", 3, earliest=0.0, duration=1.0)
        kinds = [(t.kind, t.computer) for t in net.transits]
        assert kinds == [("work", 7), ("result", 3)]
