"""Unit tests for repro.simulation.engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Simulator


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule_at(2.0, lambda: times.append(sim.now))
        sim.schedule_at(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.0]
        assert sim.now == 2.0

    def test_schedule_after(self):
        sim = Simulator()
        log = []

        def first():
            sim.schedule_after(0.5, lambda: log.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert log == [1.5]

    def test_cascading_events(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                sim.schedule_after(1.0, tick)

        sim.schedule_at(0.0, tick)
        sim.run()
        assert count[0] == 5
        assert sim.now == 4.0
        assert sim.events_processed == 5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock moved to the horizon

    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run(until=2.0)
        assert fired == [2]

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 3]

    def test_scheduling_into_past_raises(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_reentrant_run_raises(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule_at(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()
