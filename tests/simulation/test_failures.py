"""Failure-injection tests: worker crashes during a CEP round.

The FIFO protocol's finishing order is a contract; these tests measure
what a mid-round crash costs under the strict protocol (everything
queued behind the failure stalls) versus the skip-failed recovery
heuristic (only the dead worker's quantum is lost).
"""

import pytest

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import SimulationError
from repro.protocols.fifo import fifo_allocation
from repro.protocols.timeline import build_timeline
from repro.simulation.runner import simulate_allocation


@pytest.fixture
def setup():
    params = ModelParams(tau=0.02, pi=0.002, delta=1.0)
    profile = Profile([1.0, 0.5, 1 / 3, 0.25])
    alloc = fifo_allocation(profile, params, 60.0)
    return params, profile, alloc


def _busy_midpoint(alloc, computer: int) -> float:
    tl = build_timeline(alloc)
    busy = [iv for iv in tl.for_computer(computer) if iv.kind == "busy"][0]
    return 0.5 * (busy.start + busy.end)


class TestStrictProtocol:
    def test_no_failures_baseline(self, setup):
        _, _, alloc = setup
        result = simulate_allocation(alloc, failures={})
        assert result.all_completed
        assert result.failed_computers == ()

    def test_last_finisher_crash_loses_only_its_quantum(self, setup):
        _, _, alloc = setup
        t = _busy_midpoint(alloc, 3)
        result = simulate_allocation(alloc, failures={3: t})
        assert result.failed_computers == (3,)
        assert set(result.completed_computers) == {0, 1, 2}
        assert result.completed_work == pytest.approx(
            alloc.total_work - alloc.w[3], rel=1e-9)

    def test_first_finisher_crash_stalls_everything(self, setup):
        # Strict FIFO: results behind the dead first finisher never flow.
        _, _, alloc = setup
        t = _busy_midpoint(alloc, 0)
        result = simulate_allocation(alloc, failures={0: t})
        assert result.failed_computers == (0,)
        assert result.completed_work == 0.0

    def test_crash_before_receiving(self, setup):
        _, _, alloc = setup
        result = simulate_allocation(alloc, failures={3: 0.0})
        assert 3 in result.failed_computers
        assert 3 not in result.completed_computers

    def test_crash_after_all_work_done_changes_nothing(self, setup):
        _, _, alloc = setup
        result = simulate_allocation(alloc, failures={2: alloc.lifespan * 10})
        assert result.all_completed
        assert result.failed_computers == ()


class TestSkipRecovery:
    def test_skip_loses_only_the_dead_quantum(self, setup):
        _, _, alloc = setup
        t = _busy_midpoint(alloc, 0)
        result = simulate_allocation(alloc, failures={0: t},
                                     skip_failed_results=True)
        assert set(result.completed_computers) == {1, 2, 3}
        assert result.completed_work == pytest.approx(
            alloc.total_work - alloc.w[0], rel=1e-9)

    def test_skip_vs_strict_gap(self, setup):
        # The recovery heuristic's value = everything behind the failure.
        _, _, alloc = setup
        t = _busy_midpoint(alloc, 0)
        strict = simulate_allocation(alloc, failures={0: t})
        skipping = simulate_allocation(alloc, failures={0: t},
                                       skip_failed_results=True)
        assert skipping.completed_work - strict.completed_work == pytest.approx(
            alloc.w[1] + alloc.w[2] + alloc.w[3], rel=1e-9)

    def test_multiple_failures(self, setup):
        _, _, alloc = setup
        failures = {0: _busy_midpoint(alloc, 0), 2: _busy_midpoint(alloc, 2)}
        result = simulate_allocation(alloc, failures=failures,
                                     skip_failed_results=True)
        assert set(result.failed_computers) == {0, 2}
        assert set(result.completed_computers) == {1, 3}

    def test_all_fail(self, setup):
        _, _, alloc = setup
        failures = {c: 0.0 for c in range(4)}
        result = simulate_allocation(alloc, failures=failures,
                                     skip_failed_results=True)
        assert result.completed_work == 0.0
        assert len(result.failed_computers) == 4


class TestValidation:
    def test_unknown_computer_rejected(self, setup):
        _, _, alloc = setup
        with pytest.raises(SimulationError):
            simulate_allocation(alloc, failures={9: 1.0})

    def test_negative_time_rejected(self, setup):
        _, _, alloc = setup
        with pytest.raises(SimulationError):
            simulate_allocation(alloc, failures={0: -1.0})
