"""Unit tests for repro.simulation.events."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import EventQueue


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, lambda: fired.append(3))
        q.push(1.0, lambda: fired.append(1))
        q.push(2.0, lambda: fired.append(2))
        while not q.empty:
            q.pop().action()
        assert fired == [1, 2, 3]

    def test_stable_for_ties(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("a"))
        q.push(1.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("c"))
        while not q.empty:
            q.pop().action()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        fired = []
        event = q.push(1.0, lambda: fired.append("x"))
        q.push(2.0, lambda: fired.append("y"))
        event.cancel()
        while not q.empty:
            q.pop().action()
        assert fired == ["y"]

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e1.cancel()
        assert len(q) == 1

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time is None
        q.push(5.0, lambda: None)
        assert q.next_time == 5.0

    def test_empty_after_cancelling_everything(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        event.cancel()
        assert q.empty

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_rejects_nan_time(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), lambda: None)
