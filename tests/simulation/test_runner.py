"""Unit tests for repro.simulation.runner — the DES vs the analytics."""

import pytest

from repro.core.measure import work_production
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import SimulationError
from repro.protocols.feasibility import check_timeline
from repro.protocols.fifo import FifoProtocol, fifo_allocation, fifo_saturation_index
from repro.protocols.lifo import LifoProtocol, lifo_allocation
from repro.simulation.runner import simulate_allocation, simulate_protocol
from tests.conftest import PARAM_GRID, PROFILE_GRID


class TestFifoAgreement:
    @pytest.mark.parametrize("params", PARAM_GRID)
    @pytest.mark.parametrize("profile", PROFILE_GRID)
    def test_simulated_work_matches_theorem2(self, profile, params):
        if fifo_saturation_index(profile, params) > 1.0:
            pytest.skip("communication-dominated regime")
        result = simulate_allocation(fifo_allocation(profile, params, 60.0))
        assert result.all_completed
        assert result.completed_work == pytest.approx(
            work_production(profile, params, 60.0), rel=1e-9)

    @pytest.mark.parametrize("policy", ["late", "greedy"])
    def test_policies_complete_same_work(self, policy, heavy_comm_params,
                                         table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 60.0)
        result = simulate_allocation(alloc, results_policy=policy)
        assert result.completed_work == pytest.approx(alloc.total_work, rel=1e-9)

    def test_greedy_makespan_no_later(self, heavy_comm_params, table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 60.0)
        late = simulate_allocation(alloc, results_policy="late")
        greedy = simulate_allocation(alloc, results_policy="greedy")
        assert greedy.makespan <= late.makespan + 1e-9

    def test_observed_timeline_is_feasible(self, heavy_comm_params, table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 60.0)
        result = simulate_allocation(alloc)
        report = check_timeline(result.to_timeline())
        assert report.feasible, report.describe()


class TestLifoAgreement:
    def test_simulated_lifo_matches_closed_form(self, heavy_comm_params,
                                                table4_profile):
        alloc = lifo_allocation(table4_profile, heavy_comm_params, 60.0)
        result = simulate_allocation(alloc)
        assert result.all_completed
        assert result.completed_work == pytest.approx(alloc.total_work, rel=1e-9)

    def test_lifo_results_arrive_in_reverse_order(self, heavy_comm_params,
                                                  table4_profile):
        alloc = lifo_allocation(table4_profile, heavy_comm_params, 60.0)
        result = simulate_allocation(alloc)
        ends = [result.record_for(c).result_end for c in alloc.finishing_order]
        assert ends == sorted(ends)


class TestOversubscription:
    def test_overcommitted_schedule_loses_work(self):
        # In a saturated regime the analytic W over-promises; the DES
        # honestly reports the shortfall.
        params = ModelParams(tau=0.2, pi=0.01, delta=1.0)
        profile = Profile([1.0, 0.5, 1 / 3, 0.25])
        assert fifo_saturation_index(profile, params) > 1.0
        alloc = fifo_allocation(profile, params, 60.0)
        result = simulate_allocation(alloc)
        assert not result.all_completed
        assert result.completed_work < alloc.total_work


class TestBookkeeping:
    def test_network_busy_time(self, heavy_comm_params, table4_profile):
        alloc = fifo_allocation(table4_profile, heavy_comm_params, 60.0)
        result = simulate_allocation(alloc)
        params = heavy_comm_params
        expected = (params.tau + params.tau_delta) * alloc.total_work
        assert result.network_busy_time == pytest.approx(expected, rel=1e-9)

    def test_records_cover_all_computers(self, paper_params, table4_profile):
        result = simulate_protocol(FifoProtocol(), table4_profile, paper_params, 60.0)
        assert [r.computer for r in result.records] == [0, 1, 2, 3]

    def test_record_for_unknown_computer(self, paper_params, table4_profile):
        result = simulate_protocol(FifoProtocol(), table4_profile, paper_params, 60.0)
        with pytest.raises(SimulationError):
            result.record_for(99)

    def test_event_count_scales_with_cluster(self, paper_params):
        small = simulate_protocol(FifoProtocol(), Profile.linear(2), paper_params,
                                  60.0, engine="events")
        large = simulate_protocol(FifoProtocol(), Profile.linear(8), paper_params,
                                  60.0, engine="events")
        assert large.events_processed > small.events_processed

    def test_unknown_policy_rejected(self, paper_params, table4_profile):
        alloc = fifo_allocation(table4_profile, paper_params, 60.0)
        with pytest.raises(SimulationError):
            simulate_allocation(alloc, results_policy="whenever")

    def test_delta_zero_completion_via_busy_end(self, table4_profile):
        params = ModelParams(tau=1e-3, pi=1e-4, delta=0.0)
        result = simulate_protocol(FifoProtocol(), table4_profile, params, 60.0)
        assert result.all_completed
        rec = result.record_for(0)
        assert rec.result_end == rec.busy_end

    def test_milestones_ordered(self, heavy_comm_params, table4_profile):
        result = simulate_protocol(LifoProtocol(), table4_profile,
                                   heavy_comm_params, 60.0)
        for rec in result.records:
            assert rec.send_prep_start <= rec.arrived <= rec.busy_end
            assert rec.busy_end <= rec.result_start <= rec.result_end
