"""Worksharing protocols for the CEP (the substrate from reference [1]).

* :class:`~repro.protocols.fifo.FifoProtocol` — the optimal family
  (closed form);
* :class:`~repro.protocols.lifo.LifoProtocol` — the classic suboptimal
  baseline (closed form);
* :class:`~repro.protocols.general.GeneralProtocol` — any (Σ, Φ) pair,
  solved as a linear program;
* :mod:`~repro.protocols.timeline` — explicit action/time diagrams
  (Figs. 1–2);
* :mod:`~repro.protocols.feasibility` — invariant checking.
"""

from repro.protocols.base import Protocol, WorkAllocation, validate_order
from repro.protocols.conformance import check_protocol_conformance
from repro.protocols.feasibility import (
    FeasibilityReport,
    Violation,
    check_allocation,
    check_timeline,
)
from repro.protocols.fifo import (
    FifoProtocol,
    fifo_allocation,
    fifo_saturation_index,
    fifo_work_fractions,
)
from repro.protocols.general import (
    GeneralProtocol,
    lp_allocation,
    lp_allocation_many,
)
from repro.protocols.lifo import LifoProtocol, lifo_allocation
from repro.protocols.timeline import Interval, Timeline, build_timeline

__all__ = [
    "Protocol",
    "WorkAllocation",
    "validate_order",
    "FifoProtocol",
    "fifo_allocation",
    "fifo_saturation_index",
    "fifo_work_fractions",
    "LifoProtocol",
    "lifo_allocation",
    "GeneralProtocol",
    "lp_allocation",
    "lp_allocation_many",
    "Interval",
    "Timeline",
    "build_timeline",
    "FeasibilityReport",
    "Violation",
    "check_allocation",
    "check_timeline",
    "check_protocol_conformance",
]
