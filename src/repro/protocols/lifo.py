"""LIFO worksharing protocols — the natural non-FIFO baseline.

Under LIFO the finishing order is the *reverse* of the startup order: the
last computer to receive work is the first to return results.  LIFO is
the classic alternative in divisible-load scheduling; in this model it is
strictly suboptimal (Theorem 1 gives FIFO the crown), and quantifying the
gap is the point of the protocol-optimality ablation benchmark.

Closed-form allocation
----------------------
With computers in startup order (rates ρ₍₁₎ … ρ₍ₙ₎), worker k's result
slot is followed on the channel by exactly the slots of workers
1 … k−1 (they return later), so making every packaging-finish meet its
slot start exactly gives, with ``T_k = Σ_{j≤k} w_{(j)}``,

.. math::

    (A + τδ)·T_k + Bρ_{(k)}·(T_k − T_{k-1}) = L
    \\qquad⇒\\qquad
    T_k = \\frac{L + Bρ_{(k)}·T_{k-1}}{A + τδ + Bρ_{(k)}},

an O(n) recurrence.  All quanta are automatically nonnegative because
``T_k < L/(A+τδ)`` inductively.  The LP of
:mod:`repro.protocols.general` confirms this all-tight solution is the
LIFO optimum (a test).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ProtocolError
from repro.protocols.base import Protocol, WorkAllocation, validate_order

__all__ = ["LifoProtocol", "lifo_allocation"]


def lifo_allocation(profile: Profile, params: ModelParams, lifespan: float,
                    startup_order: Sequence[int] | None = None) -> WorkAllocation:
    """Exact work-maximising LIFO allocation (closed-form recurrence).

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile.
    params:
        Architectural model parameters.
    lifespan:
        The CEP lifespan ``L > 0``.
    startup_order:
        Σ; Φ is its reverse.  Defaults to profile order.

    Notes
    -----
    Empirically, LIFO production — like FIFO's (Theorem 1(2)) — is
    *invariant* under the startup order: unrolling the recurrence shows
    ``T_n`` is a symmetric function of the ρ-values.  The test suite
    verifies the invariance across permutations; individual computers'
    quanta do depend on the order, only the total does not.
    """
    if lifespan <= 0 or not np.isfinite(lifespan):
        raise ProtocolError(f"lifespan must be positive and finite, got {lifespan!r}")
    n = profile.n
    order = validate_order(startup_order if startup_order is not None else range(n), n,
                           name="startup_order")
    rho = profile.rho[np.asarray(order)]
    A, B, td = params.A, params.B, params.tau_delta

    T_prev = 0.0
    w_in_order = np.empty(n)
    for k in range(n):
        brk = B * rho[k]
        T_k = (lifespan + brk * T_prev) / (A + td + brk)
        w_in_order[k] = T_k - T_prev
        T_prev = T_k

    w = np.empty(n)
    w[np.asarray(order)] = w_in_order
    return WorkAllocation(profile=profile, params=params, lifespan=lifespan,
                          w=w, startup_order=order,
                          finishing_order=tuple(reversed(order)),
                          protocol_name="LIFO")


class LifoProtocol(Protocol):
    """The LIFO protocol family (Φ = reverse Σ)."""

    name = "LIFO"

    def __init__(self, startup_order: Sequence[int] | None = None) -> None:
        self._startup_order = tuple(startup_order) if startup_order is not None else None

    def allocate(self, profile: Profile, params: ModelParams,
                 lifespan: float) -> WorkAllocation:
        return lifo_allocation(profile, params, lifespan, self._startup_order)
