"""Feasibility checking for worksharing schedules.

Theorem 1 promises FIFO optimality "over any sufficiently long lifespan".
The fluid model used throughout the paper is scale-invariant — doubling L
doubles every quantum — so what "sufficiently long" rules out is not a
structural property of the fluid schedule but the fixed per-message
latencies the model deliberately ignores (§2.1).  What *can* go wrong
structurally, and what this module detects, is:

* two messages in transit at once (the model's cardinal invariant);
* a worker computing before its work has arrived;
* result slots that start before their workers finished packaging;
* activity spilling past the lifespan ``L``;
* on saturated clusters, the outgoing-send block colliding with the
  incoming-result block.

The checker consumes a :class:`~repro.protocols.timeline.Timeline` and
reports every violation, so it works for *any* protocol family — FIFO,
LIFO, LP-derived, or hand-built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.base import WorkAllocation
from repro.protocols.timeline import Timeline, build_timeline

__all__ = ["Violation", "FeasibilityReport", "check_timeline", "check_allocation"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected schedule violation."""

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check.

    ``feasible`` is True iff no violations were found; ``violations``
    lists every problem detected (the check does not stop at the first).
    """

    feasible: bool
    violations: tuple[Violation, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.feasible

    def describe(self) -> str:
        """Multi-line human-readable report."""
        if self.feasible:
            return "schedule feasible: all invariants hold"
        lines = [f"schedule INFEASIBLE: {len(self.violations)} violation(s)"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def _tolerance(lifespan: float) -> float:
    """Absolute slack for float comparisons, scaled to the schedule."""
    return 1e-9 * max(1.0, lifespan)


def check_timeline(timeline: Timeline) -> FeasibilityReport:
    """Verify every model invariant on an explicit timeline."""
    alloc = timeline.allocation
    tol = _tolerance(alloc.lifespan)
    violations: list[Violation] = []

    # 1. No resource runs two activities at once (in particular: at most
    #    one message in transit on the network).
    for resource in timeline.resources:
        ivs = timeline.on_resource(resource)
        for prev, cur in zip(ivs, ivs[1:]):
            if cur.start < prev.end - tol:
                violations.append(Violation(
                    "overlap",
                    f"{resource}: {prev.kind}(C{prev.computer}) "
                    f"[{prev.start:.6g},{prev.end:.6g}) overlaps "
                    f"{cur.kind}(C{cur.computer}) [{cur.start:.6g},{cur.end:.6g})"))

    # 2. Nothing before time zero or after the lifespan.
    for iv in timeline.intervals:
        if iv.start < -tol:
            violations.append(Violation(
                "before-start", f"{iv.resource}/{iv.kind} for C{iv.computer} "
                                f"starts at {iv.start:.6g} < 0"))
        if iv.end > alloc.lifespan + tol:
            violations.append(Violation(
                "past-lifespan", f"{iv.resource}/{iv.kind} for C{iv.computer} "
                                 f"ends at {iv.end:.6g} > L={alloc.lifespan:g}"))

    # 3. Causality per computer: work-prep ≤ work-transit ≤ busy ≤ result.
    for c in range(alloc.n):
        stages = {iv.kind: iv for iv in timeline.for_computer(c)}
        chain = ["work-prep", "work-transit", "busy", "result-transit"]
        present = [stages[k] for k in chain if k in stages]
        for a, b in zip(present, present[1:]):
            if b.start < a.end - tol:
                violations.append(Violation(
                    "causality", f"C{c}: {b.kind} starts at {b.start:.6g} "
                                 f"before {a.kind} ends at {a.end:.6g}"))

    # 4. Every computer with work has a complete stage chain.
    for c in range(alloc.n):
        if alloc.w[c] > 0.0:
            kinds = {iv.kind for iv in timeline.for_computer(c)}
            missing = {"work-prep", "work-transit", "busy"} - kinds
            if alloc.params.delta > 0.0:
                missing |= {"result-transit"} - kinds
            if missing:
                violations.append(Violation(
                    "incomplete", f"C{c} has work but no {sorted(missing)} stage(s)"))

    return FeasibilityReport(feasible=not violations,
                             violations=tuple(violations))


def check_allocation(allocation: WorkAllocation, *,
                     results_as_late_as_possible: bool = True) -> FeasibilityReport:
    """Build the allocation's timeline and check it.

    A timeline that cannot even be built (a worker misses its result
    slot) is reported as a single ``slot-missed`` violation rather than
    raising, so callers can treat feasibility uniformly.
    """
    from repro.errors import InfeasibleScheduleError
    try:
        timeline = build_timeline(allocation,
                                  results_as_late_as_possible=results_as_late_as_possible)
    except InfeasibleScheduleError as exc:
        return FeasibilityReport(
            feasible=False,
            violations=(Violation("slot-missed", str(exc)),))
    return check_timeline(timeline)
