"""Optimal scheduling of *arbitrary* (Σ, Φ) worksharing protocols via LP.

The FIFO closed form covers Σ = Φ.  For any other startup/finishing order
pair the optimal work allocation is the solution of a small linear
program, which this module builds and solves with
:func:`scipy.optimize.linprog`.  Having an independent optimiser for every
protocol shape lets the test suite *verify* Theorem 1 — FIFO protocols
are optimal and startup-order invariant — instead of assuming it, and it
powers the protocol-optimality ablation benchmark.

LP formulation
--------------
Variables: work quanta ``w_c ≥ 0``.  Writing ``spos(c)``/``fpos(c)`` for
computer c's startup/finishing positions, the constraints say that each
computer finishes packaging its results no later than its result slot
opens, where result slots sit contiguously at the end of the lifespan
(the latest — hence least constraining — placement):

.. math::

    (π+τ) \\sum_{spos(d) ≤ spos(c)} w_d \\; + \\; Bρ_c w_c \\; + \\;
    τδ \\sum_{fpos(d) ≥ fpos(c)} w_d \\;\\; ≤ \\;\\; L
    \\qquad\\text{for every } c,

plus (optionally) the block-separation constraint
``(π + τ + τδ)·Σ w ≤ L`` ensuring the outgoing-send block clears the
channel before the result block begins.  The objective maximises
``Σ w_c``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.batch_kernels import ProfileBatch
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InfeasibleScheduleError, ProtocolError
from repro.protocols.base import Protocol, WorkAllocation, validate_order

__all__ = ["GeneralProtocol", "lp_allocation", "lp_allocation_many"]


def _positions(order: tuple[int, ...], n: int) -> np.ndarray:
    """Map an order (permutation) to each computer's position in it."""
    pos = np.empty(n, dtype=int)
    pos[np.asarray(order)] = np.arange(n)
    return pos


def _constraint_rows(rho: np.ndarray, params: ModelParams,
                     spos: np.ndarray, fpos: np.ndarray,
                     enforce_separation: bool,
                     b_rho: np.ndarray | None = None) -> np.ndarray:
    """Vectorized ``A_ub`` for one — or a batch of — (Σ, Φ) pairs.

    ``spos``/``fpos`` hold each computer's startup/finishing *position*
    and may carry leading batch dimensions; the result has shape
    ``(..., m, n)`` with ``m = n`` (+1 when the separation row is on).
    Entry (c, d) accumulates exactly the terms the scalar row loop used
    to add, in the same order: ``π+τ`` when d's send precedes or is c's,
    ``Bρ_c`` on the diagonal, ``τδ`` when d's result follows or is c's.

    ``b_rho`` optionally supplies the precomputed ``Bρ`` diagonal — e.g.
    a row of a :class:`~repro.core.batch_kernels.ProfileBatch` column
    cache, which holds the bit-identical product — so callers that
    already paid for the columns don't multiply again.
    """
    A_send = params.pi + params.tau
    td = params.tau_delta
    n = rho.shape[-1]
    send_mask = spos[..., None, :] <= spos[..., :, None]
    fin_mask = fpos[..., None, :] >= fpos[..., :, None]
    rows = A_send * send_mask
    diag = np.arange(n)
    rows[..., diag, diag] += params.B * rho if b_rho is None else b_rho
    rows = rows + td * fin_mask
    if enforce_separation and td > 0.0:
        sep = np.full(rows.shape[:-2] + (1, n), A_send + td)
        rows = np.concatenate([rows, sep], axis=-2)
    return rows


def lp_allocation(profile: Profile, params: ModelParams, lifespan: float,
                  startup_order: Sequence[int],
                  finishing_order: Sequence[int],
                  *, enforce_separation: bool = True,
                  protocol_name: str = "LP") -> WorkAllocation:
    """Work-maximising allocation for a fixed (Σ, Φ) protocol pair.

    Parameters
    ----------
    profile, params, lifespan:
        The cluster, environment and CEP lifespan.
    startup_order, finishing_order:
        Σ and Φ as permutations of computer indices.
    enforce_separation:
        Require the send block to clear the channel before the first
        result transit (the layout of Figs. 1–2).  Disable only for
        experiments on saturated clusters.
    protocol_name:
        Label recorded on the returned allocation.

    Raises
    ------
    InfeasibleScheduleError
        If the LP solver fails (should not happen: w = 0 is always
        feasible).
    """
    if lifespan <= 0 or not np.isfinite(lifespan):
        raise ProtocolError(f"lifespan must be positive and finite, got {lifespan!r}")
    n = profile.n
    sigma = validate_order(startup_order, n, name="startup_order")
    phi = validate_order(finishing_order, n, name="finishing_order")
    rho = profile.rho

    A_ub = _constraint_rows(rho, params, _positions(sigma, n),
                            _positions(phi, n), enforce_separation)
    b_ub = np.full(A_ub.shape[0], float(lifespan))

    result = linprog(c=-np.ones(n), A_ub=A_ub, b_ub=b_ub,
                     bounds=[(0.0, None)] * n, method="highs")
    if not result.success:  # pragma: no cover - w = 0 is always feasible
        raise InfeasibleScheduleError(
            f"LP solver failed for ({protocol_name}) protocol: {result.message}")
    w = np.clip(result.x, 0.0, None)
    return WorkAllocation(profile=profile, params=params, lifespan=lifespan,
                          w=w, startup_order=sigma, finishing_order=phi,
                          protocol_name=protocol_name)


def lp_allocation_many(profile: Profile, params: ModelParams, lifespan: float,
                       pairs: Sequence[tuple[Sequence[int], Sequence[int]]],
                       *, enforce_separation: bool = True,
                       protocol_name: str = "LP") -> list[WorkAllocation]:
    """Solve many (Σ, Φ) protocol pairs of one cluster as a batch.

    Builds every pair's constraint matrix in one broadcast pass (a
    ``(P, m, n)`` tensor instead of P × n Python-level row loops) and
    shares the objective/bounds/right-hand-side structure across the P
    HiGHS solves, so enumeration studies such as
    :mod:`repro.experiments.protocol_optimality` stop paying the
    per-permutation assembly cost.  Each returned allocation is
    bit-identical to the corresponding :func:`lp_allocation` call — the
    batched builder feeds the solver the very same matrix values.
    """
    if lifespan <= 0 or not np.isfinite(lifespan):
        raise ProtocolError(f"lifespan must be positive and finite, got {lifespan!r}")
    if not pairs:
        return []
    n = profile.n
    validated = [(validate_order(s, n, name="startup_order"),
                  validate_order(f, n, name="finishing_order"))
                 for s, f in pairs]
    spos = np.stack([_positions(s, n) for s, _ in validated])
    fpos = np.stack([_positions(f, n) for _, f in validated])
    # The Bρ diagonal comes from the cluster's ProfileBatch column cache
    # (the same Bρ + A / Bρ + τδ precomputation the eq.-(1) kernels use);
    # the product is bit-identical to params.B * rho, so every constraint
    # matrix — and hence every solve — matches per-pair lp_allocation.
    columns = ProfileBatch(profile.rho[None, :], copy=False).columns(params)
    A_all = _constraint_rows(profile.rho, params, spos, fpos,
                             enforce_separation, b_rho=columns.b_rho[0])
    b_ub = np.full(A_all.shape[1], float(lifespan))
    c_obj = -np.ones(n)
    bounds = [(0.0, None)] * n

    allocations: list[WorkAllocation] = []
    for (sigma, phi), A_ub in zip(validated, A_all):
        result = linprog(c=c_obj, A_ub=A_ub, b_ub=b_ub, bounds=bounds,
                         method="highs")
        if not result.success:  # pragma: no cover - w = 0 is always feasible
            raise InfeasibleScheduleError(
                f"LP solver failed for ({protocol_name}) protocol: "
                f"{result.message}")
        w = np.clip(result.x, 0.0, None)
        allocations.append(WorkAllocation(
            profile=profile, params=params, lifespan=lifespan, w=w,
            startup_order=sigma, finishing_order=phi,
            protocol_name=protocol_name))
    return allocations


class GeneralProtocol(Protocol):
    """An arbitrary worksharing protocol: any startup order, any finishing order.

    Parameters
    ----------
    startup_order, finishing_order:
        Fixed Σ and Φ (permutations of computer indices, sized to the
        clusters this protocol will schedule).
    enforce_separation:
        See :func:`lp_allocation`.
    """

    name = "general-LP"

    def __init__(self, startup_order: Sequence[int],
                 finishing_order: Sequence[int],
                 *, enforce_separation: bool = True) -> None:
        self._sigma = tuple(int(i) for i in startup_order)
        self._phi = tuple(int(i) for i in finishing_order)
        self._enforce_separation = enforce_separation

    def allocate(self, profile: Profile, params: ModelParams,
                 lifespan: float) -> WorkAllocation:
        label = "FIFO-LP" if self._sigma == self._phi else "general-LP"
        return lp_allocation(profile, params, lifespan, self._sigma, self._phi,
                             enforce_separation=self._enforce_separation,
                             protocol_name=label)
