"""Optimal scheduling of *arbitrary* (Σ, Φ) worksharing protocols via LP.

The FIFO closed form covers Σ = Φ.  For any other startup/finishing order
pair the optimal work allocation is the solution of a small linear
program, which this module builds and solves with
:func:`scipy.optimize.linprog`.  Having an independent optimiser for every
protocol shape lets the test suite *verify* Theorem 1 — FIFO protocols
are optimal and startup-order invariant — instead of assuming it, and it
powers the protocol-optimality ablation benchmark.

LP formulation
--------------
Variables: work quanta ``w_c ≥ 0``.  Writing ``spos(c)``/``fpos(c)`` for
computer c's startup/finishing positions, the constraints say that each
computer finishes packaging its results no later than its result slot
opens, where result slots sit contiguously at the end of the lifespan
(the latest — hence least constraining — placement):

.. math::

    (π+τ) \\sum_{spos(d) ≤ spos(c)} w_d \\; + \\; Bρ_c w_c \\; + \\;
    τδ \\sum_{fpos(d) ≥ fpos(c)} w_d \\;\\; ≤ \\;\\; L
    \\qquad\\text{for every } c,

plus (optionally) the block-separation constraint
``(π + τ + τδ)·Σ w ≤ L`` ensuring the outgoing-send block clears the
channel before the result block begins.  The objective maximises
``Σ w_c``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InfeasibleScheduleError, ProtocolError
from repro.protocols.base import Protocol, WorkAllocation, validate_order

__all__ = ["GeneralProtocol", "lp_allocation"]


def lp_allocation(profile: Profile, params: ModelParams, lifespan: float,
                  startup_order: Sequence[int],
                  finishing_order: Sequence[int],
                  *, enforce_separation: bool = True,
                  protocol_name: str = "LP") -> WorkAllocation:
    """Work-maximising allocation for a fixed (Σ, Φ) protocol pair.

    Parameters
    ----------
    profile, params, lifespan:
        The cluster, environment and CEP lifespan.
    startup_order, finishing_order:
        Σ and Φ as permutations of computer indices.
    enforce_separation:
        Require the send block to clear the channel before the first
        result transit (the layout of Figs. 1–2).  Disable only for
        experiments on saturated clusters.
    protocol_name:
        Label recorded on the returned allocation.

    Raises
    ------
    InfeasibleScheduleError
        If the LP solver fails (should not happen: w = 0 is always
        feasible).
    """
    if lifespan <= 0 or not np.isfinite(lifespan):
        raise ProtocolError(f"lifespan must be positive and finite, got {lifespan!r}")
    n = profile.n
    sigma = validate_order(startup_order, n, name="startup_order")
    phi = validate_order(finishing_order, n, name="finishing_order")
    rho = profile.rho
    A_send = params.pi + params.tau          # per-unit send cost (π+τ)
    td = params.tau_delta
    B = params.B

    spos = np.empty(n, dtype=int)
    fpos = np.empty(n, dtype=int)
    spos[np.asarray(sigma)] = np.arange(n)
    fpos[np.asarray(phi)] = np.arange(n)

    rows = []
    for c in range(n):
        row = np.zeros(n)
        row[spos <= spos[c]] += A_send       # all sends up to and incl. c's
        row[c] += B * rho[c]                 # c's own busy period
        row[fpos >= fpos[c]] += td           # c's result and all later ones
        rows.append(row)
    if enforce_separation and td > 0.0:
        rows.append(np.full(n, A_send + td))
    A_ub = np.vstack(rows)
    b_ub = np.full(A_ub.shape[0], float(lifespan))

    result = linprog(c=-np.ones(n), A_ub=A_ub, b_ub=b_ub,
                     bounds=[(0.0, None)] * n, method="highs")
    if not result.success:  # pragma: no cover - w = 0 is always feasible
        raise InfeasibleScheduleError(
            f"LP solver failed for ({protocol_name}) protocol: {result.message}")
    w = np.clip(result.x, 0.0, None)
    return WorkAllocation(profile=profile, params=params, lifespan=lifespan,
                          w=w, startup_order=sigma, finishing_order=phi,
                          protocol_name=protocol_name)


class GeneralProtocol(Protocol):
    """An arbitrary worksharing protocol: any startup order, any finishing order.

    Parameters
    ----------
    startup_order, finishing_order:
        Fixed Σ and Φ (permutations of computer indices, sized to the
        clusters this protocol will schedule).
    enforce_separation:
        See :func:`lp_allocation`.
    """

    name = "general-LP"

    def __init__(self, startup_order: Sequence[int],
                 finishing_order: Sequence[int],
                 *, enforce_separation: bool = True) -> None:
        self._sigma = tuple(int(i) for i in startup_order)
        self._phi = tuple(int(i) for i in finishing_order)
        self._enforce_separation = enforce_separation

    def allocate(self, profile: Profile, params: ModelParams,
                 lifespan: float) -> WorkAllocation:
        label = "FIFO-LP" if self._sigma == self._phi else "general-LP"
        return lp_allocation(profile, params, lifespan, self._sigma, self._phi,
                             enforce_separation=self._enforce_separation,
                             protocol_name=label)
