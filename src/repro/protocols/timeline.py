"""Explicit schedule timelines (the action/time diagrams of Figs. 1–2).

A :class:`WorkAllocation` says *how much* work each computer gets; this
module reconstructs *when* everything happens, as busy intervals on each
resource:

* ``server`` — C₀ packaging outbound work, ``π·w`` per computer, seriatim;
* ``network`` — the single shared channel: a ``τ·w`` transit for each work
  message and a ``τδ·w`` transit for each result message (at most one
  message in transit at a time is the model's invariant);
* ``worker:<c>`` — computer c's busy period ``B·ρ_c·w`` (unpackage,
  compute, package results — the balanced-architecture bundle).

Timing rules (the gap-free protocol of paper §2.2):

1. The server prepares and sends packages in startup order with no
   intervening gaps; package k occupies the server during
   ``[P_k, P_k + π w]`` and the network during ``[P_k + π w, P_k + (π+τ) w]``
   with ``P_{k+1} = P_k + (π+τ) w_k``.
2. A worker starts its busy period the moment its package arrives.
3. Result messages occupy the network in finishing order, each no earlier
   than its worker finished packaging, each no earlier than the previous
   result completed, and (matching the optimal layout of [1]) as *late*
   as possible so that the last result completes exactly at L.

The resulting timeline is what the feasibility checker inspects and what
the discrete-event simulator independently re-derives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import InfeasibleScheduleError
from repro.protocols.base import WorkAllocation

__all__ = ["Interval", "Timeline", "build_timeline"]

_EPS_KINDS = ("work-prep", "work-transit", "busy", "result-transit")


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open busy interval ``[start, end)`` on a named resource.

    Attributes
    ----------
    resource:
        ``"server"``, ``"network"`` or ``"worker:<c>"``.
    kind:
        One of ``work-prep``, ``work-transit``, ``busy``, ``result-transit``.
    computer:
        Profile index of the computer the interval concerns.
    """

    resource: str
    kind: str
    computer: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two half-open intervals intersect in time."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Timeline:
    """All busy intervals of a scheduled protocol, plus derived views."""

    allocation: WorkAllocation
    intervals: tuple[Interval, ...]

    def on_resource(self, resource: str) -> list[Interval]:
        """All intervals on one resource, sorted by start time."""
        return sorted((iv for iv in self.intervals if iv.resource == resource),
                      key=lambda iv: (iv.start, iv.end))

    def for_computer(self, computer: int) -> list[Interval]:
        """All intervals involving one computer, sorted by start time."""
        return sorted((iv for iv in self.intervals if iv.computer == computer),
                      key=lambda iv: (iv.start, iv.end))

    @property
    def resources(self) -> list[str]:
        """Sorted list of distinct resource names."""
        return sorted({iv.resource for iv in self.intervals})

    @property
    def makespan(self) -> float:
        """Completion time of the last interval."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def utilization(self, resource: str) -> float:
        """Fraction of the lifespan the resource spends busy."""
        busy = sum(iv.duration for iv in self.on_resource(resource))
        return busy / self.allocation.lifespan

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)


def build_timeline(allocation: WorkAllocation, *,
                   results_as_late_as_possible: bool = True) -> Timeline:
    """Reconstruct the explicit schedule of a work allocation.

    Parameters
    ----------
    allocation:
        The allocation to expand.
    results_as_late_as_possible:
        If True (the paper's optimal layout), result slots are placed
        contiguously so the final result completes exactly at ``L``;
        workers that finish early wait.  If False, results are placed
        *greedily* (each as soon as both its worker and the channel in
        finishing order allow) — the layout a work-conserving executor
        would produce; same work, earlier completion.

    Returns
    -------
    Timeline

    Raises
    ------
    InfeasibleScheduleError
        If, with late placement, some worker could not finish packaging
        before its result slot starts — i.e. the allocation over-commits
        the lifespan.
    """
    alloc = allocation
    params = alloc.params
    rho = alloc.profile.rho
    pi, tau, delta, B = params.pi, params.tau, params.delta, params.B
    td = params.tau_delta
    w = alloc.w

    intervals: list[Interval] = []

    # --- sends: seriatim in startup order --------------------------------
    finish_pack: dict[int, float] = {}   # computer -> time its results are ready
    t = 0.0
    for c in alloc.startup_order:
        wc = float(w[c])
        if wc == 0.0:
            finish_pack[c] = 0.0
            continue
        prep_end = t + pi * wc
        arrive = prep_end + tau * wc
        intervals.append(Interval("server", "work-prep", c, t, prep_end))
        intervals.append(Interval("network", "work-transit", c, prep_end, arrive))
        busy_end = arrive + B * rho[c] * wc
        intervals.append(Interval(f"worker:{c}", "busy", c, arrive, busy_end))
        finish_pack[c] = busy_end
        t = arrive  # next prep starts immediately: spacing (π+τ)·w

    # --- result transits in finishing order ------------------------------
    active = [c for c in alloc.finishing_order if w[c] > 0.0]
    durations = [td * float(w[c]) for c in active]
    if delta == 0.0 or not active:
        starts = [finish_pack[c] for c in active]  # zero-length markers
    elif results_as_late_as_possible:
        # Contiguous block ending at L: slot k starts at
        # L − Σ_{j≥k} τδ·w_j.  Verify every worker makes its slot.
        suffix = np.cumsum(durations[::-1])[::-1]
        starts = [alloc.lifespan - s for s in suffix]
        for c, s in zip(active, starts):
            if finish_pack[c] > s + 1e-9 * max(1.0, alloc.lifespan):
                raise InfeasibleScheduleError(
                    f"computer {c} finishes packaging at {finish_pack[c]:.6g} "
                    f"but its result slot starts at {s:.6g}; the allocation "
                    f"over-commits lifespan L={alloc.lifespan:g}")
    else:
        starts = []
        channel_free = 0.0
        for c, d in zip(active, durations):
            s = max(finish_pack[c], channel_free)
            starts.append(s)
            channel_free = s + d

    if delta > 0.0:
        for c, s, d in zip(active, starts, durations):
            intervals.append(Interval("network", "result-transit", c, s, s + d))

    return Timeline(allocation=alloc, intervals=tuple(intervals))
