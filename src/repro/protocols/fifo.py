"""FIFO worksharing protocols — the optimal CEP solutions (paper §2.3).

A FIFO protocol has coincident startup and finishing orders (Σ = Φ):
computers return results in the order they received work.  Theorem 1
(from Adler–Gong–Rosenberg [1]) states that over sufficiently long
lifespans FIFO protocols solve the CEP *optimally*, and — remarkably —
that the cluster is *equally productive under every startup order*.

Closed-form allocation
----------------------
Writing computers in startup order with rates ρ₍₁₎, …, ρ₍ₙ₎ and using the
gap-free structure of Fig. 2 (seriatim sends costing ``(π + τ)w`` each;
computer k busy ``Bρ₍ₖ₎·w`` — unpackage, compute, package; result transit
``τδ·w``), the requirements "result messages are contiguous" and "all
work ends at L" force the recurrence

.. math::

    w_{k+1}·(Bρ_{(k+1)} + A) = w_k·(Bρ_{(k)} + τδ),

whence ``w_k = w_1·Π_{j<k} (Bρ_{(j)} + τδ)/(Bρ_{(j+1)} + A)`` and, after
summing the geometric-like series,

.. math::

    W = Σ_k w_k = w_1 (Bρ_{(1)} + A)·X(P),\\qquad
    L = (Bρ_{(1)} + A)w_1 + τδ·W,

which recovers Theorem 2's ``W(L;P) = L/(τδ + 1/X(P))`` exactly.  This
module computes the ``w_k`` directly from that derivation, so the
allocation's total matches the analytic work production to rounding
error — one of the integration tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ProtocolError
from repro.protocols.base import Protocol, WorkAllocation, validate_order

__all__ = ["FifoProtocol", "fifo_allocation", "fifo_work_fractions",
           "fifo_saturation_index"]


def fifo_saturation_index(profile: Profile, params: ModelParams) -> float:
    """The structural-feasibility index ``A·X(P)`` of the Fig.-2 layout.

    The gap-free FIFO schedule requires the outgoing send block (duration
    ``A·W``) to clear the channel before the first result slot opens (at
    ``(Bρ_{(1)} + A)·w₁ = W/X``), which is independent of the startup
    order and equivalent to ``A·X(P) ≤ 1``.

    * index ≤ 1 — the layout exists and Theorem 2's ``W(L;P)`` is
      achieved exactly (the simulator confirms this in tests);
    * index > 1 — the environment is communication-dominated and the
      asymptotic formula over-promises: in fact whenever
      ``(τ + τδ)·W > L`` the channel physically cannot carry both
      blocks.  The paper's regimes (Table 1: A ≈ 10⁻⁵) sit far below
      the boundary; this index makes the boundary checkable instead of
      implicit.
    """
    return params.A * x_measure(profile, params)


def fifo_work_fractions(profile: Profile, params: ModelParams,
                        startup_order: Sequence[int] | None = None) -> np.ndarray:
    """Per-computer share of the total work under FIFO, profile-indexed.

    Independent of the lifespan ``L`` (the fluid schedule is
    scale-invariant).  The shares depend on the startup order — slower
    computers started earlier absorb more work — even though their *sum*
    (i.e. the cluster's production) does not.

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile.
    params:
        Architectural model parameters.
    startup_order:
        Σ as computer indices; defaults to profile order (0, 1, …, n−1).

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)``, aligned with profile indices, summing to 1.
    """
    n = profile.n
    order = validate_order(startup_order if startup_order is not None else range(n), n,
                           name="startup_order")
    rho = profile.rho[np.asarray(order)]
    A, B, td = params.A, params.B, params.tau_delta
    # w_{k+1}/w_k = (Bρ_k + τδ)/(Bρ_{k+1} + A):
    # numerators are shifted relative to denominators by one position.
    ratios = np.ones(n)
    if n > 1:
        ratios[1:] = (B * rho[:-1] + td) / (B * rho[1:] + A)
    w_rel = np.cumprod(ratios)           # w_k / w_1
    fractions_in_order = w_rel / w_rel.sum()
    out = np.empty(n)
    out[np.asarray(order)] = fractions_in_order
    return out


def fifo_allocation(profile: Profile, params: ModelParams, lifespan: float,
                    startup_order: Sequence[int] | None = None) -> WorkAllocation:
    """Exact FIFO work allocation over a lifespan ``L``.

    The total work equals Theorem 2's ``W(L;P) = L/(τδ + 1/X(P))`` and
    each quantum follows the closed-form recurrence above.

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile.
    params:
        Architectural model parameters.
    lifespan:
        The CEP lifespan ``L > 0``.
    startup_order:
        Σ (and, FIFO being FIFO, also Φ); defaults to profile order.
    """
    if lifespan <= 0 or not np.isfinite(lifespan):
        raise ProtocolError(f"lifespan must be positive and finite, got {lifespan!r}")
    n = profile.n
    order = validate_order(startup_order if startup_order is not None else range(n), n,
                           name="startup_order")
    total = lifespan / (params.tau_delta + 1.0 / x_measure(profile, params))
    w = total * fifo_work_fractions(profile, params, order)
    return WorkAllocation(
        profile=profile,
        params=params,
        lifespan=lifespan,
        w=w,
        startup_order=order,
        finishing_order=order,
        protocol_name="FIFO",
    )


class FifoProtocol(Protocol):
    """The FIFO protocol family (Σ = Φ), optionally with a fixed startup order.

    Parameters
    ----------
    startup_order:
        Optional fixed Σ.  When omitted, each :meth:`allocate` call uses
        the profile's natural order — by Theorem 1(2) the choice does not
        change production, which the test suite verifies by comparing
        random orders.
    """

    name = "FIFO"

    def __init__(self, startup_order: Sequence[int] | None = None) -> None:
        self._startup_order = tuple(startup_order) if startup_order is not None else None

    def allocate(self, profile: Profile, params: ModelParams,
                 lifespan: float) -> WorkAllocation:
        return fifo_allocation(profile, params, lifespan, self._startup_order)
