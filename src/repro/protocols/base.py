"""Protocol abstractions for the Cluster-Exploitation Problem (paper §2.2).

A *worksharing protocol* is a schedule by which the server C₀ shares work
with the cluster: it fixes a *startup order* Σ (the order in which
computers receive work) and a *finishing order* Φ (the order in which they
return results), and allocates each computer a work quantum ``wᵢ`` so that
sends are seriatim (no gaps), result messages are non-overlapping, and all
activity completes by the lifespan ``L``.

This module defines the :class:`Protocol` interface and the
:class:`WorkAllocation` value object that concrete protocols
(:class:`repro.protocols.fifo.FifoProtocol`,
:class:`repro.protocols.lifo.LifoProtocol`,
:class:`repro.protocols.general.GeneralProtocol`) produce.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ProtocolError

__all__ = ["WorkAllocation", "Protocol", "validate_order"]


def validate_order(order: Sequence[int], n: int, *, name: str = "order") -> tuple[int, ...]:
    """Validate that ``order`` is a permutation of ``range(n)``.

    Returns the order as a tuple of plain ints.
    """
    try:
        tup = tuple(int(i) for i in order)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"{name} must be a sequence of integers: {exc}") from exc
    if sorted(tup) != list(range(n)):
        raise ProtocolError(
            f"{name} must be a permutation of range({n}), got {tup!r}")
    return tup


@dataclass(frozen=True)
class WorkAllocation:
    """The outcome of scheduling a worksharing protocol.

    Attributes
    ----------
    profile:
        The cluster's heterogeneity profile; index ``c`` refers to the
        profile's c-th computer throughout.
    params:
        Architectural model parameters used to schedule.
    lifespan:
        The CEP lifespan ``L``.
    w:
        Work quanta, aligned with profile indices: ``w[c]`` work units go
        to computer ``c``.  Entries may be zero (a computer that receives
        no work under this protocol).
    startup_order:
        Σ as a tuple of computer indices: ``startup_order[k]`` receives
        work k-th.
    finishing_order:
        Φ as a tuple of computer indices: ``finishing_order[k]`` returns
        its results k-th.
    protocol_name:
        Human-readable name of the producing protocol.

    Notes
    -----
    ``WorkAllocation`` is a pure description; converting it to explicit
    per-resource busy intervals is the job of
    :func:`repro.protocols.timeline.build_timeline`, and executing it at
    event granularity is the job of :mod:`repro.simulation`.
    """

    profile: Profile
    params: ModelParams
    lifespan: float
    w: np.ndarray
    startup_order: tuple[int, ...]
    finishing_order: tuple[int, ...]
    protocol_name: str = field(default="custom")

    def __post_init__(self) -> None:
        n = self.profile.n
        w = np.asarray(self.w, dtype=float)
        if w.shape != (n,):
            raise ProtocolError(
                f"w must have shape ({n},) matching the profile, got {w.shape}")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ProtocolError("work quanta must be nonnegative and finite")
        w = w.copy()
        w.setflags(write=False)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "startup_order",
                           validate_order(self.startup_order, n, name="startup_order"))
        object.__setattr__(self, "finishing_order",
                           validate_order(self.finishing_order, n, name="finishing_order"))
        if self.lifespan <= 0 or not np.isfinite(self.lifespan):
            raise ProtocolError(f"lifespan must be positive and finite, got {self.lifespan!r}")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of computers in the cluster."""
        return self.profile.n

    @property
    def total_work(self) -> float:
        """Total work units completed: ``Σᵢ wᵢ``."""
        return float(self.w.sum())

    @property
    def work_fractions(self) -> np.ndarray:
        """Each computer's share of the total work (sums to 1)."""
        total = self.total_work
        if total == 0.0:
            return np.zeros_like(self.w)
        return self.w / total

    @property
    def is_fifo(self) -> bool:
        """Whether startup and finishing orders coincide (Σ = Φ)."""
        return self.startup_order == self.finishing_order

    def w_in_startup_order(self) -> np.ndarray:
        """Work quanta reordered so entry k belongs to the k-th started computer."""
        return self.w[np.asarray(self.startup_order)]

    def w_in_finishing_order(self) -> np.ndarray:
        """Work quanta reordered so entry k belongs to the k-th finishing computer."""
        return self.w[np.asarray(self.finishing_order)]

    def summary(self) -> str:
        """One-line human-readable description."""
        return (f"{self.protocol_name}: n={self.n}, L={self.lifespan:g}, "
                f"W={self.total_work:.6g}")


class Protocol(abc.ABC):
    """A worksharing-protocol family that can schedule any cluster.

    Concrete protocols implement :meth:`allocate`, which may raise
    :class:`repro.errors.InfeasibleScheduleError` when no schedule of the
    family's shape exists for the given inputs.
    """

    #: Human-readable protocol-family name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def allocate(self, profile: Profile, params: ModelParams,
                 lifespan: float) -> WorkAllocation:
        """Schedule the protocol on ``profile`` over ``lifespan`` time units.

        Returns the work allocation that maximises total work subject to
        the family's ordering constraints.
        """

    def work_production(self, profile: Profile, params: ModelParams,
                        lifespan: float) -> float:
        """Convenience: total work of :meth:`allocate`'s result."""
        return self.allocate(profile, params, lifespan).total_work

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
