"""Protocol-conformance checking for downstream implementers.

Anyone adding a new :class:`~repro.protocols.base.Protocol` subclass
(a different ordering family, an approximation, a heuristic) can point
:func:`check_protocol_conformance` at it and get the model's contract
checked mechanically:

1. `allocate` returns a well-formed :class:`WorkAllocation` for the
   requested cluster/lifespan;
2. the schedule is *feasible* (timeline invariants hold) whenever the
   environment is below the FIFO saturation boundary;
3. the schedule never *out-produces* FIFO (Theorem 1's optimality —
   a protocol claiming more work than the optimum is miscounting);
4. production scales linearly with the lifespan (fluid-model
   consistency);
5. allocation is deterministic (two calls agree).

Violations are returned, not raised, so test suites can assert on the
full list.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.protocols.base import Protocol, WorkAllocation
from repro.protocols.feasibility import check_allocation
from repro.protocols.fifo import fifo_allocation, fifo_saturation_index

__all__ = ["check_protocol_conformance"]


def check_protocol_conformance(protocol: Protocol, profile: Profile,
                               params: ModelParams, lifespan: float = 50.0,
                               *, rtol: float = 1e-9) -> list[str]:
    """Run the protocol contract checks; return human-readable violations."""
    violations: list[str] = []

    try:
        allocation = protocol.allocate(profile, params, lifespan)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the harness
        return [f"allocate raised {type(exc).__name__}: {exc}"]

    # 1. Well-formedness.
    if not isinstance(allocation, WorkAllocation):
        return [f"allocate returned {type(allocation).__name__}, "
                f"not WorkAllocation"]
    if allocation.profile is not profile and allocation.profile != profile:
        violations.append("allocation.profile does not match the request")
    if allocation.lifespan != lifespan:
        violations.append(
            f"allocation.lifespan {allocation.lifespan!r} != requested {lifespan!r}")

    below_saturation = fifo_saturation_index(profile, params) <= 1.0

    # 2. Feasibility (only meaningful below the structural boundary).
    if below_saturation:
        report = check_allocation(allocation)
        if not report.feasible:
            violations.append("infeasible schedule: " + "; ".join(
                str(v) for v in report.violations[:3]))

    # 3. Theorem-1 bound.
    fifo_total = fifo_allocation(profile, params, lifespan).total_work
    if allocation.total_work > fifo_total * (1.0 + rtol):
        violations.append(
            f"claims more work than the FIFO optimum "
            f"({allocation.total_work!r} > {fifo_total!r})")

    # 4. Fluid scaling.
    doubled = protocol.allocate(profile, params, 2.0 * lifespan)
    if not np.isclose(doubled.total_work, 2.0 * allocation.total_work,
                      rtol=1e-6):
        violations.append(
            f"production not linear in lifespan "
            f"({doubled.total_work!r} vs 2×{allocation.total_work!r})")

    # 5. Determinism.
    again = protocol.allocate(profile, params, lifespan)
    if not np.allclose(again.w, allocation.w, rtol=1e-12, atol=0.0):
        violations.append("allocate is not deterministic")

    return violations
