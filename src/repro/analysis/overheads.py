"""Fixed-overhead corrections: making "sufficiently long L" concrete.

The model deliberately ignores per-message fixed costs — end-to-end
latency of the first packet and per-message set-up — "because their
impacts fade over long lifespans L" (§2.1).  This module restores them
to first order so users can *size* the fade-out instead of trusting it:

* each of the 2n messages of a CEP round (n work packages out, n result
  packages back) pays a fixed latency ``λ``;
* the fluid schedule then has only ``L − 2nλ`` useful time, so

  .. math::

      W_λ(L; P) = \\max(0, L − 2nλ) / (τδ + 1/X(P)).

From this, the **efficiency** ``W_λ/W`` is ``1 − 2nλ/L`` and the minimal
lifespan achieving a target efficiency is ``2nλ/(1 − target)`` — the
quantitative content of Theorem 1's "over any sufficiently long
lifespan".
"""

from __future__ import annotations


from repro.core.measure import work_rate
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = [
    "latency_adjusted_work",
    "lifespan_efficiency",
    "min_lifespan_for_efficiency",
]


def _check_latency(latency: float) -> None:
    if latency < 0 or latency != latency:
        raise InvalidParameterError(f"latency must be nonnegative, got {latency!r}")


def latency_adjusted_work(profile: Profile, params: ModelParams,
                          lifespan: float, latency: float) -> float:
    """First-order work production with per-message fixed latency λ.

    Zero when the round's 2n fixed costs already exceed the lifespan —
    a cluster can be *too large* for a short engagement, a phenomenon
    the pure fluid model cannot express.
    """
    _check_latency(latency)
    if lifespan <= 0:
        raise InvalidParameterError(f"lifespan must be positive, got {lifespan!r}")
    useful = lifespan - 2.0 * profile.n * latency
    if useful <= 0.0:
        return 0.0
    return useful * work_rate(profile, params)


def lifespan_efficiency(profile: Profile, lifespan: float, latency: float) -> float:
    """``W_λ/W = max(0, 1 − 2nλ/L)`` — the fluid model's accuracy at this L."""
    _check_latency(latency)
    if lifespan <= 0:
        raise InvalidParameterError(f"lifespan must be positive, got {lifespan!r}")
    return max(0.0, 1.0 - 2.0 * profile.n * latency / lifespan)


def min_lifespan_for_efficiency(profile: Profile, latency: float,
                                target: float = 0.99) -> float:
    """The smallest L at which the fluid model is ``target``-accurate.

    ``L_min = 2nλ/(1 − target)``.  For the paper's Table-1 setting with,
    say, λ = 1 ms and n = 32, 99% accuracy needs L ≥ 6.4 s — concrete
    footing for "sufficiently long".
    """
    _check_latency(latency)
    if not (0.0 < target < 1.0):
        raise InvalidParameterError(f"target efficiency must lie in (0, 1), got {target!r}")
    return 2.0 * profile.n * latency / (1.0 - target)
