"""Statistical robustness: expected work under random worker failures.

The failure-resilience experiment crashes chosen workers at chosen
times; operators think in *rates*.  This module Monte-Carlo-estimates a
schedule's expected completed work when each worker independently fails
at an exponential rate, under either result-sequencing policy, and
summarises the distribution (mean, standard error, quantiles).

The strict-FIFO tail risk is vivid here: because one early crash can
forfeit the whole round, the strict policy's *distribution* is bimodal
long before its *mean* looks alarming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError
from repro.protocols.base import WorkAllocation
from repro.simulation.runner import simulate_allocation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.recovery import RecoveryPolicy

__all__ = ["RobustnessEstimate", "expected_work_under_failures",
           "completed_work_for_failure_times"]


@dataclass(frozen=True)
class RobustnessEstimate:
    """Monte-Carlo summary of completed work under random failures.

    Attributes
    ----------
    samples:
        The raw per-trial completed-work values.
    failure_rate:
        The per-worker exponential failure rate used.
    """

    samples: np.ndarray
    failure_rate: float
    skip_failed_results: bool

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std_error(self) -> float:
        if self.samples.size < 2:
            return float("nan")
        return float(self.samples.std(ddof=1) / np.sqrt(self.samples.size))

    def quantile(self, q: float) -> float:
        """Distribution quantile of completed work (q in [0, 1])."""
        if not (0.0 <= q <= 1.0):
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {q!r}")
        return float(np.quantile(self.samples, q))

    @property
    def fraction_total_loss(self) -> float:
        """Share of trials completing (essentially) nothing."""
        return float(np.mean(self.samples <= 1e-12))


def completed_work_for_failure_times(allocation: WorkAllocation,
                                     failure_times: np.ndarray,
                                     *, skip_failed_results: bool = False,
                                     recovery: "RecoveryPolicy | None" = None
                                     ) -> np.ndarray:
    """Completed work for each row of a ``(trials, n)`` failure-time array.

    A worker whose failure time is at or beyond the lifespan never
    fails (so ``np.inf`` means "healthy").  Separating the draw from
    the evaluation lets callers reuse *one* set of base exponential
    draws across a whole rate sweep (scale-coupled sampling) or across
    shards of a batch run — which is what keeps sharded Monte-Carlo
    sweeps bit-identical to their sequential counterparts.

    With ``recovery`` given, each trial runs the full multi-round
    rescheduler (:func:`repro.faults.recovery.simulate_with_recovery`)
    instead of the single-round simulator, and the sample counts work
    completed across all rounds.
    """
    failure_times = np.asarray(failure_times, dtype=float)
    if failure_times.ndim != 2 or failure_times.shape[1] != allocation.n:
        raise InvalidParameterError(
            f"failure_times must have shape (trials, {allocation.n}), "
            f"got {failure_times.shape}")
    L = allocation.lifespan
    samples = np.empty(failure_times.shape[0])
    for k, times in enumerate(failure_times):
        failures = {c: float(t) for c, t in enumerate(times) if t < L}
        if recovery is not None:
            from repro.faults.models import PermanentCrash
            from repro.faults.recovery import simulate_with_recovery
            from repro.faults.spec import FaultScenario
            scenario = FaultScenario(faults=tuple(
                PermanentCrash(c, t) for c, t in failures.items()))
            outcome = simulate_with_recovery(allocation, scenario)
            samples[k] = outcome.completed_work
        else:
            result = simulate_allocation(
                allocation, failures=failures,
                skip_failed_results=skip_failed_results)
            samples[k] = result.completed_work
    return samples


def expected_work_under_failures(allocation: WorkAllocation,
                                 failure_rate: float,
                                 rng: np.random.Generator,
                                 n_samples: int = 200,
                                 *, skip_failed_results: bool = False,
                                 recovery: "RecoveryPolicy | None" = None
                                 ) -> RobustnessEstimate:
    """Estimate E[completed work] with i.i.d. exponential worker failures.

    Parameters
    ----------
    allocation:
        The schedule to stress.
    failure_rate:
        Each worker's failure intensity (events per time unit); a worker
        whose sampled failure time exceeds the lifespan never fails.
        Zero is allowed (degenerates to the failure-free run).
    rng:
        Randomness source (pass a seeded Generator for reproducibility).
    n_samples:
        Monte-Carlo trials.
    skip_failed_results:
        Result-sequencer recovery policy (see
        :func:`repro.simulation.runner.simulate_allocation`).
    recovery:
        When given, each trial runs the multi-round rescheduler under
        this policy and the estimate counts work recovered in later
        rounds too.
    """
    if failure_rate < 0:
        raise InvalidParameterError(
            f"failure_rate must be nonnegative, got {failure_rate!r}")
    if n_samples < 1:
        raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
    n = allocation.n
    if failure_rate > 0.0:
        times = rng.exponential(1.0 / failure_rate, size=(n_samples, n))
    else:
        times = np.full((n_samples, n), np.inf)
    samples = completed_work_for_failure_times(
        allocation, times, skip_failed_results=skip_failed_results,
        recovery=recovery)
    return RobustnessEstimate(samples=samples, failure_rate=failure_rate,
                              skip_failed_results=skip_failed_results)
