"""Statistical robustness: expected work under random worker failures.

The failure-resilience experiment crashes chosen workers at chosen
times; operators think in *rates*.  This module Monte-Carlo-estimates a
schedule's expected completed work when each worker independently fails
at an exponential rate, under either result-sequencing policy, and
summarises the distribution (mean, standard error, quantiles).

The strict-FIFO tail risk is vivid here: because one early crash can
forfeit the whole round, the strict policy's *distribution* is bimodal
long before its *mean* looks alarming.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.protocols.base import WorkAllocation
from repro.simulation.runner import simulate_allocation

__all__ = ["RobustnessEstimate", "expected_work_under_failures"]


@dataclass(frozen=True)
class RobustnessEstimate:
    """Monte-Carlo summary of completed work under random failures.

    Attributes
    ----------
    samples:
        The raw per-trial completed-work values.
    failure_rate:
        The per-worker exponential failure rate used.
    """

    samples: np.ndarray
    failure_rate: float
    skip_failed_results: bool

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std_error(self) -> float:
        if self.samples.size < 2:
            return float("nan")
        return float(self.samples.std(ddof=1) / np.sqrt(self.samples.size))

    def quantile(self, q: float) -> float:
        """Distribution quantile of completed work (q in [0, 1])."""
        if not (0.0 <= q <= 1.0):
            raise InvalidParameterError(f"quantile must lie in [0, 1], got {q!r}")
        return float(np.quantile(self.samples, q))

    @property
    def fraction_total_loss(self) -> float:
        """Share of trials completing (essentially) nothing."""
        return float(np.mean(self.samples <= 1e-12))


def expected_work_under_failures(allocation: WorkAllocation,
                                 failure_rate: float,
                                 rng: np.random.Generator,
                                 n_samples: int = 200,
                                 *, skip_failed_results: bool = False
                                 ) -> RobustnessEstimate:
    """Estimate E[completed work] with i.i.d. exponential worker failures.

    Parameters
    ----------
    allocation:
        The schedule to stress.
    failure_rate:
        Each worker's failure intensity (events per time unit); a worker
        whose sampled failure time exceeds the lifespan never fails.
        Zero is allowed (degenerates to the failure-free run).
    rng:
        Randomness source (pass a seeded Generator for reproducibility).
    n_samples:
        Monte-Carlo trials.
    skip_failed_results:
        Result-sequencer recovery policy (see
        :func:`repro.simulation.runner.simulate_allocation`).
    """
    if failure_rate < 0:
        raise InvalidParameterError(
            f"failure_rate must be nonnegative, got {failure_rate!r}")
    if n_samples < 1:
        raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
    n = allocation.n
    L = allocation.lifespan
    samples = np.empty(n_samples)
    for k in range(n_samples):
        failures: dict[int, float] = {}
        if failure_rate > 0.0:
            times = rng.exponential(1.0 / failure_rate, size=n)
            failures = {c: float(t) for c, t in enumerate(times) if t < L}
        result = simulate_allocation(allocation, failures=failures,
                                     skip_failed_results=skip_failed_results)
        samples[k] = result.completed_work
    return RobustnessEstimate(samples=samples, failure_rate=failure_rate,
                              skip_failed_results=skip_failed_results)
