"""Analysis extensions built on the paper's framework.

Closed-form consequences of eq. (1) the paper implies but never ships:

* :mod:`~repro.analysis.marginal` — ∂X/∂ρᵢ gradients and per-computer
  contributions (Theorem 3 in differential form; "which machine can we
  least afford to lose?");
* :mod:`~repro.analysis.sensitivity` — (τ, π, δ) sweeps and ranking
  crossover finding;
* :mod:`~repro.analysis.asymptotics` — the 1/(A−τδ) saturation ceiling
  and diminishing-returns curves;
* :mod:`~repro.analysis.phase` — Corollary-1 heterogeneity-gain maps.
"""

from repro.analysis.asymptotics import (
    cluster_size_for_coverage,
    homogeneous_returns_curve,
    marginal_computer_value,
    saturation_fraction,
    saturation_x,
)
from repro.analysis.marginal import (
    computer_contributions,
    marginal_speedup_value,
    most_critical_computer,
    x_gradient,
)
from repro.analysis.overheads import (
    latency_adjusted_work,
    lifespan_efficiency,
    min_lifespan_for_efficiency,
)
from repro.analysis.robustness import (
    RobustnessEstimate,
    expected_work_under_failures,
)
from repro.analysis.selection import RosterChoice, best_roster
from repro.analysis.phase import (
    HeterogeneityGainGrid,
    equal_mean_gain,
    heterogeneity_gain_grid,
)
from repro.analysis.sensitivity import (
    SweepResult,
    find_tau_crossover,
    sweep_delta,
    sweep_pi,
    sweep_tau,
)

__all__ = [
    "x_gradient",
    "marginal_speedup_value",
    "computer_contributions",
    "most_critical_computer",
    "SweepResult",
    "sweep_tau",
    "sweep_pi",
    "sweep_delta",
    "find_tau_crossover",
    "saturation_x",
    "saturation_fraction",
    "homogeneous_returns_curve",
    "cluster_size_for_coverage",
    "marginal_computer_value",
    "HeterogeneityGainGrid",
    "heterogeneity_gain_grid",
    "equal_mean_gain",
    "latency_adjusted_work",
    "lifespan_efficiency",
    "min_lifespan_for_efficiency",
    "RosterChoice",
    "best_roster",
    "RobustnessEstimate",
    "expected_work_under_failures",
]
