"""Asymptotics: saturation and diminishing returns.

Eq. (1) bounds every cluster's X-measure by the environment constant

.. math::

    X(P) < X_∞ = \\frac{1}{A − τδ},

approached as computers are added: once the send pipeline (A per unit)
outpaces result return (τδ per unit), extra machines only absorb work
the channel can no longer feed.  This module quantifies that ceiling:

* :func:`saturation_x` — the ceiling itself;
* :func:`saturation_fraction` — how much of it a cluster already uses;
* :func:`homogeneous_returns_curve` — the n ↦ X diminishing-returns
  curve for commodity clusters;
* :func:`cluster_size_for_coverage` — the commodity-cluster size that
  reaches a given fraction of the ceiling (the "knee" of the curve);
* :func:`marginal_computer_value` — X gained by the (n+1)-st machine.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from repro.core.homogeneous import homogeneous_size_for_x, homogeneous_x
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = [
    "saturation_x",
    "saturation_fraction",
    "homogeneous_returns_curve",
    "cluster_size_for_coverage",
    "marginal_computer_value",
]


def saturation_x(params: ModelParams) -> float:
    """The ceiling ``X_∞ = 1/(A − τδ)``; ``inf`` in the A = τδ limit."""
    gap = params.A_minus_tau_delta
    if gap == 0.0:
        return math.inf
    return 1.0 / gap


def saturation_fraction(profile: Union[Profile, Sequence[float]],
                        params: ModelParams) -> float:
    """``X(P)/X_∞`` ∈ (0, 1): the share of the ceiling already consumed.

    Near 1, adding computers is futile and (by the Fig.-2 structural
    condition ``A·X ≤ 1``) the clean send-then-receive layout is close
    to breaking.
    """
    ceiling = saturation_x(params)
    if math.isinf(ceiling):
        return 0.0
    return x_measure(profile, params) / ceiling


def homogeneous_returns_curve(rho: float, params: ModelParams,
                              sizes: Sequence[int]) -> np.ndarray:
    """``X(P^(ρ))`` for each cluster size — the diminishing-returns curve."""
    out = np.empty(len(sizes))
    for k, n in enumerate(sizes):
        out[k] = homogeneous_x(int(n), rho, params)
    return out


def cluster_size_for_coverage(rho: float, params: ModelParams,
                              coverage: float = 0.95) -> float:
    """Commodity machines of rate ρ needed to reach ``coverage·X_∞``.

    Returns a real-valued size (ceil it for a purchase order).

    Raises
    ------
    InvalidParameterError
        If coverage is not in (0, 1), or the environment has no finite
        ceiling (A = τδ: X grows without bound, every coverage of
        infinity is meaningless).
    """
    if not (0.0 < coverage < 1.0):
        raise InvalidParameterError(f"coverage must lie in (0, 1), got {coverage!r}")
    ceiling = saturation_x(params)
    if math.isinf(ceiling):
        raise InvalidParameterError(
            "environment has no saturation ceiling (A = τδ)")
    return homogeneous_size_for_x(rho, coverage * ceiling, params)


def marginal_computer_value(profile: Union[Profile, Sequence[float]],
                            params: ModelParams, new_rho: float) -> float:
    """X gained by appending one machine of rate ``new_rho``.

    Closed form via the last-slot isolation:
    ``ΔX = Π_j (Bρⱼ+τδ)/(Bρⱼ+A) · 1/(B·new_rho + A)`` — the existing
    cluster's transfer product discounts the newcomer.
    """
    if new_rho <= 0 or not math.isfinite(new_rho):
        raise InvalidParameterError(f"new_rho must be positive and finite, got {new_rho!r}")
    rho = profile.rho if isinstance(profile, Profile) else np.asarray(profile, dtype=float)
    A, B, td = params.A, params.B, params.tau_delta
    transfer = float(np.prod((B * rho + td) / (B * rho + A)))
    return transfer / (B * new_rho + A)
