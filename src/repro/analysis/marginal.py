"""Marginal analysis of cluster power: gradients and criticality.

Order-invariance of ``X`` (Theorem 1(2)) lets any computer be moved to
the last startup slot, where eq. (1) isolates it:

.. math::

    X(P) = X(P \\setminus i) + \\frac{R_{-i}}{Bρ_i + A},
    \\qquad R_{-i} = \\prod_{j ≠ i} \\frac{Bρ_j + τδ}{Bρ_j + A}.

Two closed forms fall out immediately:

* the **gradient** ``∂X/∂ρᵢ = −B·R_{-i}/(Bρᵢ + A)²`` — the instantaneous
  payoff of speeding computer i up (Theorem 3 is its corollary: the
  magnitude grows as ρᵢ shrinks);
* the **contribution** ``X(P) − X(P∖i) = R_{-i}/(Bρᵢ + A)`` — what
  computer i adds to the cluster given the rest (the answer to "which
  machine can we least afford to lose?").

Both are O(n) for the whole cluster at once.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.util.arrays import validate_positive_vector

__all__ = [
    "x_gradient",
    "marginal_speedup_value",
    "computer_contributions",
    "most_critical_computer",
]

ProfileLike = Union[Profile, Iterable[float]]


def _rho_array(profile: ProfileLike) -> np.ndarray:
    if isinstance(profile, Profile):
        return profile.rho
    return validate_positive_vector(profile, name="profile")


def _exclusive_ratio_products(rho: np.ndarray, params: ModelParams) -> np.ndarray:
    """``R_{-i} = Π_{j≠i} (Bρⱼ+τδ)/(Bρⱼ+A)`` for every i, in O(n).

    Computed as prefix·suffix products rather than ``R/rᵢ`` so a single
    near-zero factor (τδ = 0 with a very fast computer) cannot poison
    the whole vector.
    """
    A, B, td = params.A, params.B, params.tau_delta
    ratios = (B * rho + td) / (B * rho + A)
    n = rho.size
    prefix = np.ones(n)
    suffix = np.ones(n)
    if n > 1:
        np.cumprod(ratios[:-1], out=prefix[1:])
        suffix[:-1] = np.cumprod(ratios[::-1][:-1])[::-1]
    return prefix * suffix


def x_gradient(profile: ProfileLike, params: ModelParams) -> np.ndarray:
    """The full gradient ``∂X/∂ρᵢ`` — one closed-form pass, O(n).

    Every entry is negative (slowing any computer hurts, Prop. 2
    differentially); entries are ordered by the *combined* effect of the
    ``1/(Bρᵢ + A)²`` curvature and the exclusive product.

    Examples
    --------
    >>> from repro.core.params import PAPER_TABLE1
    >>> g = x_gradient([1.0, 0.25], PAPER_TABLE1)
    >>> bool(g[1] < g[0] < 0)     # the fast computer's rate matters more
    True
    """
    rho = _rho_array(profile)
    A, B = params.A, params.B
    r_excl = _exclusive_ratio_products(rho, params)
    return -B * r_excl / (B * rho + A) ** 2


def marginal_speedup_value(profile: ProfileLike, params: ModelParams) -> np.ndarray:
    """``−∂X/∂ρᵢ``: X gained per unit of rate improvement, per computer.

    Theorem 3 in differential form — the argmax is (a) fastest computer.
    """
    return -x_gradient(profile, params)


def computer_contributions(profile: ProfileLike, params: ModelParams) -> np.ndarray:
    """``X(P) − X(P∖i)`` for every computer, in closed form (O(n)).

    The value each machine adds to the cluster, holding the rest fixed.
    Unlike the gradient, this is a *removal* measure: a slow machine can
    have a tiny gradient payoff yet still a positive contribution.
    """
    rho = _rho_array(profile)
    A, B = params.A, params.B
    r_excl = _exclusive_ratio_products(rho, params)
    return r_excl / (B * rho + A)


def most_critical_computer(profile: ProfileLike, params: ModelParams) -> int:
    """Index of the computer whose loss would cost the most X.

    >>> from repro.core.params import PAPER_TABLE1
    >>> most_critical_computer([1.0, 0.5, 0.1], PAPER_TABLE1)
    2
    """
    return int(np.argmax(computer_contributions(profile, params)))
