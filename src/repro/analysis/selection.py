"""Machine selection under fixed overheads: when fewer is more.

In the pure fluid model every additional computer helps (Prop. 2 /
:func:`repro.analysis.asymptotics.marginal_computer_value` is always
positive), so "use everything" is trivially optimal.  Restore the fixed
per-message latency λ of :mod:`repro.analysis.overheads` and the
trade-off becomes real: each enlisted machine costs ``2λ`` of lifespan
(one package out, one result back) against a diminishing X gain.

Because a faster machine adds strictly more X than a slower one at the
same fixed cost, the optimal roster is always a *fastest-first prefix*
— so the search is O(n log n): sort by speed, scan prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.overheads import latency_adjusted_work
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["RosterChoice", "best_roster"]


@dataclass(frozen=True)
class RosterChoice:
    """Outcome of an optimal machine-selection search.

    Attributes
    ----------
    size:
        Number of machines enlisted (fastest-first).
    members:
        Profile indices of the enlisted machines, fastest first.
    roster:
        The selected sub-profile.
    work:
        Latency-adjusted work of the selection.
    work_all:
        Latency-adjusted work of using every machine, for comparison.
    """

    size: int
    members: tuple[int, ...]
    roster: Profile
    work: float
    work_all: float

    @property
    def leaving_some_out_helps(self) -> bool:
        """Whether the optimal roster is a strict subset."""
        return self.work > self.work_all * (1.0 + 1e-12)


def best_roster(profile: Profile, params: ModelParams, lifespan: float,
                latency: float) -> RosterChoice:
    """Choose which machines to enlist for one CEP round.

    Evaluates every fastest-first prefix under the latency-adjusted work
    model and returns the best.  With λ = 0 the answer is always "all
    machines" (the fluid model's monotonicity); with λ > 0 and a short
    lifespan, slow stragglers whose X contribution is worth less than
    ``2λ`` of lifespan get benched.

    Parameters
    ----------
    profile:
        The full fleet.
    params:
        Architectural model parameters.
    lifespan:
        The engagement length ``L``.
    latency:
        Fixed per-message cost λ ≥ 0.
    """
    if lifespan <= 0:
        raise InvalidParameterError(f"lifespan must be positive, got {lifespan!r}")
    if latency < 0:
        raise InvalidParameterError(f"latency must be nonnegative, got {latency!r}")
    order = tuple(int(i) for i in np.argsort(profile.rho, kind="stable"))
    best_size = 1
    best_work = -np.inf
    works = []
    for k in range(1, profile.n + 1):
        members = order[:k]
        sub = Profile(profile.rho[list(members)])
        work = latency_adjusted_work(sub, params, lifespan, latency)
        works.append(work)
        if work > best_work:
            best_work = work
            best_size = k
    members = order[:best_size]
    return RosterChoice(
        size=best_size,
        members=members,
        roster=Profile(profile.rho[list(members)]),
        work=float(best_work),
        work_all=float(works[-1]),
    )
