"""Heterogeneity phase maps: where does heterogeneity help, and by how much?

Corollary 1 says a heterogeneous 2-computer cluster always beats its
equal-mean homogeneous twin.  This module maps the *size* of that gain
across (mean, spread) space and generalises the comparison to arbitrary
cluster sizes (where Theorem 5(2) no longer guarantees a win but the
gain is still overwhelmingly positive), producing the data behind the
"heterogeneity lends power" ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.measure import work_rate
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["HeterogeneityGainGrid", "heterogeneity_gain_grid",
           "equal_mean_gain"]


def equal_mean_gain(profile: Union[Profile, Sequence[float]],
                    params: ModelParams) -> float:
    """Work ratio of a cluster vs its equal-mean homogeneous twin.

    ``> 1`` means the cluster's heterogeneity lends it power; ``< 1``
    means the spread hurts (possible for n > 2: e.g. spread concentrated
    in the slow half).  For n = 2 the ratio exceeds 1 whenever the
    profile is not already homogeneous (Corollary 1).
    """
    p = profile if isinstance(profile, Profile) else Profile(profile)
    twin = Profile.homogeneous(p.n, p.mean)
    return work_rate(p, params) / work_rate(twin, params)


@dataclass(frozen=True)
class HeterogeneityGainGrid:
    """Corollary-1 gains over a (mean, relative-spread) grid.

    ``gain[i, j]`` is the work ratio of ⟨mean_i(1+s_j), mean_i(1−s_j)⟩
    over the homogeneous ⟨mean_i, mean_i⟩, where ``s_j`` is the
    *relative* spread (spread = s·mean, clipped to keep ρ positive).
    """

    means: np.ndarray
    relative_spreads: np.ndarray
    gain: np.ndarray

    def max_gain(self) -> tuple[float, float, float]:
        """(mean, relative spread, gain) at the grid's largest gain."""
        i, j = np.unravel_index(int(np.argmax(self.gain)), self.gain.shape)
        return (float(self.means[i]), float(self.relative_spreads[j]),
                float(self.gain[i, j]))


def heterogeneity_gain_grid(params: ModelParams,
                            means: Sequence[float] = (0.2, 0.35, 0.5, 0.65, 0.8),
                            relative_spreads: Sequence[float] = (0.1, 0.3, 0.5,
                                                                 0.7, 0.9),
                            ) -> HeterogeneityGainGrid:
    """Tabulate Corollary 1's gain across (mean, spread) space.

    Every entry must exceed 1 (Theorem 5(2)); the tests assert it, and
    the grid shows the gain exploding as the spread approaches the mean
    (one computer nearly free).
    """
    mean_arr = np.asarray(list(means), dtype=float)
    spread_arr = np.asarray(list(relative_spreads), dtype=float)
    if np.any(mean_arr <= 0) or np.any(mean_arr > 1):
        raise InvalidParameterError("means must lie in (0, 1]")
    if np.any(spread_arr <= 0) or np.any(spread_arr >= 1):
        raise InvalidParameterError("relative spreads must lie in (0, 1)")
    gain = np.empty((mean_arr.size, spread_arr.size))
    for i, mean in enumerate(mean_arr):
        for j, rel in enumerate(spread_arr):
            spread = rel * min(mean, 1.0 - mean if mean < 1.0 else mean)
            spread = min(spread, mean * 0.999)
            hetero = Profile([mean + spread, mean - spread])
            homog = Profile([mean, mean])
            gain[i, j] = (work_rate(hetero, params)
                          / work_rate(homog, params))
    return HeterogeneityGainGrid(means=mean_arr, relative_spreads=spread_arr,
                                 gain=gain)
