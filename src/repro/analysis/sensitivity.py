"""Environment-sensitivity analysis: how power depends on (τ, π, δ).

The paper fixes one environment (Table 1) and studies profiles; a
practitioner also needs the transpose — fix the cluster, vary the
network.  This module provides parameter sweeps of X / work rate / HECR
and a *crossover finder*: the communication intensity at which the
ranking of two clusters flips.  (Proposition 3's cross-product test is
environment-independent **when it fires**; non-dominated pairs can and
do flip, and the finder locates where.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import brentq

from repro.core.hecr import hecr
from repro.core.measure import work_rate, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["SweepResult", "sweep_tau", "sweep_pi", "sweep_delta",
           "find_tau_crossover"]


@dataclass(frozen=True)
class SweepResult:
    """One parameter sweep: grid values plus the measured responses."""

    parameter: str
    values: np.ndarray
    x: np.ndarray
    work_rate: np.ndarray
    hecr: np.ndarray

    def as_rows(self) -> list[tuple]:
        """Rows suitable for the experiment table renderer."""
        return [(float(v), float(x), float(w), float(h))
                for v, x, w, h in zip(self.values, self.x, self.work_rate, self.hecr)]


def _sweep(profile: Profile, make_params: Callable[[float], ModelParams],
           values: Sequence[float], parameter: str) -> SweepResult:
    grid = np.asarray(list(values), dtype=float)
    if grid.size == 0:
        raise InvalidParameterError("sweep grid must be non-empty")
    xs = np.empty(grid.size)
    rates = np.empty(grid.size)
    hecrs = np.empty(grid.size)
    for k, value in enumerate(grid):
        params = make_params(float(value))
        # One eq.-(1) evaluation per grid point; the rate and HECR both
        # reuse it (bit-identical to recomputing — same X float).
        xs[k] = x_measure(profile, params)
        rates[k] = work_rate(profile, params, x=xs[k])
        hecrs[k] = hecr(profile, params, x=xs[k])
    return SweepResult(parameter=parameter, values=grid, x=xs,
                       work_rate=rates, hecr=hecrs)


def sweep_tau(profile: Profile, taus: Sequence[float], *,
              pi: float = 1e-5, delta: float = 1.0) -> SweepResult:
    """X / work rate / HECR across network transit rates.

    Work rate decreases monotonically in τ (communication only costs);
    tests verify this.
    """
    return _sweep(profile, lambda t: ModelParams(tau=t, pi=pi, delta=delta),
                  taus, "tau")


def sweep_pi(profile: Profile, pis: Sequence[float], *,
             tau: float = 1e-6, delta: float = 1.0) -> SweepResult:
    """X / work rate / HECR across packaging rates."""
    return _sweep(profile, lambda p: ModelParams(tau=tau, pi=p, delta=delta),
                  pis, "pi")


def sweep_delta(profile: Profile, deltas: Sequence[float], *,
                tau: float = 1e-6, pi: float = 1e-5) -> SweepResult:
    """X / work rate / HECR across output/input ratios δ ∈ [0, 1]."""
    return _sweep(profile, lambda d: ModelParams(tau=tau, pi=pi, delta=d),
                  deltas, "delta")


def _x_tau_grid(rho: np.ndarray, taus: np.ndarray, pi: float,
                delta: float) -> np.ndarray:
    """``X(P)`` across a τ-grid, one vectorized pass — eq. (1) row-wise.

    With ``A = π+τ`` and ``τδ = τ·δ`` varying along the grid but
    ``B = 1+(1+δ)π`` fixed, every row is exactly the 1-D
    :func:`~repro.core.measure.x_measure` arithmetic, so each entry is
    bit-identical to the corresponding scalar evaluation.
    """
    B = 1.0 + (1.0 + delta) * pi
    A = pi + taus[:, None]
    td = (taus * delta)[:, None]
    denom = B * rho[None, :] + A
    ratios = (B * rho[None, :] + td) / denom
    prefix = np.ones_like(denom)
    if rho.size > 1:
        np.cumprod(ratios[:, :-1], axis=1, out=prefix[:, 1:])
    return np.sum(prefix / denom, axis=1)


def find_tau_crossover(p1: Profile, p2: Profile, *,
                       tau_low: float = 1e-9, tau_high: float = 10.0,
                       pi: float = 1e-5, delta: float = 1.0,
                       xtol: float = 1e-12) -> float | None:
    """The τ at which clusters P₁ and P₂ swap ranking, if any.

    Returns the crossover transit rate in ``(tau_low, tau_high)``, or
    None when the sign of ``X(P₁) − X(P₂)`` does not change across the
    bracket (the ranking is τ-stable there — e.g. whenever Proposition
    3's dominance test fires).

    Notes
    -----
    The difference can cross more than once in pathological cases; this
    returns the first crossing found by a 64-point log-grid scan refined
    with Brent's method.
    """
    if p1.n != p2.n:
        raise InvalidParameterError(
            f"crossover compares equal-size clusters (got {p1.n} vs {p2.n})")
    if not (0 < tau_low < tau_high):
        raise InvalidParameterError("need 0 < tau_low < tau_high")

    def diff(tau: float) -> float:
        params = ModelParams(tau=tau, pi=pi, delta=delta)
        return x_measure(p1, params) - x_measure(p2, params)

    grid = np.geomspace(tau_low, tau_high, 64)
    # Vectorized grid scan: X over the whole τ-grid in one pass per
    # profile.  Bit-identical to 64 scalar diff() calls — B is
    # τ-independent and the row-wise cumprod/sum reduce in the same
    # order as the 1-D ones — so the bracket brentq refines (with the
    # scalar diff) is exactly the one the scalar scan would have found.
    signs = np.sign(_x_tau_grid(p1.rho, grid, pi, delta)
                    - _x_tau_grid(p2.rho, grid, pi, delta))
    for k in range(grid.size - 1):
        if signs[k] != 0 and signs[k + 1] != 0 and signs[k] != signs[k + 1]:
            return float(brentq(diff, grid[k], grid[k + 1], xtol=xtol))
        if signs[k] == 0:
            return float(grid[k])
    return None
