"""repro — a reproduction of Rosenberg & Chiang's heterogeneity framework.

This package implements, end to end, the analytical framework of

    A. L. Rosenberg and R. C. Chiang, *Toward Understanding Heterogeneity
    in Computing*, 24th IEEE Intl. Parallel & Distributed Processing
    Symposium (IPDPS), 2010,

together with every substrate the paper builds on: the
Adler–Gong–Rosenberg worksharing-protocol machinery for the
Cluster-Exploitation Problem, a discrete-event master–worker cluster
simulator, LP-based optimal scheduling for arbitrary protocols, speedup
(upgrade) analysis, and profile-based power predictors (symmetric
functions and statistical moments).

Quick start
-----------
>>> from repro import Profile, PAPER_TABLE1, hecr, work_rate
>>> cluster = Profile([1.0, 0.5, 1/3, 0.25])       # rho: time per work unit
>>> round(work_rate(cluster, PAPER_TABLE1), 2)     # work units per time unit
10.0
>>> round(hecr(cluster, PAPER_TABLE1), 3)          # equivalent homogeneous rate
0.4

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
scripts that regenerate every table and figure of the paper.
"""

from repro.core import (
    FIG34_CALIBRATION,
    NEGLIGIBLE_OVERHEADS,
    PAPER_TABLE1,
    ClusterComparison,
    ModelParams,
    Profile,
    compare_clusters,
    hecr,
    hecr_bisect,
    hecr_from_x,
    homogeneous_work_rate,
    homogeneous_x,
    work_production,
    work_rate,
    work_ratio,
    x_measure,
)
from repro.errors import (
    ExperimentError,
    InfeasibleScheduleError,
    InvalidParameterError,
    InvalidProfileError,
    ProtocolError,
    ReproError,
    SamplingError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ModelParams",
    "PAPER_TABLE1",
    "FIG34_CALIBRATION",
    "NEGLIGIBLE_OVERHEADS",
    "Profile",
    "x_measure",
    "work_rate",
    "work_production",
    "work_ratio",
    "homogeneous_x",
    "homogeneous_work_rate",
    "hecr",
    "hecr_from_x",
    "hecr_bisect",
    "ClusterComparison",
    "compare_clusters",
    # errors
    "ReproError",
    "InvalidParameterError",
    "InvalidProfileError",
    "InfeasibleScheduleError",
    "ProtocolError",
    "SimulationError",
    "SamplingError",
    "ExperimentError",
]
