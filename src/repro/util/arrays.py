"""Array validation helpers used across the package.

These helpers normalise user-supplied sequences into 1-D ``float64`` NumPy
arrays and enforce the invariants the model requires (positivity,
finiteness, monotone orderings).  Keeping the checks in one place means
every public entry point reports violations with the same vocabulary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidProfileError

__all__ = [
    "as_float_vector",
    "validate_positive_vector",
    "is_nonincreasing",
    "is_nondecreasing",
]


def as_float_vector(values: Iterable[float], *, name: str = "values") -> np.ndarray:
    """Convert ``values`` to a 1-D ``float64`` array.

    Parameters
    ----------
    values:
        Any iterable of numbers (list, tuple, generator, ndarray).
    name:
        Label used in error messages.

    Returns
    -------
    numpy.ndarray
        A fresh (never aliased) 1-D ``float64`` array.

    Raises
    ------
    InvalidProfileError
        If the result is empty, not one-dimensional, or contains
        non-finite entries.
    """
    arr = np.array(list(values) if not isinstance(values, (np.ndarray, Sequence)) else values,
                   dtype=float, copy=True)
    if arr.ndim != 1:
        raise InvalidProfileError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise InvalidProfileError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise InvalidProfileError(f"{name} contains non-finite entries")
    return arr


def validate_positive_vector(values: Iterable[float], *, name: str = "values",
                             upper: float | None = None) -> np.ndarray:
    """Validate a strictly positive 1-D vector, optionally bounded above.

    Parameters
    ----------
    values:
        Iterable of numbers.
    name:
        Label used in error messages.
    upper:
        If given, every entry must be ``<= upper``.

    Returns
    -------
    numpy.ndarray
        The validated ``float64`` array.
    """
    arr = as_float_vector(values, name=name)
    if np.any(arr <= 0.0):
        raise InvalidProfileError(f"{name} must be strictly positive; "
                                  f"min entry is {arr.min()!r}")
    if upper is not None and np.any(arr > upper):
        raise InvalidProfileError(f"{name} must not exceed {upper}; "
                                  f"max entry is {arr.max()!r}")
    return arr


def is_nonincreasing(arr: np.ndarray, *, tol: float = 0.0) -> bool:
    """Return True if ``arr`` is sorted in nonincreasing order.

    A tolerance allows for floating-point jitter: adjacent increases of at
    most ``tol`` are still considered sorted.
    """
    a = np.asarray(arr, dtype=float)
    if a.size <= 1:
        return True
    return bool(np.all(np.diff(a) <= tol))


def is_nondecreasing(arr: np.ndarray, *, tol: float = 0.0) -> bool:
    """Return True if ``arr`` is sorted in nondecreasing order (within tol)."""
    a = np.asarray(arr, dtype=float)
    if a.size <= 1:
        return True
    return bool(np.all(np.diff(a) >= -tol))
