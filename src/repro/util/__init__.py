"""Shared utilities: array validation, number formatting, ASCII rendering."""

from repro.util.arrays import (
    as_float_vector,
    is_nonincreasing,
    is_nondecreasing,
    validate_positive_vector,
)
from repro.util.format import (
    format_quantity,
    format_ratio,
    format_seconds,
    significant,
)

__all__ = [
    "as_float_vector",
    "is_nonincreasing",
    "is_nondecreasing",
    "validate_positive_vector",
    "format_quantity",
    "format_ratio",
    "format_seconds",
    "significant",
]
