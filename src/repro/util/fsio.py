"""Crash-safe filesystem primitives shared by the on-disk caches.

Every process-shared artifact in this codebase — result-cache entries,
shared-cache documents, worker metrics dumps — is published the same
way: write the complete document to a temporary file *in the target
directory* and :func:`os.replace` it over the destination.  ``rename``
within one filesystem is atomic on POSIX, so a reader can observe the
old document or the new one but never an interleaving of the two, even
when the writer is killed mid-write (the orphaned ``*.tmp`` file is
garbage, not corruption).

Centralising the pattern here is what gives the single-process caches a
correct *cross-process* story for free: N workers publishing the same
key race only on which complete document wins, which is harmless when
the content is a pure function of the key.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str, *,
                      durable: bool = False) -> None:
    """Atomically publish ``text`` at ``path`` (temp file + rename).

    The temporary file lives next to the destination so the final
    ``os.replace`` never crosses a filesystem boundary.  With
    ``durable=True`` the data is fsynced before the rename, trading one
    disk flush for the guarantee that a machine crash cannot leave the
    *renamed* file empty on journalled filesystems.

    Raises ``OSError`` like :func:`open` would; on any failure the
    destination is untouched and the temp file is removed.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
