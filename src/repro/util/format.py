"""Small formatting helpers for experiment reports and CLI output."""

from __future__ import annotations

import math

__all__ = ["significant", "format_seconds", "format_ratio", "format_quantity"]

_SI_PREFIXES = [
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "µs"),
    (1e-9, "ns"),
]


def significant(x: float, digits: int = 3) -> str:
    """Format ``x`` with ``digits`` significant figures.

    >>> significant(0.123456, 3)
    '0.123'
    >>> significant(12345.6, 3)
    '1.23e+04'
    """
    if x == 0:
        return "0"
    if not math.isfinite(x):
        return str(x)
    magnitude = math.floor(math.log10(abs(x)))
    if -4 <= magnitude < digits + 1:
        decimals = max(0, digits - 1 - magnitude)
        return f"{x:.{decimals}f}"
    return f"{x:.{digits - 1}e}"


def format_seconds(t: float) -> str:
    """Render a duration in the most natural SI unit.

    >>> format_seconds(1.1e-05)
    '11 µs'
    """
    if t == 0:
        return "0 s"
    for scale, unit in _SI_PREFIXES:
        if abs(t) >= scale:
            value = t / scale
            text = f"{value:.6g}"
            return f"{text} {unit}"
    return f"{t:.3e} s"


def format_ratio(r: float, decimals: int = 3) -> str:
    """Render a work/power ratio the way the paper's tables do (e.g. 1.159)."""
    return f"{r:.{decimals}f}"


def format_quantity(value: float, unit: str = "") -> str:
    """Render ``value`` with 6 significant digits and an optional unit suffix."""
    text = f"{value:.6g}"
    return f"{text} {unit}".strip()
