"""Random-profile samplers and the §4.3 equal-mean pair generators."""

from repro.sampling.equal_mean import equal_mean_pair, mean_preserving_spread
from repro.sampling.scenarios import (
    SCENARIOS,
    aging_lab,
    cloud_spot_mix,
    hero_and_herd,
    two_tier_datacenter,
    volunteer_swarm,
)
from repro.sampling.generators import (
    PROFILE_SAMPLERS,
    RHO_FLOOR,
    beta_profile,
    power_profile,
    two_point_profile,
    uniform_profile,
)

__all__ = [
    "RHO_FLOOR",
    "uniform_profile",
    "beta_profile",
    "power_profile",
    "two_point_profile",
    "PROFILE_SAMPLERS",
    "equal_mean_pair",
    "mean_preserving_spread",
    "SCENARIOS",
    "aging_lab",
    "two_tier_datacenter",
    "volunteer_swarm",
    "cloud_spot_mix",
    "hero_and_herd",
]
