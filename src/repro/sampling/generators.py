"""Random heterogeneity-profile generators.

The §4.3 experiments need streams of random clusters.  The companion
paper's generation procedure is unavailable (see DESIGN.md §4,
substitution 2), so this module provides a family of documented samplers
over ρ ∈ (0, 1]:

* ``uniform`` — i.i.d. Uniform(lo, 1];
* ``beta`` — i.i.d. scaled Beta(a, b) (skewable toward fast or slow);
* ``power`` — ρ = U^γ, concentrating mass near fast (γ > 1) or slow
  (γ < 1) machines;
* ``two-point`` — a random mix of two speed classes (bimodal clusters).

All randomness flows through an explicit :class:`numpy.random.Generator`,
keeping every experiment reproducible from a seed.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.profile import Profile
from repro.errors import SamplingError

__all__ = [
    "uniform_profile",
    "beta_profile",
    "power_profile",
    "two_point_profile",
    "PROFILE_SAMPLERS",
]

#: Smallest ρ a sampler will emit; keeps X and HECR finite and
#: well-conditioned (a literal ρ = 0 computer is infinitely fast and
#: outside the model).
RHO_FLOOR = 1e-6


def _check_n(n: int) -> None:
    if n < 1:
        raise SamplingError(f"cluster size must be >= 1, got {n}")


def uniform_profile(rng: np.random.Generator, n: int, *,
                    low: float = RHO_FLOOR) -> Profile:
    """i.i.d. ρ ~ Uniform(low, 1]."""
    _check_n(n)
    if not (0.0 < low < 1.0):
        raise SamplingError(f"low must lie in (0, 1), got {low!r}")
    return Profile(low + (1.0 - low) * rng.random(n))


def beta_profile(rng: np.random.Generator, n: int, *, a: float = 2.0,
                 b: float = 2.0, low: float = RHO_FLOOR) -> Profile:
    """i.i.d. ρ ~ low + (1−low)·Beta(a, b).

    ``a < b`` skews toward fast machines (small ρ), ``a > b`` toward
    slow ones.
    """
    _check_n(n)
    if a <= 0 or b <= 0:
        raise SamplingError(f"beta shapes must be positive, got a={a!r}, b={b!r}")
    return Profile(low + (1.0 - low) * rng.beta(a, b, size=n))


def power_profile(rng: np.random.Generator, n: int, *, gamma: float = 2.0,
                  low: float = RHO_FLOOR) -> Profile:
    """i.i.d. ρ = low + (1−low)·U^γ for U ~ Uniform(0, 1].

    γ > 1 yields clusters dominated by fast machines with a slow tail —
    the shape of volunteer-computing populations.
    """
    _check_n(n)
    if gamma <= 0:
        raise SamplingError(f"gamma must be positive, got {gamma!r}")
    u = rng.random(n)
    return Profile(low + (1.0 - low) * u ** gamma)


def two_point_profile(rng: np.random.Generator, n: int, *,
                      rho_fast: float = 0.1, rho_slow: float = 1.0,
                      p_fast: float = 0.5) -> Profile:
    """Each computer independently fast (ρ_fast) or slow (ρ_slow)."""
    _check_n(n)
    if not (0.0 < rho_fast <= rho_slow <= 1.0):
        raise SamplingError(
            f"need 0 < rho_fast <= rho_slow <= 1, got {rho_fast!r}, {rho_slow!r}")
    if not (0.0 <= p_fast <= 1.0):
        raise SamplingError(f"p_fast must lie in [0, 1], got {p_fast!r}")
    fast = rng.random(n) < p_fast
    return Profile(np.where(fast, rho_fast, rho_slow))


#: Named samplers with their default hyperparameters, for experiments
#: that sweep over sampling distributions.
PROFILE_SAMPLERS: dict[str, Callable[[np.random.Generator, int], Profile]] = {
    "uniform": uniform_profile,
    "beta": beta_profile,
    "power": power_profile,
    "two-point": two_point_profile,
}
