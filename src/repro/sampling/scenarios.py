"""Named fleet scenarios: realistic cluster shapes for examples and studies.

The paper motivates its model with clusters, grids, global/volunteer
computing and clouds (§1).  These factories produce profile shapes
matching those stories, each documented with what it stresses:

* ``aging_lab`` — machines bought one per year, each generation ~1.4×
  faster: geometric speed decay, the classic NOW cluster;
* ``two_tier_datacenter`` — a big slow tier plus a small fast tier:
  bimodal, the shape where minorization/means mislead;
* ``volunteer_swarm`` — power-law speeds with a long slow tail
  (SETI@home-style populations);
* ``cloud_spot_mix`` — mostly uniform mid-range with occasional very
  fast and very slow outliers (noisy-neighbour clouds);
* ``hero_and_herd`` — one superfast machine among commodity boxes: the
  abstract's "one superfast computer and the rest of average speed".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.profile import Profile
from repro.errors import SamplingError
from repro.sampling.generators import RHO_FLOOR

__all__ = ["aging_lab", "two_tier_datacenter", "volunteer_swarm",
           "cloud_spot_mix", "hero_and_herd", "SCENARIOS"]


def aging_lab(n: int = 8, *, generation_speedup: float = 1.4) -> Profile:
    """One machine per purchasing cycle, each generation faster."""
    if n < 1:
        raise SamplingError(f"need n >= 1, got {n}")
    if generation_speedup <= 1.0:
        raise SamplingError(
            f"generation_speedup must exceed 1, got {generation_speedup!r}")
    return Profile((1.0 / generation_speedup) ** np.arange(n))


def two_tier_datacenter(n_slow: int = 12, n_fast: int = 4, *,
                        tier_ratio: float = 4.0) -> Profile:
    """A large commodity tier plus a small accelerated tier."""
    if tier_ratio <= 1.0:
        raise SamplingError(f"tier_ratio must exceed 1, got {tier_ratio!r}")
    return Profile.two_point(n_slow, n_fast, rho_slow=1.0,
                             rho_fast=1.0 / tier_ratio)


def volunteer_swarm(rng: np.random.Generator, n: int = 100, *,
                    gamma: float = 3.0) -> Profile:
    """Power-law speeds: many fast donors, a long slow tail."""
    from repro.sampling.generators import power_profile
    return power_profile(rng, n, gamma=gamma).power_ordered()


def cloud_spot_mix(rng: np.random.Generator, n: int = 32, *,
                   outlier_fraction: float = 0.1) -> Profile:
    """Uniform mid-range instances with fast/slow noisy-neighbour outliers."""
    if not (0.0 <= outlier_fraction < 1.0):
        raise SamplingError(
            f"outlier_fraction must lie in [0, 1), got {outlier_fraction!r}")
    rho = rng.uniform(0.4, 0.6, n)
    outliers = rng.random(n) < outlier_fraction
    rho[outliers] = np.where(rng.random(outliers.sum()) < 0.5,
                             rng.uniform(RHO_FLOOR + 0.05, 0.15, outliers.sum()),
                             rng.uniform(0.85, 1.0, outliers.sum()))
    return Profile(rho)


def hero_and_herd(n_herd: int = 9, *, hero_speedup: float = 10.0) -> Profile:
    """One superfast machine among commodity boxes (the abstract's question)."""
    if hero_speedup <= 1.0:
        raise SamplingError(f"hero_speedup must exceed 1, got {hero_speedup!r}")
    return Profile([1.0] * n_herd + [1.0 / hero_speedup])


#: Deterministic scenarios by name (the RNG-based ones take a Generator).
SCENARIOS: dict[str, Callable[..., Profile]] = {
    "aging-lab": aging_lab,
    "two-tier-datacenter": two_tier_datacenter,
    "hero-and-herd": hero_and_herd,
}
