"""Equal-mean cluster-pair generation (the §4.3 experimental setup).

Each §4.3 trial needs two n-computer profiles with (a) identical mean
speed and (b) different variances.  Two documented strategies:

``rescale``
    Draw both profiles i.i.d. uniform, then rescale the second so its
    mean matches the first's: ``P₂ ← P₂ · (mean(P₁)/mean(P₂))``.
    Rejection-resample while any rescaled entry leaves (0, 1].  Produces
    pairs whose variances differ by typically modest amounts — the
    regime where the predictor's ≈76% accuracy lives.

``spread``
    Start from a common random profile and apply opposite-signed
    *mean-preserving spread* transforms: repeatedly pick two entries of
    P₁ and push them apart (raising variance), and two entries of P₂
    and pull them together (lowering variance), always within (0, 1].
    Means are preserved exactly by construction, and the variance gap is
    controllable — the tool for mapping the θ-threshold curve.

``window``
    Draw P₁ uniform over (low, 1], then P₂ uniform over the window
    ``[m − h, m + h]`` around P₁'s mean ``m`` with a random half-width
    ``h``, rescaled to match the mean exactly.  The variance gap is
    ``Θ(1)`` regardless of n, so the predictor's accuracy *plateaus*
    with cluster size the way the paper's does.

``mixed``
    Each call picks ``rescale`` or ``window`` uniformly at random —
    the default for the §4.3 trials: rescale pairs dominate at small n
    (small gaps, occasional errors) while window pairs keep the error
    rate from collapsing to a coin flip at large n, reproducing the
    paper's grow-then-plateau accuracy curve.

Both return profiles whose means agree to machine precision; the trial
harness (:mod:`repro.experiments.variance_trials`) enforces the
difference-in-variance requirement.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.profile import Profile
from repro.errors import SamplingError
from repro.sampling.generators import RHO_FLOOR

__all__ = ["equal_mean_pair", "mean_preserving_spread"]

_MAX_REJECTIONS = 1000


def _uniform(rng: np.random.Generator, n: int, low: float) -> np.ndarray:
    return low + (1.0 - low) * rng.random(n)


def mean_preserving_spread(rng: np.random.Generator, values: np.ndarray, *,
                           steps: int, widen: bool,
                           low: float = RHO_FLOOR, high: float = 1.0) -> np.ndarray:
    """Apply ``steps`` random mean-preserving spread transforms.

    Each step picks two distinct entries and moves them symmetrically —
    apart when ``widen`` (variance up), together otherwise (variance
    down) — by a random admissible amount that keeps both entries inside
    ``[low, high]``.  The sum (hence mean) is invariant under every step.

    Returns a new array; the input is not modified.
    """
    if values.size < 2:
        raise SamplingError("mean-preserving spread needs at least 2 entries")
    out = values.astype(float).copy()
    n = out.size
    for _ in range(steps):
        i, j = rng.choice(n, size=2, replace=False)
        a, b = out[i], out[j]
        if widen:
            # push a up, b down (or vice versa) without leaving the box
            room = min(high - max(a, b), min(a, b) - low)
            if room <= 0.0:
                continue
            shift = rng.random() * room
            if a >= b:
                out[i], out[j] = a + shift, b - shift
            else:
                out[i], out[j] = a - shift, b + shift
        else:
            # move both toward their midpoint
            shift = rng.random() * 0.5 * abs(a - b)
            if a >= b:
                out[i], out[j] = a - shift, b + shift
            else:
                out[i], out[j] = a + shift, b - shift
    return out


def _window_pair(rng: np.random.Generator, n: int,
                 low: float) -> tuple[Profile, Profile]:
    """The ``window`` strategy: broad profile vs narrow same-mean profile."""
    for _ in range(_MAX_REJECTIONS):
        a = _uniform(rng, n, low)
        m = float(a.mean())
        h_max = min(m - low, 1.0 - m)
        if h_max <= 0.0:
            continue
        h = rng.random() * h_max
        b = m - h + 2.0 * h * rng.random(n)
        b_mean = float(b.mean())
        if b_mean <= 0.0:
            continue
        b_scaled = b * (m / b_mean)
        if low <= b_scaled.min() and b_scaled.max() <= 1.0:
            return Profile(a), Profile(b_scaled)
    raise SamplingError(
        f"could not generate a window pair within {_MAX_REJECTIONS} attempts "
        f"(n={n}, low={low!r})")


def equal_mean_pair(rng: np.random.Generator, n: int, *,
                    strategy: Literal["rescale", "spread", "window",
                                      "mixed"] = "rescale",
                    low: float = RHO_FLOOR,
                    spread_steps: int | None = None) -> tuple[Profile, Profile]:
    """Generate one §4.3 trial pair: equal means, (generically) unequal
    variances.

    Parameters
    ----------
    rng:
        Source of randomness.
    n:
        Cluster size (≥ 2; a 1-computer pair with equal means is equal
        outright).
    strategy:
        ``"rescale"``, ``"spread"``, ``"window"`` or ``"mixed"`` (see
        module docstring).
    low:
        ρ floor passed to the underlying samplers.
    spread_steps:
        For the spread strategy: transforms per side (default ``2n``).

    Returns
    -------
    (Profile, Profile)
        Means agree to float precision; variances differ almost surely.

    Raises
    ------
    SamplingError
        If rescale rejection-sampling exhausts its retry budget (only
        possible for extreme ``low``).
    """
    if n < 2:
        raise SamplingError(f"equal-mean pairs need n >= 2, got {n}")
    if strategy == "mixed":
        strategy = "rescale" if rng.random() < 0.5 else "window"
    if strategy == "window":
        return _window_pair(rng, n, low)
    if strategy == "rescale":
        for _ in range(_MAX_REJECTIONS):
            a = _uniform(rng, n, low)
            b = _uniform(rng, n, low)
            b_scaled = b * (a.mean() / b.mean())
            if b_scaled.max() <= 1.0 and b_scaled.min() >= low:
                return Profile(a), Profile(b_scaled)
        raise SamplingError(
            f"could not rescale a mean-matched profile within "
            f"{_MAX_REJECTIONS} attempts (n={n}, low={low!r})")
    if strategy == "spread":
        steps = spread_steps if spread_steps is not None else 2 * n
        base = _uniform(rng, n, low)
        widened = mean_preserving_spread(rng, base, steps=steps, widen=True, low=low)
        tightened = mean_preserving_spread(rng, base, steps=steps, widen=False, low=low)
        return Profile(widened), Profile(tightened)
    raise SamplingError(
        f"unknown strategy {strategy!r}; use 'rescale', 'spread', 'window' "
        f"or 'mixed'")
