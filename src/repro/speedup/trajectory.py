"""Iterative optimal-speedup trajectories (the experiment of Figs. 3–4).

The paper's simulation-based experiment starts from a homogeneous
4-computer cluster ⟨1,1,1,1⟩ and repeatedly applies the *best* single
multiplicative speedup (ψ = 1/2), breaking ties toward the larger index.
Theorem 4 predicts the observed two-phase behaviour:

* **Phase 1** (Fig. 3): while ``ψ·ρᵢ·ρⱼ`` exceeds the threshold
  ``A·τδ/B²`` for the relevant pairs, the *fastest* computer is sped up
  again and again — each computer rides down 1 → 1/2 → … → 1/16 in turn.
* **Phase 2** (Fig. 4): once every computer is "very fast" (all products
  fall below the threshold), every subsequent round speeds up the
  *slowest* computer.

:func:`run_trajectory` reproduces the experiment for any starting
profile, factor and parameters, recording one :class:`RoundSnapshot` per
round with the chosen computer, the tie set, and the Theorem-4 regime
that explains the choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.multiplicative import (
    SpeedupRegime,
    apply_multiplicative,
)

__all__ = ["RoundSnapshot", "Trajectory", "run_trajectory"]

#: Relative tolerance under which two candidate X-values count as tied.
#: Speeding up equal-rate computers yields mathematically identical X but
#: the cumulative products round differently, so exact comparison would
#: turn ties into accidents of ordering.
TIE_RTOL = 1e-12


@dataclass(frozen=True)
class RoundSnapshot:
    """One round of the iterative-speedup experiment.

    Attributes
    ----------
    round_index:
        1-based round number.
    profile_before, profile_after:
        Cluster profiles at the round's start and end.
    chosen:
        Profile index of the computer that was sped up.
    tied:
        All indices whose candidate X was within tolerance of the best
        (``len(tied) > 1`` means the tie-break rule decided).
    regime:
        The Theorem-4 condition that explains the choice: ``FASTER_WINS``
        when the chosen computer belongs to the fastest speed class,
        ``SLOWER_WINS`` when it belongs to the slowest, ``MIXED`` when a
        middle computer won (condition 1 against slower peers, condition
        2 against faster ones), ``None`` for a homogeneous cluster
        (pure tie-break).
    x_before, x_after:
        X-measures around the round.
    """

    round_index: int
    profile_before: Profile
    profile_after: Profile
    chosen: int
    tied: tuple[int, ...]
    regime: SpeedupRegime | None
    x_before: float
    x_after: float

    @property
    def was_tie_break(self) -> bool:
        """Whether more than one candidate tied for best."""
        return len(self.tied) > 1


@dataclass(frozen=True)
class Trajectory:
    """A full iterative-speedup run: the sequence of round snapshots."""

    initial_profile: Profile
    params: ModelParams
    psi: float
    rounds: tuple[RoundSnapshot, ...]

    @property
    def final_profile(self) -> Profile:
        return self.rounds[-1].profile_after if self.rounds else self.initial_profile

    def profiles_matrix(self) -> np.ndarray:
        """Stack of profiles: row 0 the initial, row k after round k.

        This is the data behind the paper's bar-graph snapshot figures.
        """
        rows = [self.initial_profile.rho]
        rows += [snap.profile_after.rho for snap in self.rounds]
        return np.vstack(rows)

    def chosen_sequence(self) -> tuple[int, ...]:
        """Profile indices sped up, round by round."""
        return tuple(snap.chosen for snap in self.rounds)

    def regime_sequence(self) -> tuple[SpeedupRegime | None, ...]:
        """The governing Theorem-4 regime, round by round."""
        return tuple(snap.regime for snap in self.rounds)

    def __iter__(self) -> Iterator[RoundSnapshot]:
        return iter(self.rounds)

    def __len__(self) -> int:
        return len(self.rounds)


def _classify(profile: Profile, chosen: int, psi: float,
              params: ModelParams) -> SpeedupRegime | None:
    """Explain a round's choice in Theorem-4 terms.

    Compares the chosen computer's speed class against the profile's
    distinct speed classes: choosing from the fastest class is
    condition 1 behaviour, from the slowest class condition 2; a
    homogeneous profile has nothing to compare (None).
    """
    rho = profile.rho
    distinct = np.unique(rho)
    if distinct.size == 1:
        return None
    chosen_rho = rho[chosen]
    if chosen_rho == distinct[0]:       # fastest class: condition-1 behaviour
        return SpeedupRegime.FASTER_WINS
    if chosen_rho == distinct[-1]:      # slowest class: condition-2 behaviour
        return SpeedupRegime.SLOWER_WINS
    # A middle computer won: it beat its slower peers under condition 1
    # and its faster peers under condition 2 simultaneously.
    return SpeedupRegime.MIXED


def run_trajectory(initial_profile: Profile, params: ModelParams, psi: float,
                   n_rounds: int, *, tie_break_highest_index: bool = True) -> Trajectory:
    """Run ``n_rounds`` of the optimal-multiplicative-speedup experiment.

    Parameters
    ----------
    initial_profile:
        Starting cluster (the paper uses ``Profile.homogeneous(4)``).
    params:
        Architectural parameters (the paper's figures need the
        :data:`repro.core.params.FIG34_CALIBRATION` threshold — see
        DESIGN.md).
    psi:
        Multiplicative factor per round, ``0 < ψ < 1`` (paper: 1/2).
    n_rounds:
        Number of speedup rounds to perform.
    tie_break_highest_index:
        The paper's convention: among tied candidates, speed up the one
        with the larger index.
    """
    if n_rounds < 0:
        raise InvalidParameterError(f"n_rounds must be nonnegative, got {n_rounds}")
    if not (0.0 < psi < 1.0):
        raise InvalidParameterError(f"psi must satisfy 0 < ψ < 1, got {psi!r}")

    snapshots: list[RoundSnapshot] = []
    profile = initial_profile
    for round_index in range(1, n_rounds + 1):
        x_before = x_measure(profile, params)
        x_candidates = np.array([
            x_measure(apply_multiplicative(profile, c, psi), params)
            for c in range(profile.n)
        ])
        best = float(x_candidates.max())
        tol = TIE_RTOL * max(abs(best), 1.0)
        tied = tuple(int(i) for i in np.flatnonzero(x_candidates >= best - tol))
        chosen = max(tied) if tie_break_highest_index else min(tied)
        regime = _classify(profile, chosen, psi, params)
        new_profile = apply_multiplicative(profile, chosen, psi)
        snapshots.append(RoundSnapshot(
            round_index=round_index,
            profile_before=profile,
            profile_after=new_profile,
            chosen=chosen,
            tied=tied,
            regime=regime,
            x_before=x_before,
            x_after=float(x_candidates[chosen]),
        ))
        profile = new_profile

    return Trajectory(initial_profile=initial_profile, params=params, psi=psi,
                      rounds=tuple(snapshots))
