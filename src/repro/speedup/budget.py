"""Budget-constrained upgrade selection (extension of paper §3).

Theorems 3–4 answer "which *one* machine should be replaced?".  The
procurement-shaped version: given a catalogue of candidate upgrades —
each replacing one machine's rate at a price — and a budget, choose the
set maximising the cluster's power, with at most one upgrade per
machine.  This is a multiple-choice knapsack; the module provides

* :func:`plan_budgeted_upgrades` — exact branch-and-bound search
  (suitable for catalogues up to ~20 machines with a few options each),
* :func:`greedy_budgeted_upgrades` — a marginal-X-per-cost heuristic
  for large catalogues,

and the test suite measures the greedy/exact gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.measure import XEvaluator, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["UpgradeOption", "BudgetPlan", "plan_budgeted_upgrades",
           "greedy_budgeted_upgrades"]


@dataclass(frozen=True, slots=True)
class UpgradeOption:
    """One purchasable upgrade: machine ``index`` becomes rate ``new_rho``
    for ``cost``."""

    index: int
    new_rho: float
    cost: float

    def validate(self, profile: Profile) -> None:
        if not (0 <= self.index < profile.n):
            raise InvalidParameterError(
                f"option targets unknown machine {self.index}")
        if self.new_rho <= 0 or self.new_rho >= profile[self.index]:
            raise InvalidParameterError(
                f"option must strictly speed machine {self.index} up "
                f"(rho {profile[self.index]!r} → {self.new_rho!r})")
        if self.cost < 0:
            raise InvalidParameterError(f"cost must be nonnegative, got {self.cost!r}")


@dataclass(frozen=True)
class BudgetPlan:
    """A chosen set of upgrades and its outcome."""

    chosen: tuple[UpgradeOption, ...]
    new_profile: Profile
    x_before: float
    x_after: float
    total_cost: float

    @property
    def improvement(self) -> float:
        """Relative X gain of the plan."""
        return self.x_after / self.x_before - 1.0


def _apply(profile: Profile, chosen: Sequence[UpgradeOption]) -> Profile:
    rho = profile.rho.copy()
    for option in chosen:
        rho[option.index] = option.new_rho
    return Profile(rho)


def _validate_inputs(profile: Profile, options: Sequence[UpgradeOption],
                     budget: float) -> None:
    if budget < 0:
        raise InvalidParameterError(f"budget must be nonnegative, got {budget!r}")
    for option in options:
        option.validate(profile)


def plan_budgeted_upgrades(profile: Profile, params: ModelParams,
                           options: Sequence[UpgradeOption],
                           budget: float) -> BudgetPlan:
    """Exact optimum of the budgeted-upgrade problem.

    Depth-first branch and bound over machines (choices per machine: any
    affordable option or none).  Pruning uses the admissible bound of
    taking every remaining machine's best option for free, so typical
    catalogues resolve far faster than the worst case; the worst case is
    ``Π (1 + options_i)`` leaves.

    Raises
    ------
    InvalidParameterError
        For malformed options or a search space beyond 2 million leaves.
    """
    _validate_inputs(profile, options, budget)
    by_machine: dict[int, list[UpgradeOption]] = {}
    for option in options:
        by_machine.setdefault(option.index, []).append(option)
    machines = sorted(by_machine)

    leaves = 1.0
    for m in machines:
        leaves *= 1 + len(by_machine[m])
    if leaves > 2e6:
        raise InvalidParameterError(
            f"catalogue too large for exact search ({leaves:.0f} leaves); "
            f"use greedy_budgeted_upgrades")

    x_before = x_measure(profile, params)
    best_x = x_before
    best_choice: tuple[UpgradeOption, ...] = ()

    # Admissible bound: X if every remaining machine took its fastest
    # option for free (X is monotone in speeding machines up).
    def optimistic_x(position: int, rho: np.ndarray) -> float:
        optimistic = rho.copy()
        for m in machines[position:]:
            fastest = min(opt.new_rho for opt in by_machine[m])
            optimistic[m] = min(optimistic[m], fastest)
        return x_measure(optimistic, params)

    def search(position: int, rho: np.ndarray, spent: float,
               chosen: list[UpgradeOption]) -> None:
        nonlocal best_x, best_choice
        if position == len(machines):
            x = x_measure(rho, params)
            if x > best_x:
                best_x = x
                best_choice = tuple(chosen)
            return
        if optimistic_x(position, rho) <= best_x:
            return  # even free upgrades can't beat the incumbent
        machine = machines[position]
        # Option: skip this machine.
        search(position + 1, rho, spent, chosen)
        for option in by_machine[machine]:
            if spent + option.cost <= budget:
                new_rho = rho.copy()
                new_rho[machine] = option.new_rho
                chosen.append(option)
                search(position + 1, new_rho, spent + option.cost, chosen)
                chosen.pop()

    search(0, profile.rho.copy(), 0.0, [])
    new_profile = _apply(profile, best_choice)
    return BudgetPlan(
        chosen=best_choice,
        new_profile=new_profile,
        x_before=x_before,
        x_after=best_x,
        total_cost=sum(o.cost for o in best_choice),
    )


def greedy_budgeted_upgrades(profile: Profile, params: ModelParams,
                             options: Sequence[UpgradeOption],
                             budget: float) -> BudgetPlan:
    """Greedy heuristic: repeatedly buy the best affordable ΔX-per-cost.

    Each round previews every remaining affordable option in one
    :meth:`~repro.core.measure.XEvaluator.x_with_rho_many` call — a
    vectorised O(1)-per-candidate incremental query instead of a fresh
    O(n) ``x_measure`` each — and buys the one with the largest X gain
    per unit cost (free options rank by raw gain; ties keep the
    earliest-listed option); a machine is upgraded at most once.
    O(rounds · (|options| + n)).
    """
    _validate_inputs(profile, options, budget)
    evaluator = XEvaluator(profile, params)
    x_before = evaluator.x          # bit-identical to x_measure(profile)
    current = profile
    remaining = list(options)
    spent = 0.0
    chosen: list[UpgradeOption] = []
    upgraded: set[int] = set()

    while True:
        x_current = evaluator.x
        eligible = [option for option in remaining
                    if option.index not in upgraded
                    and spent + option.cost <= budget
                    # a previous purchase can make an option moot:
                    and option.new_rho < current[option.index]]
        if not eligible:
            break
        indices = np.array([option.index for option in eligible])
        values = np.array([option.new_rho for option in eligible])
        costs = np.array([option.cost for option in eligible])
        gains = evaluator.x_with_rho_many(indices, values) - x_current
        scores = np.empty(len(eligible))
        paid = costs > 0.0
        scores[paid] = gains[paid] / costs[paid]
        scores[~paid] = np.where(gains[~paid] > 0.0, np.inf, 0.0)
        best = int(np.argmax(scores))   # first occurrence wins ties
        if scores[best] <= 0.0:
            break
        best_option = eligible[best]
        chosen.append(best_option)
        upgraded.add(best_option.index)
        spent += best_option.cost
        current = current.with_rho_at(best_option.index, best_option.new_rho)
        evaluator.set_rho(best_option.index, best_option.new_rho)

    return BudgetPlan(
        chosen=tuple(chosen),
        new_profile=current,
        x_before=x_before,
        x_after=evaluator.x,        # committed ⇒ exact x_measure(current)
        total_cost=spent,
    )
