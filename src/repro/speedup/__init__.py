"""Speedup (upgrade) analysis — paper §3.

* :mod:`~repro.speedup.additive` — Theorem 3: the fastest computer is
  always the best additive-upgrade target;
* :mod:`~repro.speedup.multiplicative` — Theorem 4: the threshold
  ``A·τδ/B²`` decides between the faster and slower computer;
* :mod:`~repro.speedup.planner` — greedy and exhaustive upgrade
  sequencing;
* :mod:`~repro.speedup.budget` — budget-constrained upgrade selection
  (multiple-choice knapsack; exact branch-and-bound + greedy heuristic);
* :mod:`~repro.speedup.trajectory` — the Figure 3/4 iterative experiment.
"""

from repro.speedup.budget import (
    BudgetPlan,
    UpgradeOption,
    greedy_budgeted_upgrades,
    plan_budgeted_upgrades,
)
from repro.speedup.additive import (
    UpgradeChoice,
    additive_work_ratios,
    apply_additive,
    best_additive_upgrade,
    compare_additive,
    max_additive_term,
)
from repro.speedup.multiplicative import (
    SpeedupRegime,
    apply_multiplicative,
    best_multiplicative_upgrade,
    compare_multiplicative,
    theorem4_margin,
    theorem4_regime,
)
from repro.speedup.planner import (
    UpgradePlan,
    exhaustive_multiplicative_plan,
    plan_additive,
    plan_multiplicative,
)
from repro.speedup.trajectory import RoundSnapshot, Trajectory, run_trajectory

__all__ = [
    "UpgradeChoice",
    "max_additive_term",
    "apply_additive",
    "compare_additive",
    "best_additive_upgrade",
    "additive_work_ratios",
    "SpeedupRegime",
    "apply_multiplicative",
    "theorem4_margin",
    "theorem4_regime",
    "compare_multiplicative",
    "best_multiplicative_upgrade",
    "UpgradePlan",
    "UpgradeOption",
    "BudgetPlan",
    "plan_budgeted_upgrades",
    "greedy_budgeted_upgrades",
    "plan_additive",
    "plan_multiplicative",
    "exhaustive_multiplicative_plan",
    "RoundSnapshot",
    "Trajectory",
    "run_trajectory",
]
