"""Upgrade planning: sequencing and budgeting cluster speedups.

The paper answers "which single computer should I replace?" (Theorems 3
and 4).  A practitioner usually faces the sequential version: *given a
budget of k upgrades, which sequence maximises the cluster's power?*
This module provides that layer on top of the single-step theory:

* :func:`plan_additive` / :func:`plan_multiplicative` — greedy sequences
  of optimal single upgrades (each step provably optimal in isolation);
* :func:`exhaustive_multiplicative_plan` — brute-force search over all
  length-k upgrade sequences, used in tests and ablations to measure how
  close greedy comes to the true optimum;
* :class:`UpgradePlan` — the recorded sequence with per-step payoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.measure import work_ratio, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.additive import UpgradeChoice, best_additive_upgrade
from repro.speedup.multiplicative import (
    apply_multiplicative,
    best_multiplicative_upgrade,
)

__all__ = [
    "UpgradePlan",
    "plan_additive",
    "plan_multiplicative",
    "exhaustive_multiplicative_plan",
]


@dataclass(frozen=True)
class UpgradePlan:
    """A sequence of single-computer upgrades and its cumulative payoff.

    Attributes
    ----------
    initial_profile, final_profile:
        Cluster before the first and after the last upgrade.
    steps:
        Per-step :class:`~repro.speedup.additive.UpgradeChoice` records.
    total_work_ratio:
        ``W(L; final)/W(L; initial)`` — the plan's overall payoff.
    """

    initial_profile: Profile
    final_profile: Profile
    steps: tuple[UpgradeChoice, ...]
    total_work_ratio: float

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def chosen_sequence(self) -> tuple[int, ...]:
        """Profile indices upgraded, in order."""
        return tuple(step.index for step in self.steps)


def plan_additive(profile: Profile, params: ModelParams, phi: float,
                  n_steps: int) -> UpgradePlan:
    """Greedy plan: ``n_steps`` optimal additive upgrades of term φ each.

    By Theorem 3 each greedy step targets the then-fastest computer, so
    the plan concentrates all upgrades on one machine (whose rate drops
    by φ per step).  φ must stay admissible throughout:
    ``n_steps·φ < ρₙ`` is *not* required a priori, but the plan raises if
    an intermediate step would drive a rate to zero or below.
    """
    if n_steps < 0:
        raise InvalidParameterError(f"n_steps must be nonnegative, got {n_steps}")
    steps: list[UpgradeChoice] = []
    current = profile
    for _ in range(n_steps):
        choice = best_additive_upgrade(current, params, phi)
        steps.append(choice)
        current = choice.new_profile
    return UpgradePlan(
        initial_profile=profile,
        final_profile=current,
        steps=tuple(steps),
        total_work_ratio=work_ratio(current, profile, params),
    )


def plan_multiplicative(profile: Profile, params: ModelParams, psi: float,
                        n_steps: int, *, tie_break_highest_index: bool = True,
                        tie_tolerance: float = 1e-12) -> UpgradePlan:
    """Greedy plan: ``n_steps`` optimal multiplicative upgrades of factor ψ.

    This is the engine behind the Figure 3/4 experiment (via
    :mod:`repro.speedup.trajectory`, which additionally classifies each
    round).
    """
    if n_steps < 0:
        raise InvalidParameterError(f"n_steps must be nonnegative, got {n_steps}")
    steps: list[UpgradeChoice] = []
    current = profile
    for _ in range(n_steps):
        choice = best_multiplicative_upgrade(
            current, params, psi,
            tie_break_highest_index=tie_break_highest_index,
            tie_tolerance=tie_tolerance)
        steps.append(choice)
        current = choice.new_profile
    return UpgradePlan(
        initial_profile=profile,
        final_profile=current,
        steps=tuple(steps),
        total_work_ratio=work_ratio(current, profile, params),
    )


def exhaustive_multiplicative_plan(profile: Profile, params: ModelParams,
                                   psi: float, n_steps: int) -> UpgradePlan:
    """Brute-force the best length-k multiplicative upgrade *sequence*.

    Enumerates all ``n^k`` assignment sequences (the order within a
    sequence does not affect the final profile, but enumerating
    sequences keeps the comparison with greedy transparent) and returns
    the best final profile.  Exponential — intended for the small
    clusters of tests and ablations (n·k ≲ 20).
    """
    if n_steps < 0:
        raise InvalidParameterError(f"n_steps must be nonnegative, got {n_steps}")
    if profile.n ** n_steps > 200_000:
        raise InvalidParameterError(
            f"exhaustive search over {profile.n}^{n_steps} sequences is too large; "
            f"use plan_multiplicative instead")
    best_x = -float("inf")
    best_sequence: tuple[int, ...] = ()
    for sequence in product(range(profile.n), repeat=n_steps):
        candidate = profile
        for index in sequence:
            candidate = apply_multiplicative(candidate, index, psi)
        x = x_measure(candidate, params)
        if x > best_x:
            best_x = x
            best_sequence = sequence

    # Re-walk the best sequence to produce step records.
    steps: list[UpgradeChoice] = []
    current = profile
    for index in best_sequence:
        new_profile = apply_multiplicative(current, index, psi)
        steps.append(UpgradeChoice(
            index=index,
            new_profile=new_profile,
            x_before=x_measure(current, params),
            x_after=x_measure(new_profile, params),
            work_ratio=work_ratio(new_profile, current, params),
        ))
        current = new_profile
    return UpgradePlan(
        initial_profile=profile,
        final_profile=current,
        steps=tuple(steps),
        total_work_ratio=work_ratio(current, profile, params),
    )
