"""Multiplicative speedups (paper §3.2.2, Theorem 4).

A *multiplicative* speedup replaces a computer of rate ρ with one of rate
ψ·ρ for a factor ``0 < ψ < 1``.  Unlike the additive case, the best
target depends on a threshold: for computers Cᵢ (slower, rate ρᵢ) and Cⱼ
(faster, rate ρⱼ < ρᵢ),

* if ``ψ·ρᵢ·ρⱼ > A·τδ/B²`` — speed up the **faster** computer Cⱼ
  (Theorem 4, condition 1);
* if ``ψ·ρᵢ·ρⱼ < A·τδ/B²`` — speed up the **slower** computer Cᵢ
  (condition 2: the faster computer is already "very fast", or ψ is
  very aggressive).

The proof's sign identity,

.. math::

    Ξ^{[j]} − Ξ^{[i]} = B·(B²ψρ_iρ_j − Aτδ)·(1 − ψ)(ρ_i − ρ_j),

is exposed directly (:func:`theorem4_margin`) so tests can verify the
predicate against both brute-force X comparison and the exact-rational
evaluation.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.core.measure import work_ratio, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.speedup.additive import UpgradeChoice

__all__ = [
    "SpeedupRegime",
    "apply_multiplicative",
    "theorem4_margin",
    "theorem4_regime",
    "compare_multiplicative",
    "best_multiplicative_upgrade",
]


class SpeedupRegime(Enum):
    """Which Theorem-4 condition governs a pairwise comparison."""

    FASTER_WINS = "condition-1"     # ψρᵢρⱼ > Aτδ/B²
    SLOWER_WINS = "condition-2"     # ψρᵢρⱼ < Aτδ/B²
    BOUNDARY = "boundary"           # exact equality: either choice ties
    MIXED = "mixed"                 # a middle computer won: condition 1
    #                                 against slower peers, condition 2
    #                                 against faster ones (trajectory use)


def apply_multiplicative(profile: Profile, index: int, psi: float) -> Profile:
    """Speed up computer ``index`` multiplicatively: ρ → ψ·ρ.

    Raises
    ------
    InvalidParameterError
        If ψ is not in ``(0, 1)``.
    """
    if not (0.0 < psi < 1.0):
        raise InvalidParameterError(f"multiplicative factor must satisfy 0 < ψ < 1, got {psi!r}")
    return profile.with_rho_at(index, psi * profile[index])


def theorem4_margin(rho_i: float, rho_j: float, psi: float,
                    params: ModelParams) -> float:
    """The decisive quantity ``ψ·ρᵢ·ρⱼ − A·τδ/B²``.

    Positive ⇒ condition 1 (speed up the faster computer); negative ⇒
    condition 2 (speed up the slower).  Symmetric in ρᵢ, ρⱼ.
    """
    if rho_i <= 0 or rho_j <= 0:
        raise InvalidParameterError(
            f"rho values must be positive, got {rho_i!r}, {rho_j!r}")
    if not (0.0 < psi < 1.0):
        raise InvalidParameterError(f"multiplicative factor must satisfy 0 < ψ < 1, got {psi!r}")
    return psi * rho_i * rho_j - params.speedup_threshold


def theorem4_regime(rho_i: float, rho_j: float, psi: float,
                    params: ModelParams) -> SpeedupRegime:
    """Classify a pairwise comparison into Theorem 4's regimes."""
    margin = theorem4_margin(rho_i, rho_j, psi, params)
    if margin > 0.0:
        return SpeedupRegime.FASTER_WINS
    if margin < 0.0:
        return SpeedupRegime.SLOWER_WINS
    return SpeedupRegime.BOUNDARY


def compare_multiplicative(profile: Profile, params: ModelParams,
                           i: int, j: int, psi: float) -> int:
    """Brute-force comparison: speed up ``i`` or ``j`` by the factor ψ?

    Returns ``+1`` if speeding up ``i`` yields strictly more work, ``-1``
    for ``j``, ``0`` on a tie.  Theorem 4 predicts the sign from
    :func:`theorem4_margin` alone whenever ρᵢ ≠ ρⱼ; the tests confirm.
    """
    xi = x_measure(apply_multiplicative(profile, i, psi), params)
    xj = x_measure(apply_multiplicative(profile, j, psi), params)
    if xi > xj:
        return 1
    if xj > xi:
        return -1
    return 0


def best_multiplicative_upgrade(profile: Profile, params: ModelParams,
                                psi: float, *, tie_break_highest_index: bool = True,
                                tie_tolerance: float = 0.0) -> UpgradeChoice:
    """Exhaustively find the best single multiplicative upgrade.

    Evaluates X after speeding each computer up by ψ and picks the
    winner; ties go to the larger index (the Fig.-3/4 convention) when
    ``tie_break_highest_index`` is set.  ``tie_tolerance`` widens the tie
    test to a relative band — useful because equal-rate computers give
    X-values agreeing only to rounding error.
    """
    if not (0.0 < psi < 1.0):
        raise InvalidParameterError(f"multiplicative factor must satisfy 0 < ψ < 1, got {psi!r}")
    x_before = x_measure(profile, params)
    x_after = np.array([
        x_measure(apply_multiplicative(profile, c, psi), params)
        for c in range(profile.n)
    ])
    best_x = float(x_after.max())
    tol = tie_tolerance * max(abs(best_x), 1.0)
    candidates = np.flatnonzero(x_after >= best_x - tol)
    best_index = int(candidates.max() if tie_break_highest_index else candidates.min())
    new_profile = apply_multiplicative(profile, best_index, psi)
    return UpgradeChoice(
        index=best_index,
        new_profile=new_profile,
        x_before=x_before,
        x_after=float(x_after[best_index]),
        work_ratio=work_ratio(new_profile, profile, params),
    )
