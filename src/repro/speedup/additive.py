"""Additive speedups (paper §3.2.1, Theorem 3).

An *additive* speedup replaces a computer of rate ρ with one of rate
ρ − φ for a fixed term ``0 < φ < ρₙ`` (φ below the fastest computer's
rate, so every computer is eligible).  Theorem 3: **the most advantageous
single computer to speed up additively is always the cluster's fastest.**

The module provides the profile transform, the pairwise Theorem-3
comparison, an exhaustive best-upgrade search (used both by the planner
and, in the tests, to verify the theorem), and the Table-4 work-ratio
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.measure import work_ratio, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = [
    "max_additive_term",
    "apply_additive",
    "compare_additive",
    "best_additive_upgrade",
    "additive_work_ratios",
    "UpgradeChoice",
]


@dataclass(frozen=True, slots=True)
class UpgradeChoice:
    """Outcome of a best-single-upgrade search.

    Attributes
    ----------
    index:
        Profile index of the computer to speed up.
    new_profile:
        The profile after the upgrade.
    x_before, x_after:
        X-measures before/after (``x_after > x_before`` always, by
        Proposition 2).
    work_ratio:
        ``W(L; after)/W(L; before)`` — the upgrade's payoff.
    """

    index: int
    new_profile: Profile
    x_before: float
    x_after: float
    work_ratio: float


def max_additive_term(profile: Profile) -> float:
    """The supremum of admissible additive terms: ``φ < ρₙ`` (fastest rate).

    The constraint guarantees *every* computer can absorb the speedup and
    stay at a positive rate.
    """
    return profile.fastest_rho


def apply_additive(profile: Profile, index: int, phi: float) -> Profile:
    """Speed up computer ``index`` additively: ρ → ρ − φ.

    Raises
    ------
    InvalidParameterError
        If φ is not in ``(0, ρ_index)``.
    """
    rho = profile[index]
    if not (0.0 < phi < rho):
        raise InvalidParameterError(
            f"additive term must satisfy 0 < φ < ρ (φ={phi!r}, ρ={rho!r})")
    return profile.with_rho_at(index, rho - phi)


def compare_additive(profile: Profile, params: ModelParams,
                     i: int, j: int, phi: float) -> int:
    """Theorem-3 comparison: is it better to speed up computer ``i`` or ``j``?

    Returns ``+1`` if speeding up ``i`` completes (strictly) more work,
    ``-1`` if ``j`` does, ``0`` on an exact tie (equal rates).  Theorem 3
    says the *faster* (smaller-ρ) computer always wins — the test suite
    checks this function agrees.
    """
    xi = x_measure(apply_additive(profile, i, phi), params)
    xj = x_measure(apply_additive(profile, j, phi), params)
    if xi > xj:
        return 1
    if xj > xi:
        return -1
    return 0


def best_additive_upgrade(profile: Profile, params: ModelParams,
                          phi: float, *, tie_break_highest_index: bool = True
                          ) -> UpgradeChoice:
    """Exhaustively find the single most advantageous additive upgrade.

    Evaluates X after speeding up each computer in turn and returns the
    winner.  Ties (equal-rate computers) go to the larger profile index,
    matching the paper's Fig.-3/4 convention, unless
    ``tie_break_highest_index`` is False (then the smaller index wins).

    Theorem 3 predicts the winner is always (one of) the fastest
    computer(s); this function does not assume that, so it doubles as the
    theorem's empirical check.
    """
    if not (0.0 < phi < max_additive_term(profile)):
        raise InvalidParameterError(
            f"additive term must satisfy 0 < φ < ρₙ={max_additive_term(profile)!r}, "
            f"got {phi!r}")
    x_before = x_measure(profile, params)
    best_index = -1
    best_x = -np.inf
    for c in range(profile.n):
        x_c = x_measure(apply_additive(profile, c, phi), params)
        better = x_c > best_x
        tie = x_c == best_x
        if better or (tie and tie_break_highest_index):
            best_index, best_x = c, x_c
    new_profile = apply_additive(profile, best_index, phi)
    return UpgradeChoice(
        index=best_index,
        new_profile=new_profile,
        x_before=x_before,
        x_after=best_x,
        work_ratio=work_ratio(new_profile, profile, params,
                              x_new=best_x, x_old=x_before),
    )


def additive_work_ratios(profile: Profile, params: ModelParams,
                         phi: float) -> np.ndarray:
    """Table 4's column: work ratio from speeding up each computer in turn.

    Returns ``ratios[c] = W(L; P^(c))/W(L; P)`` where ``P^(c)`` speeds up
    computer ``c`` by φ.  Every entry exceeds 1 (Proposition 2) and the
    entries increase toward faster computers (Theorem 3).
    """
    if not (0.0 < phi < max_additive_term(profile)):
        raise InvalidParameterError(
            f"additive term must satisfy 0 < φ < ρₙ={max_additive_term(profile)!r}, "
            f"got {phi!r}")
    x_old = x_measure(profile, params)
    return np.array([
        work_ratio(apply_additive(profile, c, phi), profile, params, x_old=x_old)
        for c in range(profile.n)
    ])
