"""Ablation: expected work vs worker failure rate (extension).

The failure-resilience experiment crashes chosen workers
deterministically; here each worker fails independently at an
exponential rate and the Monte-Carlo mean of completed work is swept
across rates, for both result-sequencing policies.  The strict FIFO
contract's *tail risk* shows up as a rapidly growing probability of
losing the entire round, well before the mean looks bad under the
skip-recovery policy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.robustness import expected_work_under_failures
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.barchart import render_series
from repro.experiments.base import ExperimentResult, register
from repro.protocols.fifo import fifo_allocation

__all__ = ["run_failure_rate_sweep"]


@register("failure-rate-sweep")
def run_failure_rate_sweep(tau: float = 0.01, pi: float = 0.001,
                           delta: float = 1.0, lifespan: float = 50.0,
                           rates: Sequence[float] = (0.0, 0.002, 0.005, 0.01,
                                                     0.02, 0.05),
                           n_samples: int = 120,
                           seed: int = 41) -> ExperimentResult:
    """Sweep the failure rate; tabulate strict vs skip expected work."""
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    allocation = fifo_allocation(profile, params, lifespan)
    total = allocation.total_work

    rows = []
    strict_means = []
    for rate in rates:
        strict = expected_work_under_failures(
            allocation, rate, np.random.default_rng(seed), n_samples=n_samples)
        skip = expected_work_under_failures(
            allocation, rate, np.random.default_rng(seed), n_samples=n_samples,
            skip_failed_results=True)
        strict_means.append(100.0 * strict.mean / total)
        rows.append((
            rate,
            round(100.0 * strict.mean / total, 1),
            round(100.0 * strict.fraction_total_loss, 1),
            round(100.0 * skip.mean / total, 1),
            round(100.0 * skip.fraction_total_loss, 1),
        ))

    chart = render_series(list(rates), strict_means, x_label="failure rate",
                          y_label="strict mean completed %")
    return ExperimentResult(
        experiment_id="failure-rate-sweep",
        title="Expected work under random worker failures [extension]",
        headers=("rate", "strict mean %", "strict total-loss %",
                 "skip mean %", "skip total-loss %"),
        rows=rows,
        notes=(
            "identical failure draws feed both policies (same seed), so the "
            "columns differ only by the sequencing contract",
            "strict FIFO accumulates total-loss probability (one early crash "
            "forfeits the round); the skip heuristic's losses stay "
            "proportional to the dead quanta",
            f"profile ⟨1, 1/2, 1/3, 1/4⟩, τ={tau:g}, π={pi:g}, δ={delta:g}, "
            f"L={lifespan:g}, {n_samples} Monte-Carlo samples per cell",
        ),
        metadata={"strict_means_pct": strict_means, "total_work": total,
                  "figure_text": chart, "seed": seed},
    )
