"""Ablation: expected work vs worker failure rate (extension).

The failure-resilience experiment crashes chosen workers
deterministically; here each worker fails independently at an
exponential rate and the Monte-Carlo mean of completed work is swept
across rates, for both result-sequencing policies.  The strict FIFO
contract's *tail risk* shows up as a rapidly growing probability of
losing the entire round, well before the mean looks bad under the
skip-recovery policy.

Sharding
--------
The Monte-Carlo loop is embarrassingly parallel across trials, so the
experiment follows the :class:`~repro.experiments.base.ShardSpec`
contract: :func:`sweep_shards` cuts the trial budget into chunks, each
carrying its own child of ``np.random.SeedSequence(seed).spawn(...)``.
A shard draws one matrix of *base* unit-exponential failure times and
rescales it per rate (``times = base / rate``), so all rates — and both
policies — see comonotone failure draws, and the decomposition depends
only on the experiment kwargs, never on worker count: ``--jobs N`` is
row-for-row identical to ``--jobs 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.robustness import completed_work_for_failure_times
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ExperimentError
from repro.experiments.barchart import render_series
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.protocols.fifo import fifo_allocation

__all__ = ["run_failure_rate_sweep", "SweepBatch", "sweep_shards",
           "run_sweep_shard", "merge_sweep_batches", "SAMPLES_PER_SHARD"]

#: Shard granularity: trials per (chunk) cell.  Small enough that the
#: default run splits into several independent pieces for the pool.
SAMPLES_PER_SHARD = 40

_DEFAULT_RATES = (0.0, 0.002, 0.005, 0.01, 0.02, 0.05)


@dataclass(frozen=True)
class SweepBatch:
    """One chunk's completed-work samples, all rates × both policies.

    ``strict``/``skip`` have shape ``(chunk_trials, len(rates))``; the
    same failure draws feed both columns of a row.
    """

    rates: tuple[float, ...]
    strict: np.ndarray
    skip: np.ndarray

    @property
    def n_trials(self) -> int:
        return int(self.strict.shape[0])


def sweep_shards(*, tau: float, pi: float, delta: float, lifespan: float,
                 rates: Sequence[float], n_samples: int,
                 seed: int) -> list[dict]:
    """Canonical shard plan: trial chunks, each with a spawned seed."""
    if n_samples < 1:
        raise ExperimentError(f"n_samples must be >= 1, got {n_samples}")
    counts = [SAMPLES_PER_SHARD] * (n_samples // SAMPLES_PER_SHARD)
    if n_samples % SAMPLES_PER_SHARD:
        counts.append(n_samples % SAMPLES_PER_SHARD)
    shards = [{"tau": tau, "pi": pi, "delta": delta, "lifespan": lifespan,
               "rates": tuple(rates), "chunk_trials": count}
              for count in counts]
    for shard, seed_seq in zip(shards,
                               np.random.SeedSequence(seed).spawn(len(shards))):
        shard["seed_seq"] = seed_seq
    return shards


def run_sweep_shard(*, tau: float, pi: float, delta: float, lifespan: float,
                    rates: tuple[float, ...], chunk_trials: int,
                    seed_seq: np.random.SeedSequence) -> SweepBatch:
    """Execute one trial chunk (picklable worker entry point).

    One matrix of unit-exponential base draws serves every rate: the
    failure times for rate r are ``base / r`` (comonotone coupling), so
    the per-rate columns differ only by the rate, not by sampling noise.
    """
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    allocation = fifo_allocation(profile, params, lifespan)
    rng = np.random.default_rng(seed_seq)
    base = rng.exponential(1.0, size=(chunk_trials, profile.n))

    strict = np.empty((chunk_trials, len(rates)))
    skip = np.empty((chunk_trials, len(rates)))
    for j, rate in enumerate(rates):
        times = base / rate if rate > 0.0 else np.full_like(base, np.inf)
        strict[:, j] = completed_work_for_failure_times(allocation, times)
        skip[:, j] = completed_work_for_failure_times(
            allocation, times, skip_failed_results=True)
    return SweepBatch(rates=tuple(rates), strict=strict, skip=skip)


def merge_sweep_batches(batches: Sequence[SweepBatch]) -> SweepBatch:
    """Concatenate chunk batches in shard order."""
    if not batches:
        raise ExperimentError("cannot merge zero sweep batches")
    if len({b.rates for b in batches}) != 1:
        raise ExperimentError("cannot merge sweep batches of different rates")
    if len(batches) == 1:
        return batches[0]
    return SweepBatch(rates=batches[0].rates,
                      strict=np.concatenate([b.strict for b in batches]),
                      skip=np.concatenate([b.skip for b in batches]))


def _split_sweep(tau: float = 0.01, pi: float = 0.001, delta: float = 1.0,
                 lifespan: float = 50.0,
                 rates: Sequence[float] = _DEFAULT_RATES,
                 n_samples: int = 120, seed: int = 41) -> list[dict]:
    return sweep_shards(tau=tau, pi=pi, delta=delta, lifespan=lifespan,
                        rates=rates, n_samples=n_samples, seed=seed)


def _merge_sweep(payloads: Sequence[SweepBatch],
                 tau: float = 0.01, pi: float = 0.001, delta: float = 1.0,
                 lifespan: float = 50.0,
                 rates: Sequence[float] = _DEFAULT_RATES,
                 n_samples: int = 120, seed: int = 41) -> ExperimentResult:
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    allocation = fifo_allocation(profile, params, lifespan)
    total = allocation.total_work
    batch = merge_sweep_batches(payloads)

    rows = []
    strict_means = []
    tol = 1e-12
    for j, rate in enumerate(batch.rates):
        strict_mean = 100.0 * float(batch.strict[:, j].mean()) / total
        skip_mean = 100.0 * float(batch.skip[:, j].mean()) / total
        strict_loss = 100.0 * float(np.mean(batch.strict[:, j] <= tol))
        skip_loss = 100.0 * float(np.mean(batch.skip[:, j] <= tol))
        strict_means.append(strict_mean)
        rows.append((rate, round(strict_mean, 1), round(strict_loss, 1),
                     round(skip_mean, 1), round(skip_loss, 1)))

    chart = render_series(list(batch.rates), strict_means,
                          x_label="failure rate",
                          y_label="strict mean completed %")
    return ExperimentResult(
        experiment_id="failure-rate-sweep",
        title="Expected work under random worker failures [extension]",
        headers=("rate", "strict mean %", "strict total-loss %",
                 "skip mean %", "skip total-loss %"),
        rows=rows,
        notes=(
            "identical failure draws feed both policies and (rescaled) "
            "every rate, so the columns differ only by the sequencing "
            "contract and the rate itself",
            "strict FIFO accumulates total-loss probability (one early crash "
            "forfeits the round); the skip heuristic's losses stay "
            "proportional to the dead quanta",
            f"profile ⟨1, 1/2, 1/3, 1/4⟩, τ={tau:g}, π={pi:g}, δ={delta:g}, "
            f"L={lifespan:g}, {n_samples} Monte-Carlo samples per cell",
        ),
        metadata={"strict_means_pct": strict_means, "total_work": total,
                  "figure_text": chart, "seed": seed},
    )


FAILURE_RATE_SWEEP_SHARDS = ShardSpec(split=_split_sweep,
                                      runner=run_sweep_shard,
                                      merge=_merge_sweep)


@register("failure-rate-sweep", shardable=FAILURE_RATE_SWEEP_SHARDS)
def run_failure_rate_sweep(tau: float = 0.01, pi: float = 0.001,
                           delta: float = 1.0, lifespan: float = 50.0,
                           rates: Sequence[float] = _DEFAULT_RATES,
                           n_samples: int = 120,
                           seed: int = 41) -> ExperimentResult:
    """Sweep the failure rate; tabulate strict vs skip expected work.

    Defined as the merge of its shard plan (see the module docstring),
    so this sequential entry point and a parallel batch run agree
    bit-for-bit.
    """
    return run_sharded(FAILURE_RATE_SWEEP_SHARDS, tau=tau, pi=pi, delta=delta,
                       lifespan=lifespan, rates=tuple(rates),
                       n_samples=n_samples, seed=seed)
