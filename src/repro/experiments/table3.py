"""Table 3: HECRs of the two sample heterogeneous clusters (paper §2.5).

Cluster C₁ has the *linear* profile ρᵢ = 1 − (i−1)/n (speeds spread
evenly over [1/n, 1]); cluster C₂ has the *harmonic* profile ρᵢ = 1/i
(speeds weighted into the fast half).  The paper tabulates their HECRs
for n = 8, 16, 32 and reads off two facts: C₂ is the more powerful at
every size, and its advantage grows with n.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.hecr import hecr
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult, register

__all__ = ["run_table3", "PAPER_TABLE3_VALUES"]

#: The paper's printed HECR values, keyed by (cluster, n).
PAPER_TABLE3_VALUES = {
    ("C1", 8): 0.366, ("C1", 16): 0.298, ("C1", 32): 0.251,
    ("C2", 8): 0.216, ("C2", 16): 0.116, ("C2", 32): 0.060,
}


@register("table3")
def run_table3(params: ModelParams = PAPER_TABLE1,
               sizes: Sequence[int] = (8, 16, 32)) -> ExperimentResult:
    """Reproduce Table 3 and the HECR-ratio trend the paper narrates."""
    rows = []
    ratios = {}
    measured = {}
    for n in sizes:
        h1 = hecr(Profile.linear(n), params)
        h2 = hecr(Profile.harmonic(n), params)
        measured[("C1", n)] = h1
        measured[("C2", n)] = h2
        ratios[n] = h1 / h2
        rows.append((
            n,
            round(h1, 3), PAPER_TABLE3_VALUES.get(("C1", n), float("nan")),
            round(h2, 3), PAPER_TABLE3_VALUES.get(("C2", n), float("nan")),
            round(h1 / h2, 2),
        ))
    return ExperimentResult(
        experiment_id="table3",
        title="HECRs for sample heterogeneous clusters (paper Table 3)",
        headers=("n", "C1 (linear) HECR", "paper", "C2 (harmonic) HECR", "paper",
                 "HECR ratio C1/C2"),
        rows=rows,
        notes=(
            "C2's HECR is smaller (more powerful) at every size, and the "
            "C1/C2 ratio grows with n — the paper cites ≈1.7, ≈2.6, >4 for "
            "8, 16, 32 computers",
        ),
        metadata={"measured": measured, "ratios": ratios, "params": params},
    )
