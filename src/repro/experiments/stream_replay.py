"""Deterministic stream replay: calibration payoff across drift factors.

The acceptance scenario for the stream layer, run as a registered
experiment: a synthetic cluster whose second worker silently slows by a
``drift factor`` mid-stream is replayed through
:class:`~repro.stream.engine.StreamProcessor` twice — once calibrating,
once trusting the declared speeds — and the final window is re-planned
from each model and *executed against the true speeds* with the
closed-form timeline.  Three questions per factor:

* **Prediction** — one-step-ahead milestone MAPE of the calibrated fit
  vs the uncalibrated baseline in the final window;
* **Allocation** — completed work of the re-fit FIFO split vs the
  oracle split (the one a scheduler that *knew* the drift would plan),
  both executed on the true profile;
* **Determinism** — the sha256 digest over the run's full JSONL record
  stream, computed from two independent replays inside the shard (they
  must agree, or the shard raises).

Sharding
--------
Factors are independent, so each is one
:class:`~repro.experiments.base.ShardSpec` shard carrying its own child
of ``np.random.SeedSequence(seed).spawn(...)`` for the trace jitter.
The decomposition depends only on the kwargs, never on worker count:
``--jobs N`` is row-for-row identical to ``--jobs 1``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ExperimentError
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation
from repro.simulation.fastpath import analytic_simulation
from repro.stream.engine import StreamProcessor, record_to_line
from repro.stream.synthetic import synthetic_trace

__all__ = ["run_stream_replay", "ReplayCell", "replay_shards",
           "run_replay_shard", "merge_replay_cells"]

_DEFAULT_FACTORS = (1.0, 1.5, 2.0, 3.0)
_DEFAULT_PROFILE = (1.0, 0.5, 0.25, 0.125)

#: Planning slack when allocating from *estimated* speeds: the final
#: window is scheduled on this fraction of its span so an O(1%) ρ error
#: cannot push a completion past the deadline and forfeit the quantum.
_REFIT_MARGIN = 0.05


@dataclass(frozen=True)
class ReplayCell:
    """One drift factor's replay outcome (a shard payload)."""

    drift_factor: float
    windows: int
    events: int
    final_mape: float | None
    final_baseline_mape: float | None
    calibrated_ratio: float
    declared_ratio: float
    digest: str


def _replay(events, *, window: float, params: ModelParams, calibrate: bool,
            forget: float) -> list[dict]:
    processor = StreamProcessor(window, params=params, calibrate=calibrate,
                                forget=forget)
    records = list(processor.process(events))
    records.extend(processor.finish())
    return records


def _digest(records: Sequence[dict]) -> str:
    payload = "\n".join(record_to_line(r) for r in records)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _achieved_work(w_source: WorkAllocation, true_profile: Profile,
                   params: ModelParams, lifespan: float) -> float:
    """Execute a planned split against the *true* speeds; count what lands."""
    execution = WorkAllocation(
        profile=true_profile, params=params, lifespan=lifespan,
        w=w_source.w, startup_order=w_source.startup_order,
        finishing_order=w_source.finishing_order,
        protocol_name="refit-execution")
    return analytic_simulation(execution).completed_work


def replay_shards(*, tau: float = 1e-4, pi: float = 1e-3, delta: float = 1.0,
                  profile: Sequence[float] = _DEFAULT_PROFILE,
                  drift_factors: Sequence[float] = _DEFAULT_FACTORS,
                  drift_worker: int = 1, drift_window: int = 2,
                  windows: int = 10, window: float = 10.0, fill: float = 0.9,
                  jitter: float = 0.0, forget: float = 0.25,
                  seed: int = 47) -> list[dict]:
    """Canonical shard plan: one shard per drift factor, seeds in order."""
    if windows < drift_window + 2:
        raise ExperimentError(
            f"need at least {drift_window + 2} windows so the calibrator "
            f"sees the drift before the final window, got {windows}")
    factors = tuple(float(f) for f in drift_factors)
    if not factors:
        raise ExperimentError("drift_factors must be non-empty")
    if any(not math.isfinite(f) or f <= 0.0 for f in factors):
        raise ExperimentError(
            f"every drift factor must be positive and finite, "
            f"got {factors!r}")
    if not 0 <= drift_worker < len(tuple(profile)):
        raise ExperimentError(
            f"drift worker {drift_worker} outside the "
            f"{len(tuple(profile))}-worker profile")
    shards = [{"tau": tau, "pi": pi, "delta": delta,
               "profile": tuple(profile), "drift_factor": factor,
               "drift_worker": drift_worker, "drift_window": drift_window,
               "windows": windows, "window": window, "fill": fill,
               "jitter": jitter, "forget": forget}
              for factor in factors]
    for shard, seed_seq in zip(shards,
                               np.random.SeedSequence(seed).spawn(len(shards))):
        shard["seed_seq"] = seed_seq
    return shards


def run_replay_shard(*, tau: float, pi: float, delta: float,
                     profile: tuple[float, ...], drift_factor: float,
                     drift_worker: int, drift_window: int, windows: int,
                     window: float, fill: float, jitter: float, forget: float,
                     seed_seq: np.random.SeedSequence) -> ReplayCell:
    """Replay one drift factor (picklable worker entry point)."""
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    declared = Profile(list(profile))
    trace_seed = int(seed_seq.generate_state(1)[0])
    events = list(synthetic_trace(
        profile=declared, params=params, windows=windows, window=window,
        fill=fill, drift_worker=drift_worker, drift_factor=drift_factor,
        drift_window=drift_window, jitter=jitter, seed=trace_seed))

    calibrated = _replay(events, window=window, params=params,
                         calibrate=True, forget=forget)
    digest = _digest(calibrated)
    if _digest(_replay(events, window=window, params=params,
                       calibrate=True, forget=forget)) != digest:
        raise ExperimentError(
            f"stream replay is not deterministic at drift factor "
            f"{drift_factor:g}")

    window_records = [r for r in calibrated if r["kind"] == "window"]
    final = window_records[-1]["calibration"]
    # The fit available *before* the final window is what a live
    # scheduler would plan with — the penultimate window's snapshot.
    plan = window_records[-2]["calibration"]

    true_rho = np.array(profile, dtype=float)
    true_rho[drift_worker] *= drift_factor
    true_profile = Profile(true_rho)
    lifespan = window * fill
    oracle = fifo_allocation(true_profile, params, lifespan).total_work

    est_params = ModelParams(tau=plan["tau"], pi=plan["pi"],
                             delta=plan["delta"])
    est_profile = Profile([plan["rho"][str(i)] for i in range(len(profile))])
    refit = fifo_allocation(est_profile, est_params,
                            lifespan * (1.0 - _REFIT_MARGIN))
    declared_plan = fifo_allocation(declared, params,
                                    lifespan * (1.0 - _REFIT_MARGIN))

    return ReplayCell(
        drift_factor=drift_factor,
        windows=len(window_records),
        events=len(events),
        final_mape=final["mape"],
        final_baseline_mape=final["baseline_mape"],
        calibrated_ratio=_achieved_work(refit, true_profile, params,
                                        lifespan) / oracle,
        declared_ratio=_achieved_work(declared_plan, true_profile, params,
                                      lifespan) / oracle,
        digest=digest)


def merge_replay_cells(payloads: Sequence[ReplayCell],
                       **kwargs) -> ExperimentResult:
    """Tabulate the per-factor cells in shard order."""
    if not payloads:
        raise ExperimentError("cannot merge zero replay cells")
    rows = []
    for cell in payloads:
        mape = (round(100.0 * cell.final_mape, 3)
                if cell.final_mape is not None else None)
        base = (round(100.0 * cell.final_baseline_mape, 3)
                if cell.final_baseline_mape is not None else None)
        rows.append((cell.drift_factor, mape, base,
                     round(100.0 * cell.calibrated_ratio, 1),
                     round(100.0 * cell.declared_ratio, 1),
                     cell.digest[:12]))
    return ExperimentResult(
        experiment_id="stream-replay",
        title="Online calibration payoff under mid-stream speed drift "
              "[extension]",
        headers=("drift", "MAPE %", "baseline MAPE %", "refit W %",
                 "declared W %", "digest"),
        rows=rows,
        notes=(
            "each row replays the same synthetic trace twice inside its "
            "shard and asserts the JSONL record digests agree — the table "
            "is a determinism witness, not just a summary",
            "W columns execute the re-fit (resp. declared) FIFO split on "
            "the true post-drift speeds and report completed work as a "
            "percentage of the oracle split's",
            f"worker {kwargs.get('drift_worker', 1)} slows by the drift "
            f"factor from window {kwargs.get('drift_window', 2)} on; "
            f"profile ⟨{', '.join(f'{r:g}' for r in kwargs.get('profile', _DEFAULT_PROFILE))}⟩",
        ),
        metadata={
            "drift_factors": [c.drift_factor for c in payloads],
            "final_mape": [c.final_mape for c in payloads],
            "final_baseline_mape": [c.final_baseline_mape for c in payloads],
            "calibrated_ratio": [c.calibrated_ratio for c in payloads],
            "declared_ratio": [c.declared_ratio for c in payloads],
            "digests": [c.digest for c in payloads],
            "seed": kwargs.get("seed"),
        })


STREAM_REPLAY_SHARDS = ShardSpec(split=replay_shards,
                                 runner=run_replay_shard,
                                 merge=merge_replay_cells)


@register("stream-replay", shardable=STREAM_REPLAY_SHARDS)
def run_stream_replay(tau: float = 1e-4, pi: float = 1e-3, delta: float = 1.0,
                      profile: Sequence[float] = _DEFAULT_PROFILE,
                      drift_factors: Sequence[float] = _DEFAULT_FACTORS,
                      drift_worker: int = 1, drift_window: int = 2,
                      windows: int = 10, window: float = 10.0,
                      fill: float = 0.9, jitter: float = 0.0,
                      forget: float = 0.25,
                      seed: int = 47) -> ExperimentResult:
    """Replay drifting traces; tabulate calibrated vs declared planning.

    Defined as the merge of its shard plan (one shard per drift factor),
    so this sequential entry point and a parallel batch run agree
    bit-for-bit.
    """
    return run_sharded(STREAM_REPLAY_SHARDS, tau=tau, pi=pi, delta=delta,
                       profile=tuple(profile),
                       drift_factors=tuple(drift_factors),
                       drift_worker=drift_worker, drift_window=drift_window,
                       windows=windows, window=window, fill=fill,
                       jitter=jitter, forget=forget, seed=seed)
