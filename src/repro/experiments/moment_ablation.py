"""Ablation: which statistical moment best predicts cluster power?

The paper closes conjecturing "a similarly large role for the
statistical moments" and defers the study to the companion paper [13].
This experiment runs that study: on the same equal-mean pair stream as
the §4.3 trials, it scores every predictor in
:data:`repro.predictors.variance.MOMENT_PREDICTORS` — variance,
geometric mean, harmonic mean, fastest-machine rate — across cluster
sizes, and reports which moment wins where.

The headline (stable across samplers and sizes): the *harmonic mean*
is a near-perfect predictor — unsurprising once seen, since the
harmonic mean is ``n/Σ(1/ρᵢ)``, and ``Σ 1/ρᵢ`` (the cluster's total
speed) is exactly the communication-free limit of X.  The geometric
mean (``F_n^{1/n}``, the top symmetric function) comes second, and the
paper's variance predictor last: X rewards the *presence of fast
machines* more than it rewards spread per se, which is also why the
§4.3 "bad pairs" exist at all.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import ExperimentResult, register
from repro.experiments.variance_trials import collect_trials
from repro.predictors.variance import MOMENT_PREDICTORS

__all__ = ["run_moment_ablation"]


@register("moment-ablation")
def run_moment_ablation(params: ModelParams = PAPER_TABLE1,
                        sizes: Sequence[int] = (4, 16, 64, 256),
                        trials_per_size: int = 300,
                        seed: int = 13,
                        strategy: str = "mixed") -> ExperimentResult:
    """Score every moment predictor on the §4.3 trial stream."""
    rng = np.random.default_rng(seed)
    names = list(MOMENT_PREDICTORS)
    rows = []
    totals: dict[str, list[float]] = {name: [] for name in names}
    for n in sizes:
        batch = collect_trials(rng, n, trials_per_size, params,
                               strategy=strategy)
        row = [n]
        for name in names:
            score = batch.predictor_scores[name]
            totals[name].append(score)
            row.append(round(100.0 * score, 1))
        rows.append(tuple(row))

    means = {name: float(np.mean(scores)) for name, scores in totals.items()}
    best = max(means, key=means.get)
    return ExperimentResult(
        experiment_id="moment-ablation",
        title="Which moment of the profile predicts power best? [extension]",
        headers=("n", *[f"{name} %" for name in names]),
        rows=rows,
        notes=(
            f"best overall predictor: {best} "
            f"({100 * means[best]:.1f}% mean accuracy)",
            "the harmonic mean n/Σ(1/ρ) is a near-perfect predictor: Σ 1/ρ "
            "is the communication-free limit of X itself; the geometric "
            "mean comes second and the paper's Theorem-5 variance last — "
            "X rewards fast machines more than spread per se",
            f"sampler: {strategy}; {trials_per_size} pairs per size, "
            f"seed {seed}",
        ),
        metadata={"mean_scores": means, "best": best, "seed": seed,
                  "params": params},
    )
