"""Proactive redundancy vs detect→reschedule across a fault-rate grid.

Head-to-head comparison of the two fault postures this codebase can
run: reactive multi-round recovery
(:func:`~repro.faults.recovery.simulate_with_recovery`) against
proactive replication-r and MDS provisioning (:mod:`repro.coded`).  At
each crash rate of the grid, every policy sees the *same* materialised
fault scenario (identical timelines and channel draws per trial), so
the rows differ only by the posture — the comonotone-coupling trick of
the failure-rate sweep applied across recovery machinery instead of
sequencing policies.

Per ``(rate, policy)`` cell the experiment reports completed useful
work, mean makespan, the work-weighted **p99 quantum latency** (each
quantum contributes its completion instant weighted by its useful
work; quanta that never complete are censored at the lifespan — the
measure under which the coded literature claims its win), and the
waste fraction ``1 − completed/sent`` (redundant shares for the coded
schemes, re-dispatched quanta for recovery).

Sharding
--------
One shard per fault rate, each carrying its own child of
``np.random.SeedSequence(seed).spawn(...)`` from which per-trial
scenario seeds are drawn — the :class:`~repro.experiments.base.ShardSpec`
contract, so ``--jobs N`` is row-for-row identical to ``--jobs 1`` and
every cell replays bit-identically from the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.coded.schemes import (DEFAULT_MARGIN, MDSScheme,
                                 RedundancyScheme, ReplicationScheme,
                                 scheme_from_spec)
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import ExperimentError
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.faults.models import ChannelLoss
from repro.faults.recovery import RecoveryPolicy, simulate_with_recovery
from repro.faults.spec import FaultScenario, parse_faults
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation

__all__ = ["run_coded_resilience", "CodedCell", "coded_shards",
           "run_coded_shard", "CODED_RESILIENCE_SHARDS"]

_DEFAULT_RATES = (0.0, 0.005, 0.01, 0.02)
_DEFAULT_LOSS = 0.02


@dataclass(frozen=True)
class CodedCell:
    """One fault rate's aggregated per-policy metrics (shard payload).

    ``rows`` holds ``(policy, completed_pct, makespan, p99, waste_pct)``
    tuples in policy order, unrounded.
    """

    rate: float
    rows: tuple[tuple[str, float, float, float, float], ...]


def _weighted_percentile(samples: list[tuple[float, float]],
                         q: float) -> float:
    """The q-quantile of a work-weighted latency sample set."""
    if not samples:
        return 0.0
    samples = sorted(samples)
    total = sum(w for _, w in samples)
    if total <= 0.0:
        return 0.0
    acc = 0.0
    for t, w in samples:
        acc += w
        if acc >= q * total - 1e-12 * total:
            return t
    return samples[-1][0]


def _base_scenario(faults: str | None) -> FaultScenario:
    if faults is not None:
        return parse_faults(faults)
    return FaultScenario(channel=ChannelLoss(p_loss=_DEFAULT_LOSS))


def _policy_schemes(scheme: str | None) -> list[RedundancyScheme]:
    if scheme is None:
        return [ReplicationScheme(2), MDSScheme(3, 4)]
    return [scheme_from_spec(scheme)]


def _run_recovery_trial(alloc: WorkAllocation, materialized,
                        policy: RecoveryPolicy
                        ) -> tuple[float, float, float, list]:
    """(completed, sent, makespan, latency samples) for one recovery run."""
    outcome = simulate_with_recovery(alloc, materialized, policy=policy,
                                     results_policy="greedy")
    lifespan = alloc.lifespan
    sent = sum(r.allocation.total_work for r in outcome.rounds)
    samples: list[tuple[float, float]] = []
    # Reconstruct each round's wall-clock offset exactly as the recovery
    # loop charged it: a non-final round consumes min(round lifespan,
    # makespan + detection timeout) before the next round starts.
    offset = 0.0
    for i, rnd in enumerate(outcome.rounds):
        for rec in rnd.records:
            if rec.completed:
                samples.append((min(offset + rec.result_end, lifespan),
                                rec.work))
        if i + 1 < len(outcome.rounds):
            offset += min(rnd.allocation.lifespan,
                          rnd.makespan + policy.detection_timeout)
    if outcome.telemetry.work_lost > 0.0:
        samples.append((lifespan, outcome.telemetry.work_lost))
    makespan = min(outcome.telemetry.elapsed, lifespan)
    return outcome.completed_work, sent, makespan, samples


def _run_coded_trial(plan, materialized
                     ) -> tuple[float, float, float, list]:
    """(completed, sent, makespan, latency samples) for one coded run."""
    # Imported lazily: the collector pulls in the simulation runner,
    # which this module otherwise does not need at import time.
    from repro.coded.collector import simulate_coded

    outcome = simulate_coded(plan, materialized)
    lifespan = plan.allocation.lifespan
    samples = []
    for status in outcome.statuses:
        if status.completed:
            samples.append((min(status.completion_time, lifespan),
                            status.quantum.work))
        else:
            samples.append((lifespan, status.quantum.work))
    return (outcome.completed_work, plan.allocation.total_work,
            outcome.makespan, samples)


def coded_shards(*, tau: float, pi: float, delta: float, lifespan: float,
                 n: int, rates: Sequence[float], trials: int, margin: float,
                 faults: str | None, scheme: str | None,
                 seed: int) -> list[dict]:
    """Canonical shard plan: one shard per fault rate, each seeded."""
    if trials < 1:
        raise ExperimentError(f"trials must be >= 1, got {trials}")
    if n < 2:
        raise ExperimentError(f"n must be >= 2, got {n}")
    if not rates:
        raise ExperimentError("rates must be non-empty")
    _base_scenario(faults)          # fail fast on a malformed spec
    _policy_schemes(scheme)         # ... and on a malformed scheme
    shards = [{"tau": tau, "pi": pi, "delta": delta, "lifespan": lifespan,
               "n": n, "rate": float(rate), "trials": trials,
               "margin": margin, "faults": faults, "scheme": scheme}
              for rate in rates]
    for shard, seed_seq in zip(shards,
                               np.random.SeedSequence(seed).spawn(len(shards))):
        shard["seed_seq"] = seed_seq
    return shards


def run_coded_shard(*, tau: float, pi: float, delta: float, lifespan: float,
                    n: int, rate: float, trials: int, margin: float,
                    faults: str | None, scheme: str | None,
                    seed_seq: np.random.SeedSequence) -> CodedCell:
    """Execute one fault rate's trials (picklable worker entry point)."""
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    profile = Profile.harmonic(n)
    base = _base_scenario(faults)
    schemes = _policy_schemes(scheme)
    recovery_policy = RecoveryPolicy()

    # The recovery posture runs the same margin-provisioned FIFO layout
    # the failure-resilience experiment uses: allocate for margin·L,
    # judge against the full L, greedy sequencing.
    fifo_plan = fifo_allocation(profile, params, margin * lifespan)
    recovery_alloc = WorkAllocation(
        profile=profile, params=params, lifespan=lifespan, w=fifo_plan.w,
        startup_order=fifo_plan.startup_order,
        finishing_order=fifo_plan.finishing_order,
        protocol_name="fifo-margin")
    plans = [s.plan(profile, params, lifespan, margin=margin)
             for s in schemes]

    policies = ["recovery"] + [s.label for s in schemes]
    completed = {p: 0.0 for p in policies}
    sent = {p: 0.0 for p in policies}
    makespans = {p: 0.0 for p in policies}
    latencies: dict[str, list[tuple[float, float]]] = {p: [] for p in policies}

    rng = np.random.default_rng(seed_seq)
    trial_seeds = rng.integers(0, 2**31 - 1, size=trials)
    for t in range(trials):
        scenario = replace(base, crash_rate=rate, seed=int(trial_seeds[t]))
        materialized = scenario.materialize(n, lifespan)
        done, disp, mk, samples = _run_recovery_trial(
            recovery_alloc, materialized, recovery_policy)
        completed["recovery"] += done
        sent["recovery"] += disp
        makespans["recovery"] += mk
        latencies["recovery"].extend(samples)
        for s, plan in zip(schemes, plans):
            done, disp, mk, samples = _run_coded_trial(plan, materialized)
            completed[s.label] += done
            sent[s.label] += disp
            makespans[s.label] += mk
            latencies[s.label].extend(samples)

    useful_total = {"recovery": trials * recovery_alloc.total_work}
    for s, plan in zip(schemes, plans):
        useful_total[s.label] = trials * plan.useful_work

    rows = []
    for p in policies:
        completed_pct = 100.0 * completed[p] / useful_total[p]
        waste_pct = (100.0 * (1.0 - completed[p] / sent[p])
                     if sent[p] > 0.0 else 0.0)
        p99 = _weighted_percentile(latencies[p], 0.99)
        rows.append((p, completed_pct, makespans[p] / trials, p99, waste_pct))
    return CodedCell(rate=rate, rows=tuple(rows))


def _split_coded(tau: float = 0.01, pi: float = 0.001, delta: float = 1.0,
                 lifespan: float = 60.0, n: int = 8,
                 rates: Sequence[float] = _DEFAULT_RATES, trials: int = 6,
                 margin: float = DEFAULT_MARGIN, faults: str | None = None,
                 scheme: str | None = None, seed: int = 83) -> list[dict]:
    return coded_shards(tau=tau, pi=pi, delta=delta, lifespan=lifespan, n=n,
                        rates=tuple(rates), trials=trials, margin=margin,
                        faults=faults, scheme=scheme, seed=seed)


def _merge_coded(payloads: Sequence[CodedCell],
                 tau: float = 0.01, pi: float = 0.001, delta: float = 1.0,
                 lifespan: float = 60.0, n: int = 8,
                 rates: Sequence[float] = _DEFAULT_RATES, trials: int = 6,
                 margin: float = DEFAULT_MARGIN, faults: str | None = None,
                 scheme: str | None = None, seed: int = 83) -> ExperimentResult:
    if not payloads:
        raise ExperimentError("cannot merge zero coded-resilience cells")
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    policies = [row[0] for row in payloads[0].rows]
    rows = []
    p99_by_policy: dict[str, list[float]] = {p: [] for p in policies}
    waste_by_policy: dict[str, list[float]] = {p: [] for p in policies}
    completed_by_policy: dict[str, list[float]] = {p: [] for p in policies}
    for cell in payloads:
        for policy, completed_pct, makespan, p99, waste_pct in cell.rows:
            rows.append((cell.rate, policy, round(completed_pct, 1),
                         round(makespan, 2), round(p99, 2),
                         round(waste_pct, 1)))
            p99_by_policy[policy].append(p99)
            waste_by_policy[policy].append(waste_pct)
            completed_by_policy[policy].append(completed_pct)
    base_desc = faults if faults is not None else f"loss:{_DEFAULT_LOSS:g}"
    return ExperimentResult(
        experiment_id="coded-resilience",
        title="Proactive redundancy vs detect→reschedule recovery "
              "[extension]",
        headers=("crash rate", "policy", "completed %", "makespan",
                 "p99 latency", "waste %"),
        rows=rows,
        notes=(
            "every policy sees the same materialised scenario per trial "
            "(identical crash timelines and channel draws), so rows "
            "differ only by the fault posture",
            "p99 latency is work-weighted over quanta, censored at L for "
            "quanta that never complete — the tail measure the coded-"
            "computation literature optimises",
            "waste % is 1 - completed/sent: redundant shares for the "
            "coded schemes, re-dispatched quanta for recovery",
            f"profile harmonic({n}), τ={tau:g}, π={pi:g}, δ={delta:g}, "
            f"L={lifespan:g}, margin={margin:g}, base scenario "
            f"[{base_desc}], {trials} trials/cell",
        ),
        metadata={"rates": [float(r) for r in rates], "policies": policies,
                  "p99_by_policy": p99_by_policy,
                  "waste_pct_by_policy": waste_by_policy,
                  "completed_pct_by_policy": completed_by_policy,
                  "seed": seed, "params": params},
    )


CODED_RESILIENCE_SHARDS = ShardSpec(split=_split_coded,
                                    runner=run_coded_shard,
                                    merge=_merge_coded)


@register("coded-resilience", shardable=CODED_RESILIENCE_SHARDS)
def run_coded_resilience(tau: float = 0.01, pi: float = 0.001,
                         delta: float = 1.0, lifespan: float = 60.0,
                         n: int = 8,
                         rates: Sequence[float] = _DEFAULT_RATES,
                         trials: int = 6, margin: float = DEFAULT_MARGIN,
                         faults: str | None = None,
                         scheme: str | None = None,
                         seed: int = 83) -> ExperimentResult:
    """Compare recovery vs replication-r vs MDS across a fault-rate grid.

    ``faults`` optionally replaces the default base scenario (2% channel
    loss) — its crash rate, if any, is overridden by each grid rate.
    ``scheme`` restricts the coded side to one scheme (``--scheme``
    grammar); the default runs replication-2 and mds-3/4.  Defined as
    the merge of its shard plan, so this sequential entry point and a
    parallel batch run agree bit-for-bit.
    """
    return run_sharded(CODED_RESILIENCE_SHARDS, tau=tau, pi=pi, delta=delta,
                       lifespan=lifespan, n=n, rates=tuple(rates),
                       trials=trials, margin=margin, faults=faults,
                       scheme=scheme, seed=seed)
