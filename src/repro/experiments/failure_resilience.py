"""Ablation: failure resilience of FIFO worksharing (extension).

The FIFO protocol's optimality rests on a strict finishing-order
contract, which buys throughput but concentrates risk: a worker that
dies before delivering stalls *every* result queued behind it.  This
experiment crashes each computer in turn at the midpoint of its busy
period and tabulates the work salvaged under (a) the strict protocol
and (b) a skip-the-dead recovery heuristic — quantifying a fragility
the paper's asymptotic analysis abstracts away.
"""

from __future__ import annotations

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult, register
from repro.protocols.fifo import fifo_allocation
from repro.protocols.timeline import build_timeline
from repro.simulation.runner import simulate_allocation

__all__ = ["run_failure_resilience"]


@register("failure-resilience")
def run_failure_resilience(tau: float = 0.02, pi: float = 0.002,
                           delta: float = 1.0,
                           lifespan: float = 60.0) -> ExperimentResult:
    """Crash each computer mid-busy-period; tabulate the salvage rates."""
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    alloc = fifo_allocation(profile, params, lifespan)
    timeline = build_timeline(alloc)
    total = alloc.total_work

    rows = []
    strict_salvages = []
    for c in range(profile.n):
        busy = [iv for iv in timeline.for_computer(c) if iv.kind == "busy"][0]
        crash = 0.5 * (busy.start + busy.end)
        strict = simulate_allocation(alloc, failures={c: crash})
        skip = simulate_allocation(alloc, failures={c: crash},
                                   skip_failed_results=True)
        strict_pct = 100.0 * strict.completed_work / total
        skip_pct = 100.0 * skip.completed_work / total
        strict_salvages.append(strict_pct)
        rows.append((f"C{c + 1}", round(float(profile.rho[c]), 4),
                     c + 1, round(strict_pct, 1), round(skip_pct, 1)))

    return ExperimentResult(
        experiment_id="failure-resilience",
        title="What one mid-round crash costs FIFO worksharing [extension]",
        headers=("crashed", "rho", "finishing position", "strict salvage %",
                 "skip-recovery salvage %"),
        rows=rows,
        notes=(
            "strict FIFO loses everything queued behind the failure: a "
            "crash of the FIRST finisher forfeits the whole round, while "
            "the LAST finisher's crash costs only its own quantum",
            "the skip heuristic always salvages all but the dead quantum — "
            "the gap is the price of the finishing-order contract",
            f"profile ⟨1, 1/2, 1/3, 1/4⟩, τ={tau:g}, π={pi:g}, δ={delta:g}, "
            f"L={lifespan:g}",
        ),
        metadata={"strict_salvage_pct": strict_salvages,
                  "total_work": total, "params": params},
    )
