"""Ablation: failure resilience of FIFO worksharing (extension).

The FIFO protocol's optimality rests on a strict finishing-order
contract, which buys throughput but concentrates risk: a worker that
dies before delivering stalls *every* result queued behind it.  This
experiment crashes each computer in turn at the midpoint of its busy
period and tabulates the work salvaged under (a) the strict protocol
and (b) a skip-the-dead recovery heuristic — quantifying a fragility
the paper's asymptotic analysis abstracts away.

With a *fault scenario* (the ``--faults`` grammar or a
:class:`~repro.faults.spec.FaultScenario`), the experiment changes
shape: instead of the one-crash-per-row sweep it runs the given mix of
transient/straggler/channel faults under the strict contract, the
skip-the-dead heuristic, and full multi-round recovery
(:func:`~repro.faults.recovery.simulate_with_recovery`), tabulating one
row per policy with the recovery telemetry alongside.  Because the
paper's FIFO allocation saturates the lifespan exactly (zero slack, so
*any* delay forfeits work and leaves no residual time to recover in),
the fault mode provisions headroom: it allocates for ``margin · L`` and
judges completion against the full ``L``, with work-conserving (greedy)
result sequencing — the posture a fault-tolerant operator would
actually run.  Scenario materialisation is seeded, so the rows are
bit-identical under any ``--jobs`` count.
"""

from __future__ import annotations

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult, register
from repro.faults.recovery import RecoveryPolicy, simulate_with_recovery
from repro.faults.spec import FaultScenario, parse_faults
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation
from repro.protocols.timeline import build_timeline
from repro.simulation.runner import simulate_allocation

__all__ = ["run_failure_resilience"]


@register("failure-resilience")
def run_failure_resilience(tau: float = 0.02, pi: float = 0.002,
                           delta: float = 1.0,
                           lifespan: float = 60.0,
                           faults: "str | FaultScenario | None" = None,
                           margin: float = 0.8) -> ExperimentResult:
    """Crash each computer mid-busy-period; tabulate the salvage rates.

    With ``faults`` given, run that scenario under the three policies
    instead (see the module docstring); ``margin`` is the fault mode's
    provisioning headroom and is ignored otherwise.
    """
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    if faults is not None:
        plan = fifo_allocation(profile, params, margin * lifespan)
        alloc = WorkAllocation(profile=profile, params=params,
                               lifespan=lifespan, w=plan.w,
                               startup_order=plan.startup_order,
                               finishing_order=plan.finishing_order,
                               protocol_name="fifo-margin")
        return _run_fault_scenario(alloc, params, faults, margin)
    alloc = fifo_allocation(profile, params, lifespan)
    timeline = build_timeline(alloc)
    total = alloc.total_work

    rows = []
    strict_salvages = []
    for c in range(profile.n):
        busy = [iv for iv in timeline.for_computer(c) if iv.kind == "busy"]
        if not busy:
            # The allocation gave this computer no busy period (tiny
            # lifespan or zero quantum): there is nothing to crash and
            # nothing to salvage — report the zero-salvage row rather
            # than dying on busy[0].
            strict_salvages.append(0.0)
            rows.append((f"C{c + 1}", round(float(profile.rho[c]), 4),
                         c + 1, 0.0, 0.0))
            continue
        crash = 0.5 * (busy[0].start + busy[0].end)
        strict = simulate_allocation(alloc, failures={c: crash})
        skip = simulate_allocation(alloc, failures={c: crash},
                                   skip_failed_results=True)
        strict_pct = 100.0 * strict.completed_work / total
        skip_pct = 100.0 * skip.completed_work / total
        strict_salvages.append(strict_pct)
        rows.append((f"C{c + 1}", round(float(profile.rho[c]), 4),
                     c + 1, round(strict_pct, 1), round(skip_pct, 1)))

    return ExperimentResult(
        experiment_id="failure-resilience",
        title="What one mid-round crash costs FIFO worksharing [extension]",
        headers=("crashed", "rho", "finishing position", "strict salvage %",
                 "skip-recovery salvage %"),
        rows=rows,
        notes=(
            "strict FIFO loses everything queued behind the failure: a "
            "crash of the FIRST finisher forfeits the whole round, while "
            "the LAST finisher's crash costs only its own quantum",
            "the skip heuristic always salvages all but the dead quantum — "
            "the gap is the price of the finishing-order contract",
            f"profile ⟨1, 1/2, 1/3, 1/4⟩, τ={tau:g}, π={pi:g}, δ={delta:g}, "
            f"L={lifespan:g}",
        ),
        metadata={"strict_salvage_pct": strict_salvages,
                  "total_work": total, "params": params},
    )


def _run_fault_scenario(alloc, params: ModelParams,
                        faults: "str | FaultScenario",
                        margin: float) -> ExperimentResult:
    """The ``--faults`` mode: one row per recovery policy."""
    scenario = parse_faults(faults) if isinstance(faults, str) else faults
    materialized = scenario.materialize(alloc.n, alloc.lifespan)
    total = alloc.total_work

    strict = simulate_allocation(alloc, faults=materialized,
                                 results_policy="greedy")
    skip = simulate_allocation(alloc, faults=materialized,
                               results_policy="greedy",
                               skip_failed_results=True)
    outcome = simulate_with_recovery(alloc, materialized,
                                     policy=RecoveryPolicy(),
                                     results_policy="greedy")
    telemetry = outcome.telemetry

    def pct(work: float) -> float:
        return round(100.0 * work / total, 1)

    rows = [
        ("strict", pct(strict.completed_work), 1, 0,
         strict.retransmits, strict.messages_lost, 0.0),
        ("skip-failed", pct(skip.completed_work), 1, 0,
         skip.retransmits, skip.messages_lost, 0.0),
        ("recovery", pct(outcome.completed_work), telemetry.rounds,
         telemetry.retries, telemetry.retransmits, telemetry.messages_lost,
         round(telemetry.work_recovered, 4)),
    ]
    return ExperimentResult(
        experiment_id="failure-resilience",
        title="Fault scenario under strict / skip / multi-round recovery "
              "[extension]",
        headers=("policy", "completed %", "rounds", "retries", "retransmits",
                 "messages lost", "work recovered"),
        rows=rows,
        notes=(
            "same materialised fault scenario feeds all three policies, so "
            "the rows differ only by the server's recovery machinery",
            "recovery reallocates lost quanta across survivors with the "
            "FIFO allocator on the residual lifespan (multi-round)",
            f"allocation provisioned with {margin:g}·L headroom, greedy "
            f"result sequencing (see module docstring)",
            f"faults injected: {materialized.faults_injected}; "
            f"crashed computers: {list(outcome.crashed_computers)}",
        ),
        metadata={"total_work": total, "params": params, "margin": margin,
                  "faults_injected": materialized.faults_injected,
                  "recovery": telemetry.as_dict()},
    )
