"""Theorem 1 made empirical: FIFO optimality and order-invariance.

The paper *uses* Theorem 1 (from [1]) rather than re-proving it; since
we built the full protocol machinery, we can check it computationally:

1. **Order invariance** — FIFO production under many random startup
   orders agrees to rounding error.
2. **Optimality** — the LP optimum over non-FIFO (Σ, Φ) pairs (LIFO and
   random permutations) never beats FIFO.
3. **The FIFO premium** — how much work LIFO leaves on the table as the
   communication intensity τ grows (the ablation the paper's framework
   implies but never plots).
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

import numpy as np

from repro.core.measure import work_production
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult, register
from repro.protocols.fifo import fifo_allocation, fifo_saturation_index
from repro.protocols.general import lp_allocation_many
from repro.protocols.lifo import lifo_allocation

__all__ = ["run_protocol_optimality"]


@register("protocol-optimality")
def run_protocol_optimality(
        taus: Sequence[float] = (1e-6, 1e-3, 1e-2, 5e-2, 1e-1),
        pi: float = 1e-5, delta: float = 1.0,
        lifespan: float = 100.0,
        seed: int = 1) -> ExperimentResult:
    """Quantify the FIFO premium across communication intensities."""
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    rng = np.random.default_rng(seed)
    rows = []
    max_violation = 0.0
    for tau in taus:
        params = ModelParams(tau=tau, pi=pi, delta=delta)
        if fifo_saturation_index(profile, params) > 1.0:
            continue  # outside the regime where the Fig.-2 layout exists
        fifo_work = fifo_allocation(profile, params, lifespan).total_work
        lifo_work = lifo_allocation(profile, params, lifespan).total_work
        analytic = work_production(profile, params, lifespan)

        # FIFO order invariance over all 24 startup orders.
        fifo_all = [fifo_allocation(profile, params, lifespan, order).total_work
                    for order in permutations(range(profile.n))]
        spread = (max(fifo_all) - min(fifo_all)) / fifo_work

        # Best non-FIFO protocol over random (Σ, Φ) pairs.  All 10 pairs
        # are drawn up front (the draw sequence matches the historical
        # one-LP-per-draw loop) and solved as one batch.
        pairs = []
        for _ in range(10):
            sigma = tuple(rng.permutation(profile.n).tolist())
            phi = tuple(rng.permutation(profile.n).tolist())
            if sigma == phi:
                continue
            pairs.append((sigma, phi))
        best_other = lifo_work
        for alloc in lp_allocation_many(profile, params, lifespan, pairs):
            best_other = max(best_other, alloc.total_work)
        max_violation = max(max_violation, best_other - fifo_work)

        rows.append((
            tau,
            round(fifo_work, 4),
            round(analytic, 4),
            round(lifo_work, 4),
            round(fifo_work / lifo_work, 6),
            f"{spread:.2e}",
            "no" if best_other <= fifo_work * (1 + 1e-9) else "YES",
        ))
    return ExperimentResult(
        experiment_id="protocol-optimality",
        title="Theorem 1 empirically: FIFO is optimal and order-invariant",
        headers=("tau", "FIFO work", "analytic W(L;P)", "LIFO work",
                 "FIFO/LIFO", "order spread", "any protocol beat FIFO?"),
        rows=rows,
        notes=(
            "FIFO matches the analytic optimum and no sampled (Σ, Φ) protocol "
            "exceeds it; the FIFO premium over LIFO grows with communication "
            "intensity τ",
            f"profile ⟨1, 1/2, 1/3, 1/4⟩, π={pi:g}, δ={delta:g}, L={lifespan:g}",
        ),
        metadata={"max_violation": max_violation, "lifespan": lifespan},
    )
