"""Structured export of experiment results (JSON / CSV).

Downstream users rarely want ASCII tables; these helpers serialise an
:class:`~repro.experiments.base.ExperimentResult` losslessly enough to
plot or diff.  NumPy scalars/arrays, Fractions, enums, dataclasses and
the library's own value objects are converted to plain JSON types;
anything else falls back to ``str``.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from enum import Enum
from fractions import Fraction
from typing import Any

import numpy as np

from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult

__all__ = ["result_to_json", "result_to_csv", "jsonable", "NONFINITE_KEY",
           "nonfinite_to_float"]

#: Marker key of the sentinel object a non-finite float serialises to.
#: ``{"__nonfinite__": "nan" | "inf" | "-inf"}`` survives strict JSON
#: (``allow_nan=False``) and is restored to the float by
#: :func:`repro.io.result_from_dict` — no silent NaN→null data loss.
NONFINITE_KEY = "__nonfinite__"

_NONFINITE_NAMES = {float("inf"): "inf", float("-inf"): "-inf"}


def nonfinite_to_float(value: Any) -> float | None:
    """The float a non-finite sentinel dict encodes, or None if it is
    not one."""
    if isinstance(value, dict) and set(value) == {NONFINITE_KEY} \
            and value[NONFINITE_KEY] in ("nan", "inf", "-inf"):
        return float(value[NONFINITE_KEY])
    return None


def jsonable(value: Any) -> Any:
    """Convert ``value`` into something ``json.dumps`` accepts.

    Conversion rules, in order: None/bool/int/float/str pass through
    (non-finite floats become ``{"__nonfinite__": ...}`` sentinels so
    strict JSON round-trips them); NumPy scalars/arrays become Python
    scalars/lists; Fractions become floats (their ``str`` form is kept
    alongside nothing — callers who need exactness should export before
    converting); Enums become their values; Profiles become ρ-lists;
    dataclasses become dicts; mappings and sequences convert
    recursively; everything else becomes ``str``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value:
            return {NONFINITE_KEY: "nan"}
        if value in _NONFINITE_NAMES:
            return {NONFINITE_KEY: _NONFINITE_NAMES[value]}
        return value
    if isinstance(value, np.generic):
        return jsonable(value.item())
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, Fraction):
        return float(value)
    if isinstance(value, Enum):
        return jsonable(value.value)
    if isinstance(value, Profile):
        return [float(r) for r in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return str(value)


def result_to_json(result: ExperimentResult, *, indent: int = 2) -> str:
    """Serialise a result (rows + notes + metadata) as a JSON document.

    The payload shape is owned by :func:`repro.io.result_to_dict` so the
    CLI, pipelines and this helper agree on one schema.
    """
    from repro.io import result_to_dict
    return json.dumps(result_to_dict(result), indent=indent, allow_nan=False)


def result_to_csv(result: ExperimentResult) -> str:
    """Serialise the tabular payload (headers + rows) as CSV.

    Notes and metadata are out of band by design — CSV carries the
    table a plotting script wants, nothing else.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([_csv_cell(jsonable(cell)) for cell in row])
    return buffer.getvalue()


def _csv_cell(value: Any) -> Any:
    """CSV has no objects: render non-finite sentinels as their names."""
    restored = nonfinite_to_float(value)
    if restored is not None:
        return value[NONFINITE_KEY]
    return value
