"""Ablation: majorization explains the §4.3 "bad pairs" (extension).

Three measurements on the §4.3 equal-mean trial stream:

1. **Coverage** — how often random equal-mean pairs are
   majorization-comparable at all (it drops fast with n: the order is
   sparse).
2. **Accuracy when comparable** — 100%: the X-measure is Schur-convex
   (provably — each mean-preserving spread lowers the product of the
   affected pair, hence the eq.-(3) lead denominator; docs/THEORY.md §8),
   so majorization never mispredicts.
3. **The bad pairs** — every pair the variance predictor gets wrong is
   majorization-*incomparable*: variance errs exactly where it guesses
   beyond the partial order's reach.

Together these upgrade the paper's Theorem 5 story: variance is a lossy
scalar shadow of the real (partial) order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.measure import x_measure
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import ExperimentResult, register
from repro.predictors.majorization import majorization_prediction
from repro.sampling.equal_mean import equal_mean_pair

__all__ = ["run_majorization_study"]


@register("majorization")
def run_majorization_study(params: ModelParams = PAPER_TABLE1,
                           sizes: Sequence[int] = (2, 4, 8, 16, 32),
                           trials_per_size: int = 300,
                           seed: int = 31,
                           strategy: str = "mixed") -> ExperimentResult:
    """Score the majorization predictor against variance on §4.3 pairs."""
    rng = np.random.default_rng(seed)
    rows = []
    total_comparable_wrong = 0
    total_bad_but_comparable = 0
    for n in sizes:
        comparable = 0
        correct = 0
        var_bad = 0
        var_bad_incomparable = 0
        for _ in range(trials_per_size):
            p1, p2 = equal_mean_pair(rng, n, strategy=strategy)
            x1, x2 = x_measure(p1, params), x_measure(p2, params)
            truth = 0 if x1 > x2 else 1
            call = majorization_prediction(p1, p2)
            if call != -1:
                comparable += 1
                if call == truth:
                    correct += 1
                else:
                    total_comparable_wrong += 1
            var_call = 0 if p1.variance > p2.variance else 1
            if var_call != truth:
                var_bad += 1
                if call == -1:
                    var_bad_incomparable += 1
                else:
                    total_bad_but_comparable += 1
        accuracy = 100.0 * correct / comparable if comparable else float("nan")
        rows.append((
            n,
            trials_per_size,
            round(100.0 * comparable / trials_per_size, 1),
            round(accuracy, 2) if comparable else "—",
            var_bad,
            var_bad_incomparable,
        ))
    return ExperimentResult(
        experiment_id="majorization",
        title="Majorization: the partial order behind Theorem 5 [extension]",
        headers=("n", "pairs", "comparable %", "majorization accuracy %",
                 "variance-bad pairs", "…of which incomparable"),
        rows=rows,
        notes=(
            "majorization never mispredicts when it speaks (X is "
            "Schur-convex on equal-mean profiles — docs/THEORY.md §8)",
            "the variance predictor's errors live (almost) entirely in the "
            "majorization-incomparable region — variance fails exactly "
            "where it guesses beyond the partial order",
            f"comparable-but-wrong count across all sizes: "
            f"{total_comparable_wrong}",
        ),
        metadata={
            "comparable_wrong": total_comparable_wrong,
            "bad_but_comparable": total_bad_but_comparable,
            "seed": seed,
            "params": params,
        },
    )
