"""Ablation: majorization explains the §4.3 "bad pairs" (extension).

Three measurements on the §4.3 equal-mean trial stream:

1. **Coverage** — how often random equal-mean pairs are
   majorization-comparable at all (it drops fast with n: the order is
   sparse).
2. **Accuracy when comparable** — 100%: the X-measure is Schur-convex
   (provably — each mean-preserving spread lowers the product of the
   affected pair, hence the eq.-(3) lead denominator; docs/THEORY.md §8),
   so majorization never mispredicts.
3. **The bad pairs** — every pair the variance predictor gets wrong is
   majorization-*incomparable*: variance errs exactly where it guesses
   beyond the partial order's reach.

Together these upgrade the paper's Theorem 5 story: variance is a lossy
scalar shadow of the real (partial) order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.batch_kernels import ProfileBatch, majorization_predictions
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.experiments.variance_trials import trial_shards
from repro.sampling.equal_mean import equal_mean_pair

__all__ = ["run_majorization_study", "run_majorization_shard"]

_DEFAULT_SIZES = (2, 4, 8, 16, 32)


def run_majorization_shard(*, n: int, strategy: str, chunk_trials: int,
                           seed_seq: np.random.SeedSequence,
                           params: ModelParams) -> dict:
    """Score one chunk of §4.3 pairs (picklable worker entry point)."""
    rng = np.random.default_rng(seed_seq)
    profiles_a = np.empty((chunk_trials, n))
    profiles_b = np.empty((chunk_trials, n))
    for t in range(chunk_trials):
        p1, p2 = equal_mean_pair(rng, n, strategy=strategy)
        profiles_a[t] = p1.rho
        profiles_b[t] = p2.rho

    # Columnar scoring: X, variances and the majorization calls each
    # reduce one ProfileBatch per side — count-identical to the scalar
    # per-pair loop this replaces (the batch kernels are bitwise equal
    # per row to x_measure / Profile.variance / majorization_prediction).
    batch_a = ProfileBatch(profiles_a, copy=False)
    batch_b = ProfileBatch(profiles_b, copy=False)
    truth = np.where(batch_a.x(params) > batch_b.x(params), 0, 1)
    call = majorization_predictions(batch_a, batch_b)
    var_call = np.where(batch_a.variances() > batch_b.variances(), 0, 1)

    comparable = call != -1
    var_bad = var_call != truth
    return {
        "n": n,
        "trials": chunk_trials,
        "comparable": int(np.count_nonzero(comparable)),
        "correct": int(np.count_nonzero(comparable & (call == truth))),
        "comparable_wrong": int(np.count_nonzero(comparable & (call != truth))),
        "var_bad": int(np.count_nonzero(var_bad)),
        "var_bad_incomparable": int(np.count_nonzero(var_bad & ~comparable)),
        "bad_but_comparable": int(np.count_nonzero(var_bad & comparable)),
    }


def _split_majorization(params: ModelParams = PAPER_TABLE1,
                        sizes: Sequence[int] = _DEFAULT_SIZES,
                        trials_per_size: int = 300,
                        seed: int = 31,
                        strategy: str = "mixed") -> list[dict]:
    return trial_shards(sizes=sizes, trials_per_size=trials_per_size,
                        seed=seed, strategies=(strategy,), params=params)


def _merge_majorization(payloads: Sequence[dict],
                        params: ModelParams = PAPER_TABLE1,
                        sizes: Sequence[int] = _DEFAULT_SIZES,
                        trials_per_size: int = 300,
                        seed: int = 31,
                        strategy: str = "mixed") -> ExperimentResult:
    per_size: dict[int, dict] = {}
    for counts in payloads:
        cell = per_size.setdefault(counts["n"], dict.fromkeys(counts, 0))
        for key, value in counts.items():
            if key != "n":
                cell[key] += value
    rows = []
    total_comparable_wrong = 0
    total_bad_but_comparable = 0
    for n in sizes:
        cell = per_size[int(n)]
        comparable = cell["comparable"]
        total_comparable_wrong += cell["comparable_wrong"]
        total_bad_but_comparable += cell["bad_but_comparable"]
        accuracy = (100.0 * cell["correct"] / comparable if comparable
                    else float("nan"))
        rows.append((
            n,
            trials_per_size,
            round(100.0 * comparable / trials_per_size, 1),
            round(accuracy, 2) if comparable else "—",
            cell["var_bad"],
            cell["var_bad_incomparable"],
        ))
    return ExperimentResult(
        experiment_id="majorization",
        title="Majorization: the partial order behind Theorem 5 [extension]",
        headers=("n", "pairs", "comparable %", "majorization accuracy %",
                 "variance-bad pairs", "…of which incomparable"),
        rows=rows,
        notes=(
            "majorization never mispredicts when it speaks (X is "
            "Schur-convex on equal-mean profiles — docs/THEORY.md §8)",
            "the variance predictor's errors live (almost) entirely in the "
            "majorization-incomparable region — variance fails exactly "
            "where it guesses beyond the partial order",
            f"comparable-but-wrong count across all sizes: "
            f"{total_comparable_wrong}",
        ),
        metadata={
            "comparable_wrong": total_comparable_wrong,
            "bad_but_comparable": total_bad_but_comparable,
            "seed": seed,
            "params": params,
        },
    )


MAJORIZATION_SHARDS = ShardSpec(split=_split_majorization,
                                runner=run_majorization_shard,
                                merge=_merge_majorization)


@register("majorization", shardable=MAJORIZATION_SHARDS)
def run_majorization_study(params: ModelParams = PAPER_TABLE1,
                           sizes: Sequence[int] = _DEFAULT_SIZES,
                           trials_per_size: int = 300,
                           seed: int = 31,
                           strategy: str = "mixed") -> ExperimentResult:
    """Score the majorization predictor against variance on §4.3 pairs.

    Defined as the merge of per-``(size, chunk)`` shards so the batch
    engine can fan the pair loop out across workers without changing the
    statistics.
    """
    return run_sharded(MAJORIZATION_SHARDS, params=params, sizes=sizes,
                       trials_per_size=trials_per_size, seed=seed,
                       strategy=strategy)
