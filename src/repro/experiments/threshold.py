"""The §4.3 variance-gap threshold θ.

Having found "bad" pairs at every cluster size, the paper strengthens
the predictor: require the variances to differ by at least θ before
predicting.  Empirically θ = 0.167 made the prediction correct in 100%
of their trials.

:func:`run_threshold` reproduces the search: over a large pool of
equal-mean pairs (mixing the rescale and spread samplers so large gaps
actually occur), it computes

* the *empirical θ* — the largest variance gap among bad pairs (any gap
  above it predicted perfectly in-sample), and
* an accuracy-vs-gap curve showing how prediction quality rises with
  the gap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import ExperimentResult, register
from repro.experiments.variance_trials import collect_trials

__all__ = ["run_threshold", "PAPER_THETA"]

#: The paper's empirically determined threshold.
PAPER_THETA = 0.167


@register("variance-threshold")
def run_threshold(params: ModelParams = PAPER_TABLE1,
                  sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                  trials_per_size: int = 400,
                  seed: int = 167,
                  gap_grid: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1,
                                               0.167, 0.25)) -> ExperimentResult:
    """Reproduce the θ-threshold study."""
    rng = np.random.default_rng(seed)
    gaps_all: list[np.ndarray] = []
    good_all: list[np.ndarray] = []
    for n in sizes:
        for strategy in ("rescale", "spread"):
            batch = collect_trials(rng, n, trials_per_size, params,
                                   strategy=strategy)
            gaps_all.append(batch.variance_gaps)
            good_all.append(batch.good)
    gaps = np.concatenate(gaps_all)
    good = np.concatenate(good_all)

    bad_gaps = gaps[~good]
    empirical_theta = float(bad_gaps.max()) if bad_gaps.size else 0.0

    rows = []
    for threshold in gap_grid:
        mask = gaps >= threshold
        n_sel = int(mask.sum())
        accuracy = float(good[mask].mean()) if n_sel else float("nan")
        rows.append((threshold, n_sel, round(100.0 * accuracy, 2) if n_sel else "—"))

    return ExperimentResult(
        experiment_id="variance-threshold",
        title="Variance-gap threshold for perfect prediction (paper §4.3, θ = 0.167)",
        headers=("gap ≥", "pairs", "accuracy %"),
        rows=rows,
        notes=(
            f"largest variance gap among bad pairs (empirical θ): "
            f"{empirical_theta:.4f}; paper: {PAPER_THETA}",
            f"all {int((gaps >= empirical_theta).sum())} pairs with gap above the "
            f"empirical θ were predicted correctly (by construction in-sample; "
            f"the accuracy column shows the out-of-threshold behaviour)",
            "θ's exact value depends on the pair-generation distribution; the "
            "paper's and ours agree in order of magnitude",
        ),
        metadata={
            "empirical_theta": empirical_theta,
            "n_pairs": int(gaps.size),
            "n_bad": int((~good).sum()),
            "seed": seed,
            "params": params,
        },
    )
