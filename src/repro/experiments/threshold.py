"""The §4.3 variance-gap threshold θ.

Having found "bad" pairs at every cluster size, the paper strengthens
the predictor: require the variances to differ by at least θ before
predicting.  Empirically θ = 0.167 made the prediction correct in 100%
of their trials.

:func:`run_threshold` reproduces the search: over a large pool of
equal-mean pairs (mixing the rescale and spread samplers so large gaps
actually occur), it computes

* the *empirical θ* — the largest variance gap among bad pairs (any gap
  above it predicted perfectly in-sample), and
* an accuracy-vs-gap curve showing how prediction quality rises with
  the gap.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.experiments.variance_trials import (TrialBatch, run_trial_shard,
                                               trial_shards)

__all__ = ["run_threshold", "PAPER_THETA"]

#: The paper's empirically determined threshold.
PAPER_THETA = 0.167

#: Both samplers are run at every size (rescale for realistic small gaps,
#: spread so large gaps actually occur along the θ curve).
_STRATEGIES = ("rescale", "spread")

_DEFAULT_GAP_GRID = (0.0, 0.01, 0.02, 0.05, 0.1, 0.167, 0.25)


def _split_threshold(params: ModelParams = PAPER_TABLE1,
                     sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                     trials_per_size: int = 400,
                     seed: int = 167,
                     gap_grid: Sequence[float] = _DEFAULT_GAP_GRID) -> list[dict]:
    return trial_shards(sizes=sizes, trials_per_size=trials_per_size,
                        seed=seed, strategies=_STRATEGIES, params=params)


def _merge_threshold(payloads: Sequence[TrialBatch],
                     params: ModelParams = PAPER_TABLE1,
                     sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                     trials_per_size: int = 400,
                     seed: int = 167,
                     gap_grid: Sequence[float] = _DEFAULT_GAP_GRID
                     ) -> ExperimentResult:
    gaps = np.concatenate([b.variance_gaps for b in payloads])
    good = np.concatenate([b.good for b in payloads])

    bad_gaps = gaps[~good]
    empirical_theta = float(bad_gaps.max()) if bad_gaps.size else 0.0

    rows = []
    for threshold in gap_grid:
        mask = gaps >= threshold
        n_sel = int(mask.sum())
        accuracy = float(good[mask].mean()) if n_sel else float("nan")
        rows.append((threshold, n_sel, round(100.0 * accuracy, 2) if n_sel else "—"))

    return ExperimentResult(
        experiment_id="variance-threshold",
        title="Variance-gap threshold for perfect prediction (paper §4.3, θ = 0.167)",
        headers=("gap ≥", "pairs", "accuracy %"),
        rows=rows,
        notes=(
            f"largest variance gap among bad pairs (empirical θ): "
            f"{empirical_theta:.4f}; paper: {PAPER_THETA}",
            f"all {int((gaps >= empirical_theta).sum())} pairs with gap above the "
            f"empirical θ were predicted correctly (by construction in-sample; "
            f"the accuracy column shows the out-of-threshold behaviour)",
            "θ's exact value depends on the pair-generation distribution; the "
            "paper's and ours agree in order of magnitude",
        ),
        metadata={
            "empirical_theta": empirical_theta,
            "n_pairs": int(gaps.size),
            "n_bad": int((~good).sum()),
            "seed": seed,
            "params": params,
        },
    )


THRESHOLD_SHARDS = ShardSpec(split=_split_threshold, runner=run_trial_shard,
                             merge=_merge_threshold)


@register("variance-threshold", shardable=THRESHOLD_SHARDS)
def run_threshold(params: ModelParams = PAPER_TABLE1,
                  sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                  trials_per_size: int = 400,
                  seed: int = 167,
                  gap_grid: Sequence[float] = _DEFAULT_GAP_GRID
                  ) -> ExperimentResult:
    """Reproduce the θ-threshold study.

    Defined as the merge of its ``(size, strategy, chunk)`` shard plan —
    this is by far the costliest experiment in the registry, and the
    sharding is what lets ``run all --jobs N`` spread its trial pool
    across every core.
    """
    return run_sharded(THRESHOLD_SHARDS, params=params, sizes=sizes,
                       trials_per_size=trials_per_size, seed=seed,
                       gap_grid=tuple(gap_grid))
