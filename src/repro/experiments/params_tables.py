"""Tables 1 and 2: the model parameters and their derived constants."""

from __future__ import annotations

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import ExperimentResult, register

__all__ = ["run_table1", "run_table2"]


@register("table1")
def run_table1(params: ModelParams = PAPER_TABLE1) -> ExperimentResult:
    """Reproduce Table 1: sample parameter values used in simulations.

    The paper's wall-clock figures (1 µs, 10 µs per work unit) become the
    dimensionless rates τ = 10⁻⁶, π = 10⁻⁵ once time is measured in the
    ρ₁ = 1 unit (≈1 s per work unit for coarse tasks).
    """
    rows = [
        ("Transit rate (pipelined)", "τ", params.tau, "1 µs per work unit"),
        ("Packaging rate", "π", params.pi, "10 µs per work unit"),
        ("Result-size rate", "δ", params.delta, "1 work unit per work unit"),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Sample parameter values for perspective (paper Table 1)",
        headers=("parameter", "symbol", "dimensionless value", "paper's wall-clock figure"),
        rows=rows,
        notes=("dimensionless values assume the coarse-task time unit "
               "(1 s per work unit on the slowest computer)",),
        metadata={"params": params},
    )


@register("table2")
def run_table2(params: ModelParams = PAPER_TABLE1) -> ExperimentResult:
    """Reproduce Table 2: the derived constants A and B.

    Note: the paper prints "B = (per-task time) + 11×10⁻⁶ s"; with its
    own definition ``B = 1 + (1 + δ)π`` and Table-1 values the additive
    term is ``(1 + δ)π = 20 µs``, not 11 µs (11 µs is A).  We report the
    formula's value and flag the discrepancy.
    """
    coarse = params.B              # time unit = 1 s/task
    fine_unit = 0.1                # 0.1 s/task ⇒ rates scale by 1/0.1
    fine = 1.0 + (1.0 + params.delta) * params.pi / fine_unit
    rows = [
        ("A = π + τ", params.A, "11 µs per work unit"),
        ("B = 1 + (1+δ)π  (coarse, 1 s/task)", coarse, "1.000011 s per work unit"),
        ("B, finer tasks (0.1 s/task time unit)", fine * fine_unit, "0.100011 s per work unit"),
        ("τδ", params.tau_delta, "—"),
        ("A·τδ/B² (Theorem-4 threshold)", params.speedup_threshold, "paper: ≈1.1e-05"),
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Derived parameter values (paper Table 2)",
        headers=("quantity", "computed (dimensionless / s)", "paper's figure"),
        rows=rows,
        notes=(
            "paper's B rows add 11 µs where the definition B = 1 + (1+δ)π gives "
            "20 µs — the printed value appears to reuse A; we follow the definition",
            "paper's threshold estimate 1.1e-05 equals A alone; the formula "
            f"A·τδ/B² evaluates to {params.speedup_threshold:.3g}",
        ),
        metadata={"params": params, "A": params.A, "B": params.B,
                  "threshold": params.speedup_threshold},
    )
