"""Figure 4: iterative multiplicative speedup, phase 2 (paper §3.2.2).

Continuing the Figure-3 experiment past round 16: every computer is now
"very fast" (ρ = 1/16), all pairwise products ``ψ·ρᵢ·ρⱼ`` sit *below*
the threshold ``A·τδ/B²``, and Theorem 4's condition (2) takes over —
**each round speeds up the slowest computer** (with tie-breaks among
equal-slowest).  The cluster walks down level by level,
⟨1/16,…⟩ → ⟨1/32,…⟩, never re-speeding a computer until all its peers
have caught up.
"""

from __future__ import annotations

from repro.core.params import FIG34_CALIBRATION, ModelParams
from repro.core.profile import Profile
from repro.experiments.barchart import render_snapshot_strip
from repro.experiments.base import ExperimentResult, register
from repro.speedup.multiplicative import SpeedupRegime
from repro.speedup.trajectory import run_trajectory

__all__ = ["run_fig4"]


@register("fig4")
def run_fig4(params: ModelParams = FIG34_CALIBRATION, psi: float = 0.5,
             phase1_rounds: int = 16, phase2_rounds: int = 8,
             n_computers: int = 4) -> ExperimentResult:
    """Reproduce Figure 4: the post-phase-1 rounds under condition (2)."""
    trajectory = run_trajectory(Profile.homogeneous(n_computers), params, psi,
                                phase1_rounds + phase2_rounds)
    phase2 = trajectory.rounds[phase1_rounds:]
    rows = []
    for snap in phase2:
        reason = ("tie-break (homogeneous)" if snap.regime is None
                  else snap.regime.value + (" + tie-break" if snap.was_tie_break else ""))
        profile_text = "⟨" + ", ".join(f"{r:g}" for r in snap.profile_after.rho) + "⟩"
        rows.append((snap.round_index, f"C{snap.chosen + 1}", reason, profile_text,
                     round(snap.x_after, 4)))

    n_condition2 = sum(
        1 for snap in phase2
        if snap.regime in (SpeedupRegime.SLOWER_WINS, None))
    import numpy as np
    phase2_profiles = np.vstack(
        [trajectory.rounds[phase1_rounds - 1].profile_after.rho]
        + [s.profile_after.rho for s in phase2])
    strip = render_snapshot_strip(phase2_profiles, height=5, per_row=6,
                                  labels=[f"round {phase1_rounds + i}"
                                          for i in range(len(phase2) + 1)])
    return ExperimentResult(
        experiment_id="fig4",
        title="Optimal multiplicative speedups, phase 2 (paper Fig. 4)",
        headers=("round", "sped up", "governing rule", "profile after", "X after"),
        rows=rows,
        notes=(
            "all computers are 'very fast': condition (2) governs every round, "
            "so the slowest computer is always the one sped up",
            f"{n_condition2}/{len(phase2)} phase-2 rounds chose a slowest-class "
            f"computer (condition 2 or homogeneous tie-break)",
        ),
        metadata={
            "chosen_sequence": tuple(s.chosen for s in phase2),
            "final_profile": tuple(trajectory.final_profile.rho.tolist()),
            "figure_text": strip,
            "params": params,
        },
    )
