"""Monospace table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Render one table cell: floats get 6 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str | None = None) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["n", "x"], [(1, 0.5), (10, 0.25)]))
     n |    x
    ---+-----
     1 |  0.5
    10 | 0.25
    """
    cells = [[format_cell(h) for h in headers]]
    cells += [[format_cell(v) for v in row] for row in rows]
    n_cols = max(len(r) for r in cells)
    for row in cells:
        row.extend([""] * (n_cols - len(row)))
    widths = [max(len(row[c]) for row in cells) for c in range(n_cols)]

    def fmt_row(row: list[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(row, widths))

    sep = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(cells[0]))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in cells[1:])
    return "\n".join(lines)
