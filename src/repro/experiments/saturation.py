"""Ablation: the saturation ceiling and diminishing returns (extension).

Not a table in the paper, but the structural fact behind several of its
curiosities (the HECR's existence, the "sufficiently long lifespan"
caveat, the Fig.-2 layout breaking under heavy communication): every
environment caps X at ``X_∞ = 1/(A − τδ)``.  This experiment tabulates
the commodity-cluster diminishing-returns curve and the cluster sizes
needed to reach given fractions of the ceiling.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.asymptotics import (
    cluster_size_for_coverage,
    homogeneous_returns_curve,
    saturation_x,
)
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import ExperimentResult, register

__all__ = ["run_saturation"]


@register("saturation")
def run_saturation(params: ModelParams = PAPER_TABLE1, rho: float = 1.0,
                   sizes: Sequence[int] = (1, 4, 16, 64, 256, 1024, 4096,
                                           16384, 65536),
                   coverages: Sequence[float] = (0.5, 0.9, 0.99),
                   ) -> ExperimentResult:
    """Tabulate X(n) against the ceiling for commodity clusters."""
    ceiling = saturation_x(params)
    curve = homogeneous_returns_curve(rho, params, sizes)
    rows = [(n, round(float(x), 2), f"{100 * float(x) / ceiling:.2f}%")
            for n, x in zip(sizes, curve)]
    knee_notes = []
    for coverage in coverages:
        n_needed = cluster_size_for_coverage(rho, params, coverage)
        knee_notes.append(f"{100 * coverage:g}% of the ceiling needs "
                          f"{n_needed:,.0f} machines of rate {rho:g}")
    return ExperimentResult(
        experiment_id="saturation",
        title="Diminishing returns toward the X ceiling 1/(A−τδ) [extension]",
        headers=("n", "X(P^(rho))", "share of ceiling"),
        rows=rows,
        notes=tuple([f"ceiling X_inf = {ceiling:,.0f} "
                     f"(A={params.A:g}, tau*delta={params.tau_delta:g})"]
                    + knee_notes),
        metadata={"ceiling": ceiling, "curve": curve, "params": params},
    )
