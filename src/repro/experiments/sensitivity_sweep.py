"""Ablation: environment-sensitivity sweep (extension).

The paper evaluates one environment (Table 1).  This sweep varies the
network transit rate τ across six orders of magnitude and tracks the
paper's 4-computer cluster's work rate, HECR and the FIFO/LIFO premium,
rendering the work-rate curve as an ASCII series — the "what if the
network were slower?" companion to every table above.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.sensitivity import sweep_tau
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.barchart import render_series
from repro.experiments.base import ExperimentResult, register
from repro.protocols.fifo import fifo_allocation, fifo_saturation_index
from repro.protocols.lifo import lifo_allocation

__all__ = ["run_tau_sweep"]


@register("tau-sweep")
def run_tau_sweep(pi: float = 1e-5, delta: float = 1.0,
                  tau_low: float = 1e-6, tau_high: float = 0.1,
                  points: int = 13) -> ExperimentResult:
    """Sweep τ and tabulate/plot the cluster's responses."""
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    taus = np.geomspace(tau_low, tau_high, points)
    sweep = sweep_tau(profile, taus, pi=pi, delta=delta)

    rows = []
    for tau, x, rate, hecr_value in zip(sweep.values, sweep.x,
                                        sweep.work_rate, sweep.hecr):
        params = ModelParams(tau=float(tau), pi=pi, delta=delta)
        if fifo_saturation_index(profile, params) <= 1.0:
            fifo = fifo_allocation(profile, params, 100.0).total_work
            lifo = lifo_allocation(profile, params, 100.0).total_work
            premium = round(fifo / lifo, 5)
        else:
            premium = "saturated"
        rows.append((float(tau), round(float(x), 4), round(float(rate), 4),
                     round(float(hecr_value), 4), premium))

    chart = render_series(np.log10(sweep.values), sweep.work_rate,
                          x_label="log10(tau)", y_label="work rate")
    return ExperimentResult(
        experiment_id="tau-sweep",
        title="Environment sensitivity: the cluster across network speeds [extension]",
        headers=("tau", "X", "work rate", "HECR", "FIFO/LIFO premium"),
        rows=rows,
        notes=(
            "work rate decays monotonically with τ; the HECR degrades and "
            "the FIFO premium over LIFO widens as communication dominates",
            "profile ⟨1, 1/2, 1/3, 1/4⟩, L = 100 for the premium column",
        ),
        metadata={"sweep": sweep, "figure_text": chart},
    )
