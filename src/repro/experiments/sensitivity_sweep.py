"""Ablation: environment-sensitivity sweep (extension).

The paper evaluates one environment (Table 1).  This sweep varies the
network transit rate τ across six orders of magnitude and tracks the
paper's 4-computer cluster's work rate, HECR and the FIFO/LIFO premium,
rendering the work-rate curve as an ASCII series — the "what if the
network were slower?" companion to every table above.

Each grid point is independent, so the sweep is registered as a sharded
experiment: one shard per τ, merged back into the grid order.  The
per-point arithmetic is exactly :func:`repro.analysis.sensitivity.sweep_tau`'s,
so sequential and parallel runs agree to the last bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.sensitivity import SweepResult
from repro.core.hecr import hecr
from repro.core.measure import work_rate, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.experiments.barchart import render_series
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.protocols.fifo import fifo_allocation, fifo_saturation_index
from repro.protocols.lifo import lifo_allocation

__all__ = ["run_tau_sweep", "run_tau_point"]

#: The paper's 4-computer harmonic cluster, evaluated at every τ.
_PROFILE_RHO = (1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0)

#: Lifespan used for the FIFO/LIFO premium column.
_PREMIUM_LIFESPAN = 100.0


def run_tau_point(*, tau: float, pi: float, delta: float) -> dict:
    """Evaluate the cluster at one transit rate (picklable worker entry)."""
    profile = Profile(list(_PROFILE_RHO))
    params = ModelParams(tau=tau, pi=pi, delta=delta)
    x = x_measure(profile, params)
    rate = work_rate(profile, params)
    hecr_value = hecr(profile, params)
    if fifo_saturation_index(profile, params) <= 1.0:
        fifo = fifo_allocation(profile, params, _PREMIUM_LIFESPAN).total_work
        lifo = lifo_allocation(profile, params, _PREMIUM_LIFESPAN).total_work
        premium = round(fifo / lifo, 5)
    else:
        premium = "saturated"
    return {"tau": tau, "x": float(x), "work_rate": float(rate),
            "hecr": float(hecr_value), "premium": premium}


def _split_tau_sweep(pi: float = 1e-5, delta: float = 1.0,
                     tau_low: float = 1e-6, tau_high: float = 0.1,
                     points: int = 13) -> list[dict]:
    taus = np.geomspace(tau_low, tau_high, points)
    return [{"tau": float(tau), "pi": pi, "delta": delta} for tau in taus]


def _merge_tau_sweep(payloads: Sequence[dict], pi: float = 1e-5,
                     delta: float = 1.0, tau_low: float = 1e-6,
                     tau_high: float = 0.1, points: int = 13
                     ) -> ExperimentResult:
    sweep = SweepResult(
        parameter="tau",
        values=np.array([p["tau"] for p in payloads]),
        x=np.array([p["x"] for p in payloads]),
        work_rate=np.array([p["work_rate"] for p in payloads]),
        hecr=np.array([p["hecr"] for p in payloads]),
    )
    rows = [(p["tau"], round(p["x"], 4), round(p["work_rate"], 4),
             round(p["hecr"], 4), p["premium"]) for p in payloads]
    chart = render_series(np.log10(sweep.values), sweep.work_rate,
                          x_label="log10(tau)", y_label="work rate")
    return ExperimentResult(
        experiment_id="tau-sweep",
        title="Environment sensitivity: the cluster across network speeds [extension]",
        headers=("tau", "X", "work rate", "HECR", "FIFO/LIFO premium"),
        rows=rows,
        notes=(
            "work rate decays monotonically with τ; the HECR degrades and "
            "the FIFO premium over LIFO widens as communication dominates",
            "profile ⟨1, 1/2, 1/3, 1/4⟩, L = 100 for the premium column",
        ),
        metadata={"sweep": sweep, "figure_text": chart},
    )


TAU_SWEEP_SHARDS = ShardSpec(split=_split_tau_sweep, runner=run_tau_point,
                             merge=_merge_tau_sweep)


@register("tau-sweep", shardable=TAU_SWEEP_SHARDS)
def run_tau_sweep(pi: float = 1e-5, delta: float = 1.0,
                  tau_low: float = 1e-6, tau_high: float = 0.1,
                  points: int = 13) -> ExperimentResult:
    """Sweep τ and tabulate/plot the cluster's responses."""
    return run_sharded(TAU_SWEEP_SHARDS, pi=pi, delta=delta, tau_low=tau_low,
                       tau_high=tau_high, points=points)
