"""The §4.3 variance-predictor trials.

For each cluster size n, generate random equal-mean cluster pairs and
label each pair "good" when the larger-variance cluster is the more
powerful one (smaller HECR / larger X), "bad" otherwise.  The paper
reports, for n = 2^k, k = 2 … 16:

* "bad" pairs exist at every size (Theorem 5(2) does not generalise);
* the bad fraction grows to ≈23% (plateau reached at n = 128) — i.e.
  variance is right ≈76–77% of the time;
* bad pairs have *small* HECR gaps.

:func:`run_variance_trials` reproduces all three findings and, as an
ablation, scores the alternative moment predictors of
:data:`repro.predictors.variance.MOMENT_PREDICTORS` on the same pairs.

Sharding
--------
The trial loop is embarrassingly parallel, so the experiment is defined
as a *sharded* computation: :func:`trial_shards` decomposes the run into
``(size, strategy, chunk-of-trials)`` cells, each seeded by its own
child of ``np.random.SeedSequence(seed).spawn(...)``, and the experiment
merges the per-cell :class:`TrialBatch` payloads.  The decomposition
depends only on the experiment kwargs — never on worker count — so a
sequential run and :mod:`repro.batch`'s process-pool fan-out produce
bit-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.batch_kernels import ProfileBatch, moment_predictions
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.errors import ExperimentError
from repro.experiments.base import (ExperimentResult, ShardSpec, register,
                                    run_sharded)
from repro.predictors.variance import MOMENT_PREDICTORS
from repro.sampling.equal_mean import equal_mean_pair

__all__ = ["run_variance_trials", "TrialBatch", "collect_trials",
           "trial_shards", "run_trial_shard", "merge_trial_batches",
           "TRIALS_PER_SHARD"]

#: Default sizes: powers of two as in the paper (truncated so the default
#: run stays laptop-quick; pass larger sizes explicitly to go to 2^16).
DEFAULT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Shard granularity: each (size, strategy) cell is cut into chunks of at
#: most this many trials, so a worker pool has enough independent pieces
#: to load-balance even when one cluster size dominates the cost.
TRIALS_PER_SHARD = 100


@dataclass(frozen=True)
class TrialBatch:
    """All trials for one cluster size, in vectorised form.

    Attributes
    ----------
    n:
        Cluster size.
    variance_gaps:
        ``|VAR(P₁) − VAR(P₂)|`` per trial.
    good:
        Boolean per trial: did variance predict the winner?
    hecr_gaps:
        ``|HECR(P₁) − HECR(P₂)|`` per trial.
    predictor_scores:
        Fraction correct for each alternative moment predictor.
    """

    n: int
    variance_gaps: np.ndarray
    good: np.ndarray
    hecr_gaps: np.ndarray
    predictor_scores: dict[str, float]

    @property
    def n_trials(self) -> int:
        return int(self.good.size)

    @property
    def fraction_good(self) -> float:
        return float(self.good.mean())

    @property
    def mean_bad_hecr_gap(self) -> float:
        """Average HECR gap among the bad pairs (NaN if none).

        NaN gaps (saturated clusters beyond any homogeneous equivalent)
        are excluded from the average.
        """
        return self._gap_mean(~self.good)

    @property
    def mean_good_hecr_gap(self) -> float:
        """Average HECR gap among the good pairs (NaN if none)."""
        return self._gap_mean(self.good)

    def _gap_mean(self, mask: np.ndarray) -> float:
        selected = self.hecr_gaps[mask]
        selected = selected[~np.isnan(selected)]
        if selected.size == 0:
            return float("nan")
        return float(selected.mean())


def collect_trials(rng: np.random.Generator, n: int, n_trials: int,
                   params: ModelParams, *, strategy: str = "mixed"
                   ) -> TrialBatch:
    """Run ``n_trials`` §4.3 trials at cluster size ``n``, vectorised.

    Pairs whose variances tie exactly (measure-zero) are regenerated.
    """
    if n_trials < 1:
        raise ExperimentError(f"n_trials must be >= 1, got {n_trials}")
    profiles_a = np.empty((n_trials, n))
    profiles_b = np.empty((n_trials, n))
    for t in range(n_trials):
        while True:
            p1, p2 = equal_mean_pair(rng, n, strategy=strategy)
            if p1.variance != p2.variance:
                break
        profiles_a[t] = p1.rho
        profiles_b[t] = p2.rho

    # One columnar pass per side: X, HECR, variances and every moment
    # predictor reduce the same ProfileBatch — each bit-identical (HECR:
    # ≤1e-12) to the per-pair scalar loop this replaces.
    batch_a = ProfileBatch(profiles_a, copy=False)
    batch_b = ProfileBatch(profiles_b, copy=False)
    var_a = batch_a.variances()
    var_b = batch_b.variances()
    x_a = batch_a.x(params)
    x_b = batch_b.x(params)
    h_a = batch_a.hecr(params, x=x_a)
    h_b = batch_b.hecr(params, x=x_b)

    actual_first = x_a > x_b                 # ground truth: P₁ more powerful
    predicted_first = var_a > var_b          # variance's call
    good = predicted_first == actual_first

    winner = np.where(actual_first, 0, 1)    # the call that scores a hit
    predictor_scores = {
        name: int(np.count_nonzero(
            moment_predictions(batch_a, batch_b, name) == winner)) / n_trials
        for name in MOMENT_PREDICTORS
    }

    return TrialBatch(
        n=n,
        variance_gaps=np.abs(var_a - var_b),
        good=good,
        hecr_gaps=np.abs(h_a - h_b),
        predictor_scores=predictor_scores,
    )


def _chunk_counts(total: int, chunk: int = TRIALS_PER_SHARD) -> list[int]:
    """Canonical chunking of ``total`` trials: full chunks, then the rest."""
    if total < 1:
        raise ExperimentError(f"trials_per_size must be >= 1, got {total}")
    counts = [chunk] * (total // chunk)
    if total % chunk:
        counts.append(total % chunk)
    return counts


def trial_shards(*, sizes: Sequence[int], trials_per_size: int, seed: int,
                 strategies: Sequence[str], params: ModelParams) -> list[dict]:
    """The canonical shard plan for a §4.3-style trial study.

    One shard per ``(size, strategy, chunk)`` cell, in size-major order,
    each carrying its own child of ``SeedSequence(seed).spawn(...)``.
    The plan is a pure function of the experiment kwargs, which is what
    makes sequential and parallel execution statistically identical.
    """
    shards = []
    for n in sizes:
        for strategy in strategies:
            for chunk_trials in _chunk_counts(trials_per_size):
                shards.append({"n": int(n), "strategy": strategy,
                               "chunk_trials": chunk_trials, "params": params})
    for shard, seed_seq in zip(shards,
                               np.random.SeedSequence(seed).spawn(len(shards))):
        shard["seed_seq"] = seed_seq
    return shards


def run_trial_shard(*, n: int, strategy: str, chunk_trials: int,
                    seed_seq: np.random.SeedSequence,
                    params: ModelParams) -> TrialBatch:
    """Execute one shard of the trial plan (picklable worker entry point)."""
    rng = np.random.default_rng(seed_seq)
    return collect_trials(rng, n, chunk_trials, params, strategy=strategy)


def merge_trial_batches(batches: Sequence[TrialBatch]) -> TrialBatch:
    """Recombine same-size chunk batches into one.

    Arrays concatenate in shard order; predictor scores recombine
    exactly by recovering integer hit counts from each chunk's fraction.
    """
    if not batches:
        raise ExperimentError("cannot merge zero trial batches")
    if len({b.n for b in batches}) != 1:
        raise ExperimentError("cannot merge trial batches of different sizes")
    if len(batches) == 1:
        return batches[0]
    total = sum(b.n_trials for b in batches)
    scores = {name: sum(round(b.predictor_scores[name] * b.n_trials)
                        for b in batches) / total
              for name in batches[0].predictor_scores}
    return TrialBatch(
        n=batches[0].n,
        variance_gaps=np.concatenate([b.variance_gaps for b in batches]),
        good=np.concatenate([b.good for b in batches]),
        hecr_gaps=np.concatenate([b.hecr_gaps for b in batches]),
        predictor_scores=scores,
    )


def _split_variance_trials(params: ModelParams = PAPER_TABLE1,
                           sizes: Sequence[int] = DEFAULT_SIZES,
                           trials_per_size: int = 400,
                           seed: int = 2010,
                           strategy: str = "mixed") -> list[dict]:
    return trial_shards(sizes=sizes, trials_per_size=trials_per_size,
                        seed=seed, strategies=(strategy,), params=params)


def _merge_variance_trials(payloads: Sequence[TrialBatch],
                           params: ModelParams = PAPER_TABLE1,
                           sizes: Sequence[int] = DEFAULT_SIZES,
                           trials_per_size: int = 400,
                           seed: int = 2010,
                           strategy: str = "mixed") -> ExperimentResult:
    per_size: dict[int, list[TrialBatch]] = {}
    for batch in payloads:
        per_size.setdefault(batch.n, []).append(batch)
    rows = []
    batches: list[TrialBatch] = []
    for n in sizes:
        batch = merge_trial_batches(per_size[int(n)])
        batches.append(batch)
        rows.append((
            n,
            batch.n_trials,
            round(100.0 * batch.fraction_good, 1),
            round(100.0 * (1.0 - batch.fraction_good), 1),
            round(batch.mean_bad_hecr_gap, 6),
            round(batch.mean_good_hecr_gap, 6),
            round(batch.predictor_scores["geometric-mean"] * 100.0, 1),
        ))
    overall_good = float(np.mean(np.concatenate([b.good for b in batches])))
    plateau = [b.fraction_good for b in batches if b.n >= 128]
    return ExperimentResult(
        experiment_id="variance-trials",
        title="Variance as a predictor of power among equal-mean clusters (paper §4.3)",
        headers=("n", "trials", "good %", "bad %", "mean HECR gap (bad)",
                 "mean HECR gap (good)", "geo-mean predictor %"),
        rows=rows,
        notes=(
            f"overall accuracy {100 * overall_good:.1f}% — paper reports ≈76–77% "
            f"with a bad-pair plateau of ≈23% from n = 128",
            "bad pairs show systematically smaller HECR gaps than good pairs, "
            "matching the paper's observation",
            "exact percentages depend on the (unpublished) pair-generation "
            "distribution — see DESIGN.md substitution 2",
        ),
        metadata={
            "batches": batches,
            "overall_good": overall_good,
            "plateau_good": plateau,
            "seed": seed,
            "strategy": strategy,
            "params": params,
        },
    )


VARIANCE_TRIALS_SHARDS = ShardSpec(split=_split_variance_trials,
                                   runner=run_trial_shard,
                                   merge=_merge_variance_trials)


@register("variance-trials", shardable=VARIANCE_TRIALS_SHARDS)
def run_variance_trials(params: ModelParams = PAPER_TABLE1,
                        sizes: Sequence[int] = DEFAULT_SIZES,
                        trials_per_size: int = 400,
                        seed: int = 2010,
                        strategy: str = "mixed") -> ExperimentResult:
    """Reproduce the §4.3 accuracy-vs-size study (plus moment ablation).

    Defined as the merge of its shard plan (see the module docstring),
    so this sequential entry point and a parallel batch run agree
    bit-for-bit.
    """
    return run_sharded(VARIANCE_TRIALS_SHARDS, params=params, sizes=sizes,
                       trials_per_size=trials_per_size, seed=seed,
                       strategy=strategy)
