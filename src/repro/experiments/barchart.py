"""ASCII bar-graph rendering of profile snapshots (Figs. 3–4 style).

The paper depicts the iterative-speedup experiment as a strip of bar
graphs — one per round, bar heights being the ρ-values.  With no
plotting dependencies available offline, this module renders the same
information as text: vertical bars on a log₂ grid (the experiment's
speeds are powers of 1/2, so a log grid shows every level distinctly).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["render_profile_bars", "render_snapshot_strip", "render_series"]


def render_series(xs: Sequence[float], ys: Sequence[float], *,
                  height: int = 10, width: int = 60,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series as an ASCII scatter-line chart.

    Points are binned onto a ``width × height`` character grid; the y
    axis is annotated with its min/max, the x axis with its endpoints.
    Intended for the sweep experiments (work rate vs τ and friends)
    where no plotting backend is available.
    """
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) points of equal length")
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(x, y):
        col = int((xv - x_lo) / x_span * (width - 1))
        row = int((yv - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "●"
    margin = max(len(f"{y_hi:.4g}"), len(f"{y_lo:.4g}"))
    lines = []
    for r, row_cells in enumerate(grid):
        if r == 0:
            label = f"{y_hi:.4g}".rjust(margin)
        elif r == height - 1:
            label = f"{y_lo:.4g}".rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * margin + " +" + "-" * width)
    footer = f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(width // 2)
    lines.append(" " * (margin + 2) + footer)
    lines.append(" " * (margin + 2) + f"{x_label}  (y = {y_label})")
    return "\n".join(lines)


def render_profile_bars(rho: Sequence[float], *, height: int = 8,
                        rho_max: float | None = None,
                        label: str = "") -> str:
    """Render one profile as a vertical ASCII bar graph.

    Bars are scaled logarithmically: a bar's height is proportional to
    ``log2(rho / rho_min_display)`` so halving a ρ-value drops the bar by
    a fixed number of rows — the visual grammar of the paper's figures.

    Parameters
    ----------
    rho:
        The ρ-values, left to right.
    height:
        Number of character rows for the tallest bar.
    rho_max:
        Value mapped to full height (default: max of ``rho``).
    label:
        Caption line printed under the graph.
    """
    values = np.asarray(list(rho), dtype=float)
    if values.size == 0 or np.any(values <= 0):
        raise ValueError("rho values must be positive")
    top = rho_max if rho_max is not None else float(values.max())
    # Display floor: 1/2^height of the top value.
    levels = np.array([
        max(0, min(height, height + int(round(math.log2(v / top)))))
        if v > 0 else 0
        for v in values
    ])
    lines = []
    for row in range(height, 0, -1):
        lines.append(" ".join("█" if lvl >= row else " " for lvl in levels))
    lines.append("-" * (2 * values.size - 1))
    lines.append(" ".join(str(i + 1) for i in range(values.size)))
    if label:
        lines.append(label)
    return "\n".join(lines)


def render_snapshot_strip(profiles: np.ndarray, *, height: int = 8,
                          labels: Sequence[str] | None = None,
                          per_row: int = 6) -> str:
    """Render a sequence of profile snapshots side by side.

    Parameters
    ----------
    profiles:
        Array of shape ``(k, n)`` — k snapshots of an n-computer cluster.
    height:
        Bar-graph height in rows.
    labels:
        Per-snapshot captions (default: ``round 0 … round k−1``).
    per_row:
        Snapshots per output row before wrapping.
    """
    profiles = np.asarray(profiles, dtype=float)
    if profiles.ndim != 2:
        raise ValueError(f"profiles must be 2-D, got shape {profiles.shape}")
    k = profiles.shape[0]
    if labels is None:
        labels = [f"round {i}" for i in range(k)]
    top = float(profiles.max())
    blocks = [
        render_profile_bars(profiles[i], height=height, rho_max=top,
                            label=str(labels[i])).split("\n")
        for i in range(k)
    ]
    out_lines: list[str] = []
    for group_start in range(0, k, per_row):
        group = blocks[group_start:group_start + per_row]
        depth = max(len(b) for b in group)
        width = max(len(line) for b in group for line in b)
        for row in range(depth):
            out_lines.append("   ".join(
                (b[row] if row < len(b) else "").ljust(width) for b in group
            ).rstrip())
        out_lines.append("")
    return "\n".join(out_lines).rstrip()
