"""Figure 3: iterative multiplicative speedup, phase 1 (paper §3.2.2).

Sixteen rounds of optimal ψ = 1/2 speedups starting from ⟨1, 1, 1, 1⟩.
The paper's narrative, which this experiment reproduces round for round:

* round 1 — tie-break (homogeneous cluster) picks C₄;
* rounds 2–4 — condition (1) keeps speeding up the then-fastest C₄
  until it reaches ρ = 1/16;
* round 5 — condition (2) forbids speeding C₄ further; the tie-break
  picks C₃; and the cycle repeats for C₃, C₂, C₁;
* round 16 ends at ⟨1/16, 1/16, 1/16, 1/16⟩.

Parameter calibration (τ = 0.2 work-time units, threshold 0.04) is
documented in DESIGN.md §4 (substitution 3).
"""

from __future__ import annotations

from repro.core.params import FIG34_CALIBRATION, ModelParams
from repro.core.profile import Profile
from repro.experiments.barchart import render_snapshot_strip
from repro.experiments.base import ExperimentResult, register
from repro.speedup.trajectory import run_trajectory

__all__ = ["run_fig3"]


@register("fig3")
def run_fig3(params: ModelParams = FIG34_CALIBRATION, psi: float = 0.5,
             n_rounds: int = 16, n_computers: int = 4) -> ExperimentResult:
    """Reproduce Figure 3's sixteen speedup rounds with regime labels."""
    trajectory = run_trajectory(Profile.homogeneous(n_computers), params, psi,
                                n_rounds)
    rows = []
    for snap in trajectory:
        reason = ("tie-break (homogeneous)" if snap.regime is None
                  else snap.regime.value + (" + tie-break" if snap.was_tie_break else ""))
        profile_text = "⟨" + ", ".join(f"{r:g}" for r in snap.profile_after.rho) + "⟩"
        rows.append((snap.round_index, f"C{snap.chosen + 1}", reason, profile_text,
                     round(snap.x_after, 4)))
    strip = render_snapshot_strip(trajectory.profiles_matrix(), height=5, per_row=6)
    return ExperimentResult(
        experiment_id="fig3",
        title="Optimal multiplicative speedups, phase 1 (paper Fig. 3)",
        headers=("round", "sped up", "governing rule", "profile after", "X after"),
        rows=rows,
        notes=(
            f"threshold A·τδ/B² = {params.speedup_threshold:.4g} "
            f"(calibrated so the figure's phase structure matches Theorem 4 — "
            f"see DESIGN.md)",
            "each computer rides 1 → 1/2 → 1/4 → 1/8 → 1/16 in turn; "
            "phase 1 ends at the homogeneous profile ⟨1/16,…⟩",
        ),
        metadata={
            "chosen_sequence": trajectory.chosen_sequence(),
            "final_profile": tuple(trajectory.final_profile.rho.tolist()),
            "figure_text": strip,
            "params": params,
        },
    )
