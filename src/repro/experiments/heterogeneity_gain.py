"""Ablation: quantifying Corollary 1's "heterogeneity lends power" (extension).

Corollary 1 is qualitative — a heterogeneous 2-computer cluster beats
its equal-mean homogeneous twin.  This experiment maps the *size* of
the win across (mean speed, relative spread) space, and also scores the
generalisation to larger clusters, where Theorem 5(2) no longer
guarantees a win (the §4.3 "bad pairs") but the expected gain remains
large.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.phase import equal_mean_gain, heterogeneity_gain_grid
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.experiments.base import ExperimentResult, register
from repro.sampling.equal_mean import equal_mean_pair

__all__ = ["run_heterogeneity_gain"]


@register("heterogeneity-gain")
def run_heterogeneity_gain(params: ModelParams = PAPER_TABLE1,
                           n_large: int = 32, trials: int = 200,
                           seed: int = 1) -> ExperimentResult:
    """Map Corollary 1's gain and its large-n generalisation."""
    grid = heterogeneity_gain_grid(params)
    rows = []
    for i, mean in enumerate(grid.means):
        rows.append((f"mean {mean:g}",
                     *[round(float(g), 3) for g in grid.gain[i]]))

    # Large-n generalisation: random n-computer profiles vs their
    # homogeneous equal-mean twins.
    rng = np.random.default_rng(seed)
    gains = []
    for _ in range(trials):
        hetero, _ = equal_mean_pair(rng, n_large, strategy="rescale")
        gains.append(equal_mean_gain(hetero, params))
    gains_arr = np.asarray(gains)
    wins = float(np.mean(gains_arr > 1.0))

    headers = ("2-computer gain",
               *[f"spread {s:g}" for s in grid.relative_spreads])
    return ExperimentResult(
        experiment_id="heterogeneity-gain",
        title="How much power heterogeneity lends (Corollary 1, quantified) [extension]",
        headers=headers,
        rows=rows,
        notes=(
            "every 2-computer entry exceeds 1 — Corollary 1 across the grid",
            f"n={n_large} random equal-mean clusters beat their homogeneous "
            f"twins in {100 * wins:.1f}% of {trials} trials "
            f"(median gain x{np.median(gains_arr):.2f})",
        ),
        metadata={"grid": grid, "large_n_gains": gains_arr,
                  "large_n_win_rate": wins, "params": params},
    )
