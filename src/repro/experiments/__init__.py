"""Experiment registry: one runner per table/figure of the paper.

Importing this package registers every experiment:

========================  =====================================================
id                        reproduces
========================  =====================================================
``table1``                Table 1 — model parameters
``table2``                Table 2 — derived constants A, B
``table3``                Table 3 — HECRs of the linear/harmonic clusters
``table4``                Table 4 — additive-speedup work ratios
``fig3``                  Figure 3 — multiplicative speedups, phase 1
``fig4``                  Figure 4 — multiplicative speedups, phase 2
``sec4-example``          §4 — ⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩
``variance-trials``       §4.3 — variance-predictor accuracy vs cluster size
``variance-threshold``    §4.3 — the θ = 0.167 perfect-prediction threshold
``protocol-optimality``   Theorem 1 — FIFO optimality/invariance (ablation)
``saturation``            extension — the 1/(A−τδ) ceiling, diminishing returns
``heterogeneity-gain``    extension — Corollary 1 quantified across (mean, spread)
``moment-ablation``       extension — which moment predicts power best ([13]'s study)
``failure-resilience``    extension — cost of a mid-round worker crash
``majorization``          extension — the partial order behind Theorem 5
``tau-sweep``             extension — environment sensitivity across network speeds
``failure-rate-sweep``    extension — expected work under random crashes
``coded-resilience``      extension — proactive redundancy vs recovery
``stream-replay``         extension — online calibration payoff under drift
========================  =====================================================
"""

from repro.experiments.base import (
    ExperimentResult,
    ShardSpec,
    get_experiment,
    get_shard_spec,
    list_experiments,
    register,
    run_experiment,
    run_sharded,
)
from repro.experiments.barchart import render_profile_bars, render_snapshot_strip
from repro.experiments.coded_resilience import run_coded_resilience
from repro.experiments.fig3 import run_fig3
from repro.experiments.failure_rate_sweep import run_failure_rate_sweep
from repro.experiments.failure_resilience import run_failure_resilience
from repro.experiments.fig4 import run_fig4
from repro.experiments.heterogeneity_gain import run_heterogeneity_gain
from repro.experiments.majorization_study import run_majorization_study
from repro.experiments.minorization_demo import run_minorization_demo
from repro.experiments.moment_ablation import run_moment_ablation
from repro.experiments.params_tables import run_table1, run_table2
from repro.experiments.protocol_optimality import run_protocol_optimality
from repro.experiments.saturation import run_saturation
from repro.experiments.sensitivity_sweep import run_tau_sweep
from repro.experiments.stream_replay import run_stream_replay
from repro.experiments.table3 import PAPER_TABLE3_VALUES, run_table3
from repro.experiments.table4 import PAPER_TABLE4_RATIOS, run_table4
from repro.experiments.tables import render_table
from repro.experiments.threshold import PAPER_THETA, run_threshold
from repro.experiments.variance_trials import (
    TrialBatch,
    collect_trials,
    merge_trial_batches,
    run_trial_shard,
    run_variance_trials,
    trial_shards,
)

__all__ = [
    "ExperimentResult",
    "ShardSpec",
    "register",
    "get_experiment",
    "get_shard_spec",
    "list_experiments",
    "run_experiment",
    "run_sharded",
    "render_table",
    "render_profile_bars",
    "render_snapshot_strip",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig3",
    "run_fig4",
    "run_minorization_demo",
    "run_variance_trials",
    "run_threshold",
    "run_protocol_optimality",
    "run_saturation",
    "run_heterogeneity_gain",
    "run_moment_ablation",
    "run_failure_resilience",
    "run_majorization_study",
    "run_tau_sweep",
    "run_failure_rate_sweep",
    "run_coded_resilience",
    "run_stream_replay",
    "collect_trials",
    "trial_shards",
    "run_trial_shard",
    "merge_trial_batches",
    "TrialBatch",
    "PAPER_TABLE3_VALUES",
    "PAPER_TABLE4_RATIOS",
    "PAPER_THETA",
]
