"""Table 4: additive speedup "in action" (paper §3.2.1).

Starting from the 4-computer cluster P = ⟨1, 1/2, 1/3, 1/4⟩, each
computer in turn is sped up by the additive term φ = 1/16 and the work
ratio ``W(L;P^(i))/W(L;P)`` is tabulated.  Theorem 3's content is the
*shape*: every ratio exceeds 1 and the payoff increases strictly toward
the fastest computer, with a pronounced jump for the fastest.

Paper-vs-measured: with the paper's own Table-1 parameters, eq. (1)
gives (1.0067, 1.0286, 1.0692, 1.1333); the printed values
(1.008, 1.014, 1.034, 1.159) cannot be matched by any (τ, π, δ) we
swept, so they appear internally inconsistent with eq. (1) — see
DESIGN.md §4 (substitution 4).  The ordering and the fastest-wins
conclusion are identical.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult, register
from repro.speedup.additive import additive_work_ratios, best_additive_upgrade

__all__ = ["run_table4", "PAPER_TABLE4_RATIOS"]

#: The paper's printed work ratios for i = 1 … 4.
PAPER_TABLE4_RATIOS = (1.008, 1.014, 1.034, 1.159)


@register("table4")
def run_table4(params: ModelParams = PAPER_TABLE1,
               phi: float = 1.0 / 16.0) -> ExperimentResult:
    """Reproduce Table 4's additive-speedup work ratios."""
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    ratios = additive_work_ratios(profile, params, phi)
    best = best_additive_upgrade(profile, params, phi)
    rows = []
    for i in range(profile.n):
        sped = [Fraction(1, k + 1) for k in range(profile.n)]
        sped[i] = sped[i] - Fraction(phi).limit_denominator(10 ** 6)
        profile_text = "⟨" + ", ".join(str(f) for f in sped) + "⟩"
        rows.append((
            i + 1,
            profile_text,
            round(float(ratios[i]), 4),
            PAPER_TABLE4_RATIOS[i],
        ))
    return ExperimentResult(
        experiment_id="table4",
        title="Work ratios as each computer is sped up additively (paper Table 4)",
        headers=("i", "profile P^(i)", "measured W-ratio", "paper W-ratio"),
        rows=rows,
        notes=(
            "shape reproduced: every ratio > 1, strictly increasing toward the "
            "fastest computer (Theorem 3); the paper's absolute entries are "
            "inconsistent with its own eq. (1) — see DESIGN.md",
            f"best single upgrade: computer {best.index + 1} (the fastest), "
            f"payoff {best.work_ratio:.4f}",
        ),
        metadata={"ratios": tuple(float(r) for r in ratios),
                  "best_index": best.index, "phi": phi, "params": params},
    )
