"""The §4 opening example: minorization is sufficient but not necessary,
and mean speed is not a valid predictor.

The paper's witness: P₁ = ⟨0.99, 0.02⟩ outperforms P₂ = ⟨0.5, 0.5⟩ even
though (a) P₁ does not minorize P₂ (its slow computer is slower than
both of P₂'s) and (b) P₁'s *mean* ρ is worse.  What does align with the
outcome is the variance (Theorem 5(2): for n = 2, larger variance ⇔
more power among equal-... here means differ, but the 2-computer
biconditional is exercised separately; this demo reports every
predictor's verdict side by side).
"""

from __future__ import annotations

from repro.core.hecr import hecr
from repro.core.measure import x_measure
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.experiments.base import ExperimentResult, register
from repro.predictors.dominance import cross_product_dominance, minorization_predicts

__all__ = ["run_minorization_demo"]


@register("sec4-example")
def run_minorization_demo(params: ModelParams = PAPER_TABLE1) -> ExperimentResult:
    """Reproduce the ⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩ comparison."""
    p1 = Profile([0.99, 0.02])
    p2 = Profile([0.5, 0.5])
    x1, x2 = x_measure(p1, params), x_measure(p2, params)
    rows = [
        ("X-measure", round(x1, 3), round(x2, 3),
         "P1 wins" if x1 > x2 else "P2 wins"),
        ("HECR (smaller = faster)", round(hecr(p1, params), 4),
         round(hecr(p2, params), 4), "P1 wins"),
        ("mean ρ (smaller = faster)", p1.mean, p2.mean,
         "P2 'wins' — mean mispredicts"),
        ("variance", round(p1.variance, 4), round(p2.variance, 4),
         "P1 larger — aligns with outcome"),
        ("minorizes the other?", minorization_predicts(p1, p2).value, "—",
         "indeterminate: sufficient, not necessary"),
        ("cross-product dominance", cross_product_dominance(p1, p2).verdict.value,
         "—", "indeterminate: means differ"),
    ]
    return ExperimentResult(
        experiment_id="sec4-example",
        title="⟨0.99, 0.02⟩ outperforms ⟨0.5, 0.5⟩ (paper §4 example)",
        headers=("quantity", "P1 = ⟨0.99, 0.02⟩", "P2 = ⟨0.5, 0.5⟩", "reading"),
        rows=rows,
        notes=(
            "P1 outperforms despite the larger mean ρ: one very fast computer "
            "outweighs one very slow one — heterogeneity as a source of power",
        ),
        metadata={"x1": x1, "x2": x2, "params": params},
    )
