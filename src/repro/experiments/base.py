"""Experiment framework: result objects, a registry, and a shard contract.

Every table and figure of the paper is reproduced by a registered
experiment — a named callable returning an :class:`ExperimentResult` with
structured rows plus a human-readable rendering.  The benchmarks and the
CLI both go through this registry, so "what regenerates Table 4?" has
exactly one answer.

Experiments whose cost lives in embarrassingly parallel loops (the
Monte-Carlo trial studies, parameter sweeps) can additionally register a
:class:`ShardSpec` — a declarative *split / runner / merge* contract.
The experiment function itself is then defined as
``merge(map(runner, split(kwargs)))`` via :func:`run_sharded`, so a
sequential run and the batch engine's fan-out over a process pool
(:mod:`repro.batch`) compute **identical** statistics by construction:
same shard decomposition, same per-shard seed, same merge order.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.tables import render_table
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import current_observation

try:  # POSIX-only; gives peak RSS for the obs block when present.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = ["ExperimentResult", "ShardSpec", "experiment_index",
           "experiment_summary", "register", "get_experiment",
           "get_shard_spec", "list_experiments", "run_experiment",
           "run_sharded", "record_experiment_metrics"]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"table3"``.
    title:
        What the experiment reproduces.
    headers, rows:
        The tabular payload (rows are tuples of printable values).
    notes:
        Free-form annotations: parameter calibrations, paper-vs-measured
        remarks, caveats.
    metadata:
        Machine-readable extras (seeds, parameters, derived scalars)
        consumed by tests and benchmarks.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[tuple]
    notes: Sequence[str] = field(default_factory=tuple)
    metadata: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The experiment's report as monospace text."""
        parts = [render_table(self.headers, self.rows,
                              title=f"{self.experiment_id}: {self.title}")]
        extra = self.metadata.get("figure_text")
        if extra:
            parts.append(str(extra))
        if self.notes:
            parts.append("\n".join(f"note: {n}" for n in self.notes))
        return "\n\n".join(parts)


@dataclass(frozen=True)
class ShardSpec:
    """Declarative split/run/merge contract for parallelisable experiments.

    Attributes
    ----------
    split:
        ``(**kwargs) -> list[dict]`` — decompose one experiment
        invocation into independent shard-kwargs.  The decomposition
        must be a pure function of the experiment kwargs (never of the
        worker count), and each shard must carry its own deterministic
        seed — the convention is children of
        ``np.random.SeedSequence(seed).spawn(...)`` assigned in shard
        order.
    runner:
        ``(**shard_kwargs) -> payload`` — execute one shard.  Must be a
        module-level (picklable) callable returning a picklable payload;
        it runs inside worker processes under the batch engine.
    merge:
        ``(payloads, **kwargs) -> ExperimentResult`` — recombine the
        payloads, given in ``split`` order regardless of completion
        order, into the experiment's result.  Merging must not depend
        on how shards were distributed over workers.
    """

    split: Callable[..., list[dict]]
    runner: Callable[..., Any]
    merge: Callable[..., ExperimentResult]


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}
_SHARD_SPECS: dict[str, ShardSpec] = {}


def register(experiment_id: str, *, shardable: ShardSpec | None = None) -> Callable:
    """Decorator: add an experiment runner to the registry.

    ``shardable`` optionally declares the experiment's
    :class:`ShardSpec` so the batch engine can fan its independent
    pieces out across worker processes.
    """
    def wrap(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        if shardable is not None:
            _SHARD_SPECS[experiment_id] = shardable
        func.experiment_id = experiment_id  # type: ignore[attr-defined]
        return func
    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment runner by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None


def get_shard_spec(experiment_id: str) -> ShardSpec | None:
    """The experiment's :class:`ShardSpec`, or None if it is unshardable."""
    get_experiment(experiment_id)  # raise on unknown ids
    return _SHARD_SPECS.get(experiment_id)


def run_sharded(spec: ShardSpec, **kwargs: Any) -> ExperimentResult:
    """Execute a sharded experiment sequentially: merge(map(runner, split)).

    This is the reference implementation of the shard contract — the
    experiment functions delegate to it, and the batch engine reproduces
    exactly this computation with the ``runner`` calls distributed over
    a process pool.
    """
    payloads = [spec.runner(**shard_kwargs) for shard_kwargs in spec.split(**kwargs)]
    return spec.merge(payloads, **kwargs)


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def experiment_summary(experiment_id: str) -> dict[str, Any]:
    """One experiment's machine-readable registry entry.

    ``description`` is the first line of the runner's docstring (empty
    when undocumented); ``shardable`` says whether the batch engine can
    fan the experiment out across worker processes.
    """
    runner = get_experiment(experiment_id)
    doc = (runner.__doc__ or "").strip()
    return {
        "id": experiment_id,
        "description": doc.splitlines()[0].strip() if doc else "",
        "shardable": experiment_id in _SHARD_SPECS,
    }


def experiment_index() -> list[dict[str, Any]]:
    """The registry as data: ``experiment_summary`` for every id, sorted.

    This is the payload behind both ``repro-hetero list --json`` and the
    service's ``GET /v1/experiments`` — one code path, one answer.
    """
    return [experiment_summary(experiment_id)
            for experiment_id in list_experiments()]


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None if unavailable.

    This is ``ru_maxrss`` — a **process-wide high-water mark** that only
    ever rises.  It says "the largest this process has ever been", not
    "what this stretch of code allocated"; per-experiment attribution
    must difference two readings (see :func:`run_experiment`).
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def record_experiment_metrics(registry: MetricsRegistry, experiment_id: str,
                              wall_seconds: float) -> None:
    """Record one completed experiment run into a metrics registry.

    Shared by :func:`run_experiment` and the batch engine (which merges
    sharded results in the parent process) so a `run all` session shows
    the same series regardless of how the work was executed.
    """
    registry.counter("experiment_runs_total",
                     "experiment runs completed").inc(experiment=experiment_id)
    registry.timer("experiment_seconds",
                   "wall-clock duration of experiment runs"
                   ).observe(wall_seconds, experiment=experiment_id)


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment with keyword overrides.

    Every run is timed: the returned result carries an ``"obs"`` block
    in its metadata (``wall_seconds``, ``peak_rss_bytes``), the global
    metrics registry records ``experiment_runs_total`` and
    ``experiment_seconds``, and — when an ambient observation is active
    — the run executes inside an ``experiment:<id>`` span so any
    simulations underneath nest into one trace tree.

    ``peak_rss_bytes`` is the amount by which *this run* raised the
    process-wide RSS high-water mark (a reading is taken before and
    after, and the delta recorded).  A run that stayed under the
    existing peak reports 0 — earlier experiments' peaks are never
    inherited.  The absolute high-water mark after the run is kept
    alongside as ``peak_rss_high_water_bytes``.
    """
    runner = get_experiment(experiment_id)
    ctx = current_observation()
    registry = (ctx.registry if ctx is not None and ctx.registry is not None
                else default_registry())
    rss_before = _peak_rss_bytes()
    start = time.perf_counter()
    try:
        if ctx is not None and ctx.tracer is not None:
            with ctx.tracer.span(f"experiment:{experiment_id}") as span_attrs:
                result = runner(**kwargs)
                span_attrs["rows"] = len(result.rows)
        else:
            result = runner(**kwargs)
    except Exception:
        registry.counter("experiment_failures_total",
                         "experiment runs that raised"
                         ).inc(experiment=experiment_id)
        raise
    wall = time.perf_counter() - start
    record_experiment_metrics(registry, experiment_id, wall)
    rss_after = _peak_rss_bytes()
    rss_delta = (max(0, rss_after - rss_before)
                 if rss_before is not None and rss_after is not None else None)
    obs_block = {"wall_seconds": wall, "peak_rss_bytes": rss_delta,
                 "peak_rss_high_water_bytes": rss_after}
    if ctx is not None and ctx.tracer is not None:
        # Lets a run-history-store row (or any JSON consumer) join this
        # result back to its span tree without guessing.
        obs_block["trace_id"] = ctx.tracer.trace_id
    return replace(result, metadata={**result.metadata, "obs": obs_block})
