"""Experiment framework: result objects and a registry.

Every table and figure of the paper is reproduced by a registered
experiment — a named callable returning an :class:`ExperimentResult` with
structured rows plus a human-readable rendering.  The benchmarks and the
CLI both go through this registry, so "what regenerates Table 4?" has
exactly one answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.tables import render_table
from repro.obs.metrics import default_registry
from repro.obs.tracing import current_observation

try:  # POSIX-only; gives peak RSS for the obs block when present.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = ["ExperimentResult", "register", "get_experiment", "list_experiments",
           "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"table3"``.
    title:
        What the experiment reproduces.
    headers, rows:
        The tabular payload (rows are tuples of printable values).
    notes:
        Free-form annotations: parameter calibrations, paper-vs-measured
        remarks, caveats.
    metadata:
        Machine-readable extras (seeds, parameters, derived scalars)
        consumed by tests and benchmarks.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[tuple]
    notes: Sequence[str] = field(default_factory=tuple)
    metadata: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The experiment's report as monospace text."""
        parts = [render_table(self.headers, self.rows,
                              title=f"{self.experiment_id}: {self.title}")]
        extra = self.metadata.get("figure_text")
        if extra:
            parts.append(str(extra))
        if self.notes:
            parts.append("\n".join(f"note: {n}" for n in self.notes))
        return "\n\n".join(parts)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str) -> Callable:
    """Decorator: add an experiment runner to the registry."""
    def wrap(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id  # type: ignore[attr-defined]
        return func
    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment runner by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None if unavailable."""
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    import sys
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment with keyword overrides.

    Every run is timed: the returned result carries an ``"obs"`` block
    in its metadata (``wall_seconds``, ``peak_rss_bytes``), the global
    metrics registry records ``experiment_runs_total`` and
    ``experiment_seconds``, and — when an ambient observation is active
    — the run executes inside an ``experiment:<id>`` span so any
    simulations underneath nest into one trace tree.
    """
    runner = get_experiment(experiment_id)
    ctx = current_observation()
    registry = (ctx.registry if ctx is not None and ctx.registry is not None
                else default_registry())
    start = time.perf_counter()
    try:
        if ctx is not None and ctx.tracer is not None:
            with ctx.tracer.span(f"experiment:{experiment_id}") as span_attrs:
                result = runner(**kwargs)
                span_attrs["rows"] = len(result.rows)
        else:
            result = runner(**kwargs)
    except Exception:
        registry.counter("experiment_failures_total",
                         "experiment runs that raised"
                         ).inc(experiment=experiment_id)
        raise
    wall = time.perf_counter() - start
    registry.counter("experiment_runs_total",
                     "experiment runs completed").inc(experiment=experiment_id)
    registry.timer("experiment_seconds",
                   "wall-clock duration of experiment runs"
                   ).observe(wall, experiment=experiment_id)
    obs_block = {"wall_seconds": wall, "peak_rss_bytes": _peak_rss_bytes()}
    return replace(result, metadata={**result.metadata, "obs": obs_block})
