"""Experiment framework: result objects and a registry.

Every table and figure of the paper is reproduced by a registered
experiment — a named callable returning an :class:`ExperimentResult` with
structured rows plus a human-readable rendering.  The benchmarks and the
CLI both go through this registry, so "what regenerates Table 4?" has
exactly one answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.tables import render_table

__all__ = ["ExperimentResult", "register", "get_experiment", "list_experiments",
           "run_experiment"]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"table3"``.
    title:
        What the experiment reproduces.
    headers, rows:
        The tabular payload (rows are tuples of printable values).
    notes:
        Free-form annotations: parameter calibrations, paper-vs-measured
        remarks, caveats.
    metadata:
        Machine-readable extras (seeds, parameters, derived scalars)
        consumed by tests and benchmarks.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: Sequence[tuple]
    notes: Sequence[str] = field(default_factory=tuple)
    metadata: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """The experiment's report as monospace text."""
        parts = [render_table(self.headers, self.rows,
                              title=f"{self.experiment_id}: {self.title}")]
        extra = self.metadata.get("figure_text")
        if extra:
            parts.append(str(extra))
        if self.notes:
            parts.append("\n".join(f"note: {n}" for n in self.notes))
        return "\n\n".join(parts)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str) -> Callable:
    """Decorator: add an experiment runner to the registry."""
    def wrap(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        func.experiment_id = experiment_id  # type: ignore[attr-defined]
        return func
    return wrap


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up a registered experiment runner by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a registered experiment with keyword overrides."""
    return get_experiment(experiment_id)(**kwargs)
