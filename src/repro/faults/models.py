"""Fault models: per-worker fault timelines and channel-loss processes.

A *worker fault* is a declarative statement about one computer —
"crashes at t", "down over [t, t+d)", "runs ``factor×`` slower over a
window".  :class:`FaultTimeline` compiles any mix of them into the two
questions the simulator actually asks:

* :meth:`FaultTimeline.crashes_by` — has the worker permanently died by
  a given instant?
* :meth:`FaultTimeline.completion_time` — when does a compute quantum
  started at ``t`` with nominal duration ``D`` actually finish, given
  that progress pauses during outages and dilates inside slowdown
  windows?

Channel faults are separate: :class:`ChannelLoss` decides whether a
given transmission *attempt* is lost, and :class:`RetransmitPolicy`
bounds how the network retries.  Loss draws are keyed by
``(salt, kind, computer, attempt)`` through ``np.random.SeedSequence``
spawn keys, so they are deterministic **and independent of event
order** — the property that keeps fault-injected runs batch-shardable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from repro.errors import FaultInjectionError

__all__ = ["PermanentCrash", "TransientOutage", "DegradedSpeed",
           "SpeedPhase", "FaultTimeline", "ChannelLoss", "RetransmitPolicy"]


def _check_time(value: float, name: str) -> float:
    value = float(value)
    if value < 0.0 or not np.isfinite(value):
        raise FaultInjectionError(
            f"{name} must be nonnegative and finite, got {value!r}")
    return value


def _check_duration(value: float, name: str) -> float:
    value = float(value)
    if value <= 0.0 or not np.isfinite(value):
        raise FaultInjectionError(
            f"{name} must be positive and finite, got {value!r}")
    return value


@dataclass(frozen=True)
class PermanentCrash:
    """Computer ``computer`` dies at time ``at`` and never recovers."""

    computer: int
    at: float

    def __post_init__(self) -> None:
        _check_time(self.at, "crash time")


@dataclass(frozen=True)
class TransientOutage:
    """Computer ``computer`` is unreachable over ``[start, start+duration)``.

    Progress made before the outage is retained: computation *pauses*
    and resumes when the worker comes back (a reboot that keeps the
    bench intact).  Work arriving mid-outage waits for the worker.
    """

    computer: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        _check_time(self.start, "outage start")
        _check_duration(self.duration, "outage duration")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class DegradedSpeed:
    """Computer ``computer`` computes ``factor×`` slower over a window.

    Equivalent to inflating ρ by ``factor`` for the stretch of the busy
    period that overlaps ``[start, start+duration)``.
    """

    computer: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        _check_time(self.start, "slowdown start")
        _check_duration(self.duration, "slowdown duration")
        if self.factor < 1.0 or not np.isfinite(self.factor):
            raise FaultInjectionError(
                f"slowdown factor must be >= 1 and finite, got {self.factor!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SpeedPhase:
    """Computer ``computer`` runs at ``factor×`` its nominal ρ over a window.

    The first-class, non-fault form of time-varying speed: unlike
    :class:`DegradedSpeed` the factor may be *any* positive value —
    ``factor > 1`` is a slowdown, ``factor < 1`` a speed-up (e.g. a
    worker shedding a co-tenant mid-lifespan).  Declared in the
    scenario grammar as ``speeds:<c>@<t>+<d>x<f>``; the stream
    calibrator emits one per drifting worker it observes.
    """

    computer: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        _check_time(self.start, "speed-phase start")
        _check_duration(self.duration, "speed-phase duration")
        if self.factor <= 0.0 or not np.isfinite(self.factor):
            raise FaultInjectionError(
                f"speed factor must be positive and finite, "
                f"got {self.factor!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration


class FaultTimeline:
    """One worker's compiled fault behaviour.

    Parameters
    ----------
    crash_at:
        Permanent-crash instant, or None.  Multiple crashes compile to
        the earliest.
    outages:
        ``(start, end)`` pairs during which progress is paused.
    slowdowns:
        ``(start, end, factor)`` triples; where windows overlap the
        *largest* factor applies (faults don't cancel each other).
    """

    __slots__ = ("crash_at", "outages", "slowdowns")

    def __init__(self, crash_at: float | None = None,
                 outages: Iterable[tuple[float, float]] = (),
                 slowdowns: Iterable[tuple[float, float, float]] = ()) -> None:
        self.crash_at = None if crash_at is None else float(crash_at)
        self.outages = tuple(sorted((float(s), float(e)) for s, e in outages))
        self.slowdowns = tuple(sorted(
            (float(s), float(e), float(f)) for s, e, f in slowdowns))

    @classmethod
    def compile(cls, faults: Iterable[object]) -> "FaultTimeline":
        """Fold declarative fault specs for one computer into a timeline."""
        crash_at: float | None = None
        outages: list[tuple[float, float]] = []
        slowdowns: list[tuple[float, float, float]] = []
        for fault in faults:
            if isinstance(fault, PermanentCrash):
                crash_at = fault.at if crash_at is None else min(crash_at, fault.at)
            elif isinstance(fault, TransientOutage):
                if fault.duration > 0.0:
                    outages.append((fault.start, fault.end))
            elif isinstance(fault, DegradedSpeed):
                if fault.duration > 0.0 and fault.factor > 1.0:
                    slowdowns.append((fault.start, fault.end, fault.factor))
            elif isinstance(fault, SpeedPhase):
                if fault.duration > 0.0 and fault.factor != 1.0:
                    slowdowns.append((fault.start, fault.end, fault.factor))
            else:
                raise FaultInjectionError(
                    f"unknown worker fault {fault!r}")
        return cls(crash_at=crash_at, outages=outages, slowdowns=slowdowns)

    # ------------------------------------------------------------------
    @property
    def is_benign(self) -> bool:
        """Whether this timeline changes nothing about the worker."""
        return (self.crash_at is None and not self.outages
                and not self.slowdowns)

    def crashes_by(self, time: float) -> bool:
        """Has the worker permanently died by ``time`` (inclusive)?"""
        return self.crash_at is not None and time >= self.crash_at

    def _speed(self, t: float) -> float:
        """Instantaneous progress rate at time ``t`` (crash ignored)."""
        for start, end in self.outages:
            if start <= t < end:
                return 0.0
        # Where windows overlap the largest factor applies — "faults
        # don't cancel": a speed-up phase (factor < 1) never masks a
        # concurrent slowdown, but alone it does accelerate the worker.
        factor = None
        for start, end, f in self.slowdowns:
            if start <= t < end and (factor is None or f > factor):
                factor = f
        return 1.0 if factor is None else 1.0 / factor

    def completion_time(self, start: float, nominal: float) -> float:
        """When a quantum started at ``start`` with nominal duration
        ``nominal`` finishes, ignoring any permanent crash.

        Progress integrates a piecewise-constant speed: 0 inside
        outages, ``1/factor`` inside slowdown windows, 1 otherwise.
        The caller compares the returned instant against
        :attr:`crash_at` to decide whether the worker lives to see it.
        """
        if nominal <= 0.0:
            return start
        breakpoints = sorted(
            {b for s, e in self.outages for b in (s, e) if b > start}
            | {b for s, e, _ in self.slowdowns for b in (s, e) if b > start})
        t = float(start)
        remaining = float(nominal)
        for b in breakpoints:
            speed = self._speed(t)
            seg = b - t
            if speed > 0.0 and remaining <= seg * speed + 1e-15 * nominal:
                return t + remaining / speed
            remaining -= seg * speed
            t = b
        # Past the last breakpoint the worker runs at full speed.
        speed = self._speed(t)
        assert speed > 0.0, "outages have finite duration"
        return t + remaining / speed

    def shifted(self, offset: float) -> "FaultTimeline":
        """The same timeline as seen from a clock started ``offset`` later.

        Used by the multi-round rescheduler: recovery round k simulates
        from its own time zero, so absolute fault instants move back by
        the time already elapsed.  Windows that ended in the past drop
        out; windows straddling the origin are clipped to start at 0.
        """
        crash = None
        if self.crash_at is not None:
            crash = max(0.0, self.crash_at - offset)
        outages = [(max(0.0, s - offset), e - offset)
                   for s, e in self.outages if e > offset]
        slowdowns = [(max(0.0, s - offset), e - offset, f)
                     for s, e, f in self.slowdowns if e > offset]
        return FaultTimeline(crash_at=crash, outages=outages,
                             slowdowns=slowdowns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultTimeline(crash_at={self.crash_at!r}, "
                f"outages={self.outages!r}, slowdowns={self.slowdowns!r})")


#: Stable integer ids for the two message kinds, used in loss spawn keys.
_KIND_IDS = {"work": 0, "result": 1}


@dataclass(frozen=True)
class ChannelLoss:
    """Message loss on the shared channel.

    Attributes
    ----------
    p_loss:
        Probability that any given transmission attempt is lost.
    seed:
        Entropy for the loss draws.  Each draw is keyed by
        ``(salt, kind, computer, attempt)`` via a ``SeedSequence`` spawn
        key, so the decision for a given attempt is a pure function of
        the scenario — independent of the order in which the simulator
        happens to reserve the channel.
    drops:
        Deterministic losses: ``(kind, computer, attempt)`` triples that
        are always lost (attempt 0 is the first transmission).  Useful
        for tests and worst-case scenarios.
    salt:
        Extra entropy mixed into every draw; the multi-round rescheduler
        re-salts per round so retransmission patterns differ between
        rounds while staying deterministic.
    """

    p_loss: float = 0.0
    seed: int = 0
    drops: frozenset[tuple[str, int, int]] = frozenset()
    salt: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.p_loss < 1.0):
            raise FaultInjectionError(
                f"p_loss must lie in [0, 1), got {self.p_loss!r}")
        for kind, computer, attempt in self.drops:
            if kind not in _KIND_IDS:
                raise FaultInjectionError(f"unknown message kind {kind!r}")
            if computer < 0 or attempt < 0:
                raise FaultInjectionError(
                    f"invalid drop entry {(kind, computer, attempt)!r}")

    @property
    def is_benign(self) -> bool:
        return self.p_loss == 0.0 and not self.drops

    def lost(self, kind: str, computer: int, attempt: int) -> bool:
        """Whether transmission ``attempt`` of this message is lost."""
        if (kind, computer, attempt) in self.drops:
            return True
        if self.p_loss <= 0.0:
            return False
        seq = np.random.SeedSequence(
            entropy=self.seed,
            spawn_key=(self.salt, _KIND_IDS[kind], computer, attempt))
        return bool(np.random.default_rng(seq).random() < self.p_loss)

    def with_salt(self, salt: int) -> "ChannelLoss":
        """A copy drawing from a fresh, equally deterministic stream."""
        return replace(self, salt=salt)


@dataclass(frozen=True)
class RetransmitPolicy:
    """How the network retries lost messages.

    A lost attempt still occupies the channel (the time is spent); the
    sender then waits an exponentially growing backoff before the next
    attempt, up to ``max_retransmits`` retries and capped at
    ``max_backoff`` per wait (uncapped by default).  A message that
    exhausts its budget is *permanently lost* — for a work package the
    quantum never reaches its worker, for a result the finishing-order
    contract decides what stalls.
    """

    max_retransmits: int = 3
    backoff: float = 0.1
    backoff_factor: float = 2.0
    max_backoff: float = float("inf")

    def __post_init__(self) -> None:
        if self.max_retransmits < 0:
            raise FaultInjectionError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}")
        if self.backoff < 0.0 or not np.isfinite(self.backoff):
            raise FaultInjectionError(
                f"backoff must be nonnegative and finite, got {self.backoff!r}")
        if self.backoff_factor < 1.0 or not np.isfinite(self.backoff_factor):
            raise FaultInjectionError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}")
        if np.isnan(self.max_backoff) or self.max_backoff <= 0.0:
            raise FaultInjectionError(
                f"max_backoff must be positive (inf disables the cap), "
                f"got {self.max_backoff!r}")

    def delay(self, retransmit_index: int) -> float:
        """Backoff before retransmit ``retransmit_index`` (1-based).

        Monotone non-decreasing in the index and capped at
        ``max_backoff`` — both properties are pinned by hypothesis
        tests, along with bit-determinism across processes.
        """
        return min(self.backoff * self.backoff_factor ** (retransmit_index - 1),
                   self.max_backoff)
